//! Embedding real tables, rows, and columns.
//!
//! These encoders turn [`crate::table::Table`] objects into the `n × d`
//! matrices TableDC consumes, using the *real* (ground-truth-free)
//! hash-n-gram lexical encoder plus light structural features. They are the
//! production ingestion path; the simulated LLM encoders in
//! `datagen::encoders` exist only to reproduce the paper's experiments.

use tensor::Matrix;

use crate::table::{ColumnType, Table};

/// Encoder configuration.
#[derive(Debug, Clone, Copy)]
pub struct EncodeOptions {
    /// Output embedding dimension for the lexical component.
    pub dim: usize,
    /// Character n-gram width.
    pub ngram: usize,
    /// Maximum values sampled per column when embedding columns.
    pub max_values_per_column: usize,
    /// Include column headers in column/table text.
    pub include_headers: bool,
}

impl Default for EncodeOptions {
    fn default() -> Self {
        Self { dim: 128, ngram: 3, max_values_per_column: 32, include_headers: true }
    }
}

/// Embeds one text object per **table** (schema inference): the schema
/// text, optionally followed by a sample of instance values.
pub fn embed_tables(tables: &[Table], options: EncodeOptions, instances: bool) -> Matrix {
    let texts: Vec<String> = tables
        .iter()
        .map(|t| {
            let mut text = if options.include_headers {
                t.schema_text()
            } else {
                String::new()
            };
            if instances {
                for i in 0..t.n_rows().min(5) {
                    text.push(' ');
                    text.push_str(&t.row_text(i));
                }
            }
            if text.trim().is_empty() {
                text = t.name.clone();
            }
            text
        })
        .collect();
    lexical_embed(&texts, options)
}

/// Embeds one text object per **row** of a table (entity resolution),
/// using the `[SEP]`-serialized row text of §4.1.3.
pub fn embed_rows(table: &Table, options: EncodeOptions) -> Matrix {
    let texts: Vec<String> = (0..table.n_rows()).map(|i| table.row_text(i)).collect();
    lexical_embed(&texts, options)
}

/// Embeds one object per **column** across a set of tables (domain
/// discovery), appending simple structural features (type one-hot, null
/// fraction, distinct ratio) to the lexical embedding. Returns the matrix
/// plus `(table index, column index)` provenance per row.
pub fn embed_columns(
    tables: &[Table],
    options: EncodeOptions,
) -> (Matrix, Vec<(usize, usize)>) {
    let mut texts = Vec::new();
    let mut provenance = Vec::new();
    let mut structural: Vec<[f64; 7]> = Vec::new();
    for (ti, table) in tables.iter().enumerate() {
        for (ci, col) in table.columns.iter().enumerate() {
            texts.push(col.text(options.include_headers, options.max_values_per_column));
            provenance.push((ti, ci));
            let ty = col.infer_type();
            let one_hot = |t: ColumnType| if ty == t { 1.0 } else { 0.0 };
            let distinct_ratio = if col.len() == 0 {
                0.0
            } else {
                col.distinct_count() as f64 / col.len() as f64
            };
            structural.push([
                one_hot(ColumnType::Integer),
                one_hot(ColumnType::Float),
                one_hot(ColumnType::Boolean),
                one_hot(ColumnType::Text),
                one_hot(ColumnType::Empty),
                col.null_fraction(),
                distinct_ratio,
            ]);
        }
    }
    let lexical = lexical_embed(&texts, options);
    let structure = Matrix::from_row_vecs(
        &structural.iter().map(|f| f.to_vec()).collect::<Vec<_>>(),
    );
    (lexical.hcat(&structure), provenance)
}

fn lexical_embed(texts: &[String], options: EncodeOptions) -> Matrix {
    let refs: Vec<&str> = texts.iter().map(String::as_str).collect();
    datagen::hash_ngram_embed(&refs, options.dim, options.ngram)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csv::{parse_csv, CsvOptions};
    use tensor::distance::cosine_similarity;

    fn table(name: &str, csv: &str) -> Table {
        let records = parse_csv(csv, CsvOptions::default()).expect("parse");
        Table::from_records(name, &records, true)
    }

    #[test]
    fn similar_schemas_embed_closer() {
        let a = table("a", "city,country,population\nparis,fr,2\n");
        let b = table("b", "city,country,population\nrome,it,3\n");
        let c = table("c", "sensor,resolution,zoom\nx,12mp,4\n");
        let e = embed_tables(&[a, b, c], EncodeOptions::default(), false);
        let sim_ab = cosine_similarity(e.row(0), e.row(1));
        let sim_ac = cosine_similarity(e.row(0), e.row(2));
        assert!(sim_ab > sim_ac, "{sim_ab} vs {sim_ac}");
    }

    #[test]
    fn row_embeddings_reflect_duplicates() {
        let t = table(
            "songs",
            "title,artist\nhey jude,beatles\nhey jude,the beatles\nparanoid,sabbath\n",
        );
        let e = embed_rows(&t, EncodeOptions::default());
        assert_eq!(e.rows(), 3);
        let dup = cosine_similarity(e.row(0), e.row(1));
        let other = cosine_similarity(e.row(0), e.row(2));
        assert!(dup > other, "{dup} vs {other}");
    }

    #[test]
    fn column_embeddings_have_structural_tail() {
        let t = table("t", "id,name\n1,ann\n2,bob\n");
        let (e, prov) = embed_columns(&[t], EncodeOptions::default());
        assert_eq!(e.rows(), 2);
        assert_eq!(e.cols(), 128 + 7);
        assert_eq!(prov, vec![(0, 0), (0, 1)]);
        // The integer column's Integer one-hot (first structural feature).
        assert_eq!(e[(0, 128)], 1.0);
        assert_eq!(e[(1, 128)], 0.0);
    }

    #[test]
    fn instance_embedding_differs_from_schema_only() {
        let t = table("t", "a,b\nfoo,bar\n");
        let schema_only = embed_tables(std::slice::from_ref(&t), EncodeOptions::default(), false);
        let with_instances = embed_tables(&[t], EncodeOptions::default(), true);
        assert!(schema_only.max_abs_diff(&with_instances) > 1e-6);
    }
}
