//! A dependency-free RFC-4180-style CSV reader and writer.
//!
//! Handles quoted fields, escaped quotes (`""`), embedded separators, and
//! embedded newlines inside quotes; both `\n` and `\r\n` record
//! terminators are accepted. This is the ingestion path that lets TableDC
//! run on *real* tabular files rather than only on the synthetic corpora.

use std::fmt;
use std::fs;
use std::path::Path;

/// CSV parse errors with 1-based line positions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CsvError {
    /// A quoted field was never closed.
    UnterminatedQuote {
        /// Line where the field started.
        line: usize,
    },
    /// A quote appeared in the middle of an unquoted field.
    StrayQuote {
        /// Line of the offending character.
        line: usize,
    },
    /// Records have inconsistent field counts.
    RaggedRow {
        /// Line of the offending record.
        line: usize,
        /// Field count of that record.
        got: usize,
        /// Field count of the first record.
        expected: usize,
    },
    /// Underlying I/O failure (message only, to stay `PartialEq`).
    Io(String),
}

impl fmt::Display for CsvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CsvError::UnterminatedQuote { line } => {
                write!(f, "unterminated quoted field starting on line {line}")
            }
            CsvError::StrayQuote { line } => {
                write!(f, "stray quote inside unquoted field on line {line}")
            }
            CsvError::RaggedRow { line, got, expected } => {
                write!(f, "line {line}: {got} fields, expected {expected}")
            }
            CsvError::Io(msg) => write!(f, "io error: {msg}"),
        }
    }
}

impl std::error::Error for CsvError {}

/// Parser options.
#[derive(Debug, Clone, Copy)]
pub struct CsvOptions {
    /// Field separator (default `,`).
    pub separator: char,
    /// Reject files whose records have differing field counts.
    pub strict_width: bool,
}

impl Default for CsvOptions {
    fn default() -> Self {
        Self { separator: ',', strict_width: true }
    }
}

/// Parses CSV text into records of fields.
///
/// # Errors
/// See [`CsvError`].
pub fn parse_csv(input: &str, options: CsvOptions) -> Result<Vec<Vec<String>>, CsvError> {
    let sep = options.separator;
    let mut records: Vec<Vec<String>> = Vec::new();
    let mut record: Vec<String> = Vec::new();
    let mut field = String::new();
    let mut line = 1usize;
    let mut field_start_line = 1usize;

    #[derive(PartialEq)]
    enum State {
        FieldStart,
        Unquoted,
        Quoted,
        QuoteInQuoted, // just saw a `"` inside a quoted field
    }
    let mut state = State::FieldStart;

    let mut chars = input.chars().peekable();
    while let Some(c) = chars.next() {
        // Normalize \r\n to \n.
        let c = if c == '\r' {
            if chars.peek() == Some(&'\n') {
                continue;
            }
            '\n'
        } else {
            c
        };
        match state {
            State::FieldStart => {
                field_start_line = line;
                if c == '"' {
                    state = State::Quoted;
                } else if c == sep {
                    record.push(std::mem::take(&mut field));
                } else if c == '\n' {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                    line += 1;
                } else {
                    field.push(c);
                    state = State::Unquoted;
                }
            }
            State::Unquoted => {
                if c == sep {
                    record.push(std::mem::take(&mut field));
                    state = State::FieldStart;
                } else if c == '\n' {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                    line += 1;
                    state = State::FieldStart;
                } else if c == '"' {
                    return Err(CsvError::StrayQuote { line });
                } else {
                    field.push(c);
                }
            }
            State::Quoted => {
                if c == '"' {
                    state = State::QuoteInQuoted;
                } else {
                    if c == '\n' {
                        line += 1;
                    }
                    field.push(c);
                }
            }
            State::QuoteInQuoted => {
                if c == '"' {
                    field.push('"'); // escaped quote
                    state = State::Quoted;
                } else if c == sep {
                    record.push(std::mem::take(&mut field));
                    state = State::FieldStart;
                } else if c == '\n' {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                    line += 1;
                    state = State::FieldStart;
                } else {
                    return Err(CsvError::StrayQuote { line });
                }
            }
        }
    }
    match state {
        State::Quoted => return Err(CsvError::UnterminatedQuote { line: field_start_line }),
        State::FieldStart => {
            // Trailing newline already closed the last record; but a
            // dangling separator leaves an expected empty field.
            if !record.is_empty() {
                record.push(std::mem::take(&mut field));
                records.push(std::mem::take(&mut record));
            }
        }
        State::Unquoted | State::QuoteInQuoted => {
            record.push(std::mem::take(&mut field));
            records.push(std::mem::take(&mut record));
        }
    }

    if options.strict_width {
        if let Some(expected) = records.first().map(Vec::len) {
            for (i, r) in records.iter().enumerate() {
                if r.len() != expected {
                    return Err(CsvError::RaggedRow {
                        line: i + 1,
                        got: r.len(),
                        expected,
                    });
                }
            }
        }
    }
    Ok(records)
}

/// Reads and parses a CSV file.
///
/// # Errors
/// I/O failures and [`CsvError`] parse errors.
pub fn read_csv_file(path: &Path, options: CsvOptions) -> Result<Vec<Vec<String>>, CsvError> {
    let text = fs::read_to_string(path).map_err(|e| CsvError::Io(e.to_string()))?;
    parse_csv(&text, options)
}

/// Serializes records to CSV text, quoting fields that need it.
pub fn write_csv(records: &[Vec<String>], separator: char) -> String {
    let mut out = String::new();
    for record in records {
        let mut first = true;
        for field in record {
            if !first {
                out.push(separator);
            }
            first = false;
            let needs_quote =
                field.contains(separator) || field.contains('"') || field.contains('\n');
            if needs_quote {
                out.push('"');
                out.push_str(&field.replace('"', "\"\""));
                out.push('"');
            } else {
                out.push_str(field);
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Vec<Vec<String>> {
        parse_csv(s, CsvOptions::default()).expect("parse")
    }

    #[test]
    fn simple_rows() {
        let r = parse("a,b,c\n1,2,3\n");
        assert_eq!(r.len(), 2);
        assert_eq!(r[0], vec!["a", "b", "c"]);
        assert_eq!(r[1], vec!["1", "2", "3"]);
    }

    #[test]
    fn missing_trailing_newline() {
        let r = parse("a,b\n1,2");
        assert_eq!(r.len(), 2);
        assert_eq!(r[1], vec!["1", "2"]);
    }

    #[test]
    fn quoted_fields_with_separators_and_newlines() {
        let r = parse("name,notes\n\"Smith, John\",\"line1\nline2\"\n");
        assert_eq!(r[1][0], "Smith, John");
        assert_eq!(r[1][1], "line1\nline2");
    }

    #[test]
    fn escaped_quotes() {
        let r = parse("a\n\"he said \"\"hi\"\"\"\n");
        assert_eq!(r[1][0], "he said \"hi\"");
    }

    #[test]
    fn crlf_line_endings() {
        let r = parse("a,b\r\n1,2\r\n");
        assert_eq!(r.len(), 2);
        assert_eq!(r[1], vec!["1", "2"]);
    }

    #[test]
    fn empty_fields() {
        let r = parse("a,,c\n,,\n");
        assert_eq!(r[0], vec!["a", "", "c"]);
        assert_eq!(r[1], vec!["", "", ""]);
    }

    #[test]
    fn ragged_rows_rejected_in_strict_mode() {
        let err = parse_csv("a,b\n1\n", CsvOptions::default()).unwrap_err();
        assert_eq!(err, CsvError::RaggedRow { line: 2, got: 1, expected: 2 });
    }

    #[test]
    fn ragged_rows_allowed_when_lenient() {
        let opts = CsvOptions { strict_width: false, ..Default::default() };
        let r = parse_csv("a,b\n1\n", opts).expect("lenient parse");
        assert_eq!(r[1], vec!["1"]);
    }

    #[test]
    fn unterminated_quote_is_an_error() {
        let err = parse_csv("a\n\"oops\n", CsvOptions::default()).unwrap_err();
        assert_eq!(err, CsvError::UnterminatedQuote { line: 2 });
    }

    #[test]
    fn stray_quote_is_an_error() {
        let err = parse_csv("a\nb\"c\n", CsvOptions::default()).unwrap_err();
        assert!(matches!(err, CsvError::StrayQuote { .. }));
    }

    #[test]
    fn alternate_separator() {
        let opts = CsvOptions { separator: ';', ..Default::default() };
        let r = parse_csv("a;b\n1;2\n", opts).expect("parse");
        assert_eq!(r[1], vec!["1", "2"]);
    }

    #[test]
    fn write_round_trips() {
        let records = vec![
            vec!["plain".to_string(), "with,comma".to_string()],
            vec!["with \"quote\"".to_string(), "multi\nline".to_string()],
        ];
        let text = write_csv(&records, ',');
        let back = parse(&text);
        assert_eq!(back, records);
    }
}
