//! # tabular — real-data ingestion for TableDC
//!
//! The production path from files to clusterable embeddings: a
//! dependency-free CSV reader/writer ([`csv`]), a relational table model
//! with type inference and profiling statistics ([`table`]), and encoders
//! that turn tables, rows, or columns into the `n × d` matrices
//! `tabledc::TableDc` consumes ([`encode`]).
//!
//! ```
//! use tabular::csv::{parse_csv, CsvOptions};
//! use tabular::encode::{embed_rows, EncodeOptions};
//! use tabular::table::Table;
//!
//! let records = parse_csv("title,artist\nhey jude,beatles\nlet it be,beatles\n",
//!                         CsvOptions::default()).unwrap();
//! let table = Table::from_records("songs", &records, true);
//! let embeddings = embed_rows(&table, EncodeOptions::default());
//! assert_eq!(embeddings.rows(), 2);
//! ```

pub mod csv;
pub mod encode;
pub mod table;

pub use csv::{parse_csv, read_csv_file, write_csv, CsvError, CsvOptions};
pub use encode::{embed_columns, embed_rows, embed_tables, EncodeOptions};
pub use table::{Column, ColumnType, Table};
