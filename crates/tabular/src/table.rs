//! The relational table model: tables, columns, rows, type inference, and
//! profiling statistics.

use std::collections::HashSet;
use std::path::Path;

use crate::csv::{read_csv_file, CsvError, CsvOptions};

/// Inferred primitive type of a column (simple profiling, not a full type
/// system — enough for schema-level similarity features).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// All non-null values parse as integers.
    Integer,
    /// All non-null values parse as floats (and not all as integers).
    Float,
    /// All non-null values are `true`/`false`/`yes`/`no` (case-insensitive).
    Boolean,
    /// Everything else.
    Text,
    /// No non-null values.
    Empty,
}

/// A named column of string values (nulls are empty strings).
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    /// Header, if the source had one.
    pub header: Option<String>,
    /// Cell values, top to bottom.
    pub values: Vec<String>,
}

impl Column {
    /// Creates a column.
    pub fn new(header: Option<String>, values: Vec<String>) -> Self {
        Self { header, values }
    }

    /// Number of cells.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the column has no cells.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Fraction of empty-string (null) cells.
    pub fn null_fraction(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().filter(|v| v.trim().is_empty()).count() as f64
            / self.values.len() as f64
    }

    /// Number of distinct non-null values.
    pub fn distinct_count(&self) -> usize {
        self.values
            .iter()
            .map(|v| v.trim())
            .filter(|v| !v.is_empty())
            .collect::<HashSet<_>>()
            .len()
    }

    /// Infers the column's primitive type from its non-null values.
    pub fn infer_type(&self) -> ColumnType {
        let non_null: Vec<&str> =
            self.values.iter().map(|v| v.trim()).filter(|v| !v.is_empty()).collect();
        if non_null.is_empty() {
            return ColumnType::Empty;
        }
        if non_null.iter().all(|v| v.parse::<i64>().is_ok()) {
            return ColumnType::Integer;
        }
        if non_null.iter().all(|v| v.parse::<f64>().is_ok()) {
            return ColumnType::Float;
        }
        let is_bool = |v: &str| {
            matches!(v.to_ascii_lowercase().as_str(), "true" | "false" | "yes" | "no")
        };
        if non_null.iter().all(|v| is_bool(v)) {
            return ColumnType::Boolean;
        }
        ColumnType::Text
    }

    /// The column's text for embedding: header (if any) followed by
    /// values.
    pub fn text(&self, include_header: bool, max_values: usize) -> String {
        let mut parts: Vec<&str> = Vec::new();
        if include_header {
            if let Some(h) = &self.header {
                parts.push(h);
            }
        }
        parts.extend(self.values.iter().take(max_values).map(String::as_str));
        parts.join(" ")
    }
}

/// A table: an ordered set of equally long columns.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    /// Table name (e.g. the source file stem).
    pub name: String,
    /// The columns.
    pub columns: Vec<Column>,
}

impl Table {
    /// Builds a table from CSV records, treating the first record as the
    /// header row when `has_header`.
    ///
    /// # Panics
    /// Panics if records are ragged (parse with `strict_width` to avoid).
    pub fn from_records(name: &str, records: &[Vec<String>], has_header: bool) -> Self {
        let width = records.first().map_or(0, Vec::len);
        let (headers, body): (Vec<Option<String>>, &[Vec<String>]) = if has_header
            && !records.is_empty()
        {
            (records[0].iter().map(|h| Some(h.clone())).collect(), &records[1..])
        } else {
            (vec![None; width], records)
        };
        let columns = headers
            .into_iter()
            .enumerate()
            .map(|(j, header)| {
                let values = body.iter().map(|r| r[j].clone()).collect();
                Column::new(header, values)
            })
            .collect();
        Self { name: name.to_string(), columns }
    }

    /// Loads a table from a CSV file (header row assumed).
    ///
    /// # Errors
    /// Propagates CSV / I/O errors.
    pub fn from_csv_file(path: &Path) -> Result<Self, CsvError> {
        let records = read_csv_file(path, CsvOptions::default())?;
        let name = path.file_stem().map_or_else(
            || "table".to_string(),
            |s| s.to_string_lossy().into_owned(),
        );
        Ok(Self::from_records(&name, &records, true))
    }

    /// Number of rows (excluding the header).
    pub fn n_rows(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// The `i`-th row's cells.
    pub fn row(&self, i: usize) -> Vec<&str> {
        self.columns.iter().map(|c| c.values[i].as_str()).collect()
    }

    /// Serializes a row as text with `[SEP]` boundaries — the SBERT
    /// row-serialization of §4.1.3 ("each row is represented as a sequence
    /// of its cell values appended with [SEP] token").
    pub fn row_text(&self, i: usize) -> String {
        self.row(i).join(" [SEP] ")
    }

    /// The table's schema-level text: header names (or inferred types for
    /// headerless columns).
    pub fn schema_text(&self) -> String {
        self.columns
            .iter()
            .map(|c| match &c.header {
                Some(h) => h.clone(),
                None => format!("{:?}", c.infer_type()).to_lowercase(),
            })
            .collect::<Vec<_>>()
            .join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csv::parse_csv;

    fn demo_table() -> Table {
        let records = parse_csv(
            "city,population,capital\nparis,2100000,true\nlyon,520000,false\n,,\n",
            CsvOptions::default(),
        )
        .expect("parse");
        Table::from_records("cities", &records, true)
    }

    #[test]
    fn from_records_splits_columns() {
        let t = demo_table();
        assert_eq!(t.n_cols(), 3);
        assert_eq!(t.n_rows(), 3);
        assert_eq!(t.columns[0].header.as_deref(), Some("city"));
        assert_eq!(t.columns[0].values[1], "lyon");
    }

    #[test]
    fn type_inference() {
        let t = demo_table();
        assert_eq!(t.columns[0].infer_type(), ColumnType::Text);
        assert_eq!(t.columns[1].infer_type(), ColumnType::Integer);
        assert_eq!(t.columns[2].infer_type(), ColumnType::Boolean);
        let floats = Column::new(None, vec!["1.5".into(), "2".into()]);
        assert_eq!(floats.infer_type(), ColumnType::Float);
        let empty = Column::new(None, vec!["".into(), "  ".into()]);
        assert_eq!(empty.infer_type(), ColumnType::Empty);
    }

    #[test]
    fn profiling_statistics() {
        let t = demo_table();
        assert!((t.columns[0].null_fraction() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(t.columns[0].distinct_count(), 2);
    }

    #[test]
    fn row_serialization_uses_sep() {
        let t = demo_table();
        assert_eq!(t.row_text(0), "paris [SEP] 2100000 [SEP] true");
    }

    #[test]
    fn schema_text_includes_headers() {
        let t = demo_table();
        assert_eq!(t.schema_text(), "city population capital");
    }

    #[test]
    fn headerless_tables_use_inferred_types() {
        let records =
            parse_csv("1,x\n2,y\n", CsvOptions::default()).expect("parse");
        let t = Table::from_records("anon", &records, false);
        assert_eq!(t.n_rows(), 2);
        assert_eq!(t.schema_text(), "integer text");
    }

    #[test]
    fn column_text_respects_limits() {
        let c = Column::new(Some("h".into()), vec!["a".into(), "b".into(), "c".into()]);
        assert_eq!(c.text(true, 2), "h a b");
        assert_eq!(c.text(false, 10), "a b c");
    }
}
