//! The autoencoder used for representation learning (paper Eq. 1–2) and its
//! reconstruction pretraining (Algorithm 1, line 1).

use autograd::{Tape, Var};
use rand::rngs::StdRng;
use tensor::Matrix;

use crate::layers::{Activation, Mlp};
use crate::loss::mse;
use crate::optim::{Adam, Optimizer};
use crate::params::{BoundParams, Params};

/// Encoder/decoder pair with a symmetric layer layout.
///
/// TableDC uses four AE layers (§4.3) with a latent size of 100; the default
/// constructor [`Autoencoder::tabledc_default`] mirrors the widely used
/// DEC/SDCN layout `d → 500 → 500 → 2000 → latent` and its mirror image.
#[derive(Debug, Clone)]
pub struct Autoencoder {
    encoder: Mlp,
    decoder: Mlp,
}

impl Autoencoder {
    /// Builds an AE with encoder dims `dims` (input first, latent last) and
    /// a mirrored decoder. Hidden layers are ReLU; the latent and the final
    /// reconstruction are linear, which suits standardized real-valued
    /// embeddings.
    pub fn new(params: &mut Params, dims: &[usize], rng: &mut StdRng) -> Self {
        assert!(dims.len() >= 2, "Autoencoder::new: need at least [input, latent]");
        let mut rev: Vec<usize> = dims.to_vec();
        rev.reverse();
        // Named registration labels per-layer gradient-norm telemetry
        // (`nn.grad_norm.enc.l0.w`, …) and health dumps.
        let encoder = Mlp::new_named(params, "enc", dims, Activation::Relu, Activation::Linear, rng);
        let decoder = Mlp::new_named(params, "dec", &rev, Activation::Relu, Activation::Linear, rng);
        Self { encoder, decoder }
    }

    /// The DEC/SDCN-style layout used by TableDC (§4.3):
    /// `input → 500 → 500 → 2000 → latent`.
    pub fn tabledc_default(params: &mut Params, input_dim: usize, latent_dim: usize, rng: &mut StdRng) -> Self {
        Self::new(params, &[input_dim, 500, 500, 2000, latent_dim], rng)
    }

    /// A mid-sized layout for scaled-down experiments:
    /// `input → 256 → 128 → latent`.
    pub fn compact(params: &mut Params, input_dim: usize, latent_dim: usize, rng: &mut StdRng) -> Self {
        Self::new(params, &[input_dim, 256, 128, latent_dim], rng)
    }

    /// Encoder forward pass on a tape.
    pub fn encode(&self, bound: &BoundParams<'_>, x: Var) -> Var {
        self.encoder.forward(bound, x)
    }

    /// Decoder forward pass on a tape.
    pub fn decode(&self, bound: &BoundParams<'_>, z: Var) -> Var {
        self.decoder.forward(bound, z)
    }

    /// The encoder's layers, in order — exposed so graph-fusion baselines
    /// (SDCN) can inject per-layer activations into their GCN.
    pub fn encoder_layers(&self) -> &[crate::layers::Linear] {
        self.encoder.layers()
    }

    /// The decoder's layers, in order.
    pub fn decoder_layers(&self) -> &[crate::layers::Linear] {
        self.decoder.layers()
    }

    /// Latent dimension.
    pub fn latent_dim(&self) -> usize {
        self.encoder.out_dim()
    }

    /// Input dimension.
    pub fn input_dim(&self) -> usize {
        self.encoder.in_dim()
    }

    /// Gradient-free encoding of a data matrix.
    pub fn embed(&self, params: &Params, x: &Matrix) -> Matrix {
        self.encoder.infer(params, x)
    }

    /// Gradient-free round trip (encode then decode).
    pub fn reconstruct(&self, params: &Params, x: &Matrix) -> Matrix {
        let tape = Tape::new();
        let bound = params.bind(&tape);
        let xv = tape.constant(x.clone());
        let out = self.decode(&bound, self.encode(&bound, xv));
        tape.value(out)
    }

    /// Reconstruction pretraining (Algorithm 1 line 1): denoising
    /// minibatch Adam on `MSE(x, decode(encode(x̃)))` for `epochs` epochs
    /// with batch size 64 (each epoch makes `⌈n/64⌉` updates, so epochs
    /// behave like the paper's PyTorch epochs on modest n). Returns the
    /// per-epoch loss trace (mean batch loss).
    pub fn pretrain(&self, params: &mut Params, x: &Matrix, epochs: usize, lr: f64) -> Vec<f64> {
        self.pretrain_with_batch(params, x, epochs, lr, 64, &mut tensor::random::rng(0))
    }

    /// [`Autoencoder::pretrain`] with an explicit batch size and RNG for
    /// the shuffling. `batch_size >= n` degenerates to full-batch training.
    pub fn pretrain_with_batch(
        &self,
        params: &mut Params,
        x: &Matrix,
        epochs: usize,
        lr: f64,
        batch_size: usize,
        rng: &mut rand::rngs::StdRng,
    ) -> Vec<f64> {
        self.pretrain_denoising(params, x, epochs, lr, batch_size, 0.2, rng)
    }

    /// Denoising pretraining: each batch's *input* is corrupted by zeroing
    /// a `corruption` fraction of entries while the reconstruction target
    /// stays clean — the stacked-denoising-autoencoder recipe DEC and SDCN
    /// pretrain with, which stops the encoder from memorizing per-sample
    /// noise (essential at small n). `corruption = 0` recovers a plain AE.
    pub fn pretrain_denoising(
        &self,
        params: &mut Params,
        x: &Matrix,
        epochs: usize,
        lr: f64,
        batch_size: usize,
        corruption: f64,
        rng: &mut rand::rngs::StdRng,
    ) -> Vec<f64> {
        use rand::Rng;
        assert!((0.0..1.0).contains(&corruption), "corruption must be in [0,1)");
        let _pretrain_timer = obs::span!("ae.pretrain");
        let n = x.rows();
        let batch_size = batch_size.clamp(1, n.max(1));
        let mut adam = Adam::new(lr);
        let mut trace = Vec::with_capacity(epochs);
        let pretrain_hist = obs::registry().histogram("ae.pretrain_epoch_ms");
        for epoch in 0..epochs {
            let epoch_start = std::time::Instant::now();
            let order = tensor::random::permutation(n, rng);
            let mut epoch_loss = 0.0;
            let mut batches = 0usize;
            for chunk in order.chunks(batch_size) {
                let clean = x.select_rows(chunk);
                let mut corrupted = clean.clone();
                if corruption > 0.0 {
                    for v in corrupted.as_mut_slice() {
                        if rng.gen::<f64>() < corruption {
                            *v = 0.0;
                        }
                    }
                }
                let tape = Tape::new();
                let bound = params.bind(&tape);
                let target = tape.constant(clean);
                let input = tape.constant(corrupted);
                let recon = self.decode(&bound, self.encode(&bound, input));
                let loss = mse(&tape, target, recon);
                epoch_loss += tape.value(loss)[(0, 0)];
                batches += 1;
                let grads = tape.backward(loss);
                adam.step_from_tape(params, &bound, &grads);
            }
            let mean_loss = epoch_loss / batches.max(1) as f64;
            trace.push(mean_loss);
            let epoch_ms = epoch_start.elapsed().as_secs_f64() * 1e3;
            pretrain_hist.record(epoch_ms);
            obs::event("ae.pretrain_epoch")
                .u64("epoch", epoch as u64)
                .f64("loss", mean_loss)
                .f64("epoch_ms", epoch_ms)
                .emit();
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::random::{randn, rng};

    #[test]
    fn shapes_are_mirrored() {
        let mut params = Params::new();
        let mut r = rng(1);
        let ae = Autoencoder::new(&mut params, &[10, 8, 3], &mut r);
        assert_eq!(ae.input_dim(), 10);
        assert_eq!(ae.latent_dim(), 3);
        let x = randn(5, 10, &mut r);
        assert_eq!(ae.embed(&params, &x).shape(), (5, 3));
        assert_eq!(ae.reconstruct(&params, &x).shape(), (5, 10));
    }

    #[test]
    fn pretraining_reduces_reconstruction_loss() {
        let mut params = Params::new();
        let mut r = rng(2);
        let ae = Autoencoder::new(&mut params, &[6, 16, 2], &mut r);
        // Low-rank data: 2 latent dims suffice, so the AE can compress well.
        let basis = randn(2, 6, &mut r);
        let codes = randn(40, 2, &mut r);
        let x = codes.matmul(&basis);
        let trace = ae.pretrain(&mut params, &x, 60, 0.01);
        assert!(trace.len() == 60);
        let first = trace[0];
        let last = *trace.last().expect("non-empty");
        assert!(
            last < first * 0.5,
            "pretraining did not reduce loss enough: {first} → {last}"
        );
    }

    #[test]
    fn default_layout_matches_paper() {
        let mut params = Params::new();
        let mut r = rng(3);
        let ae = Autoencoder::tabledc_default(&mut params, 300, 100, &mut r);
        // 4 encoder + 4 decoder layers (paper §4.3: "four AE layers").
        assert_eq!(ae.latent_dim(), 100);
        assert_eq!(ae.input_dim(), 300);
    }
}
