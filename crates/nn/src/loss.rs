//! Loss functions used across TableDC and the deep baselines.

use autograd::{Tape, Var};
use tensor::Matrix;

/// Numerical floor inside logarithms.
pub const LOG_EPS: f64 = 1e-12;

/// Mean-squared-error reconstruction loss (paper Eq. 12):
/// `1/n · Σ (x − x̂)²` where the mean is over *all* elements.
pub fn mse(t: &Tape, target: Var, pred: Var) -> Var {
    t.mean(t.square(t.sub(target, pred)))
}

/// KL divergence `KL(p ‖ m) = 1/n · Σ p·log(p/m)` with a constant target
/// `p` (paper Eq. 10), normalized per row ("batchmean", the convention of
/// the reference DEC/SDCN implementations — an unnormalized sum would make
/// the clustering gradient grow with n·k and swamp the mean-reduced
/// reconstruction loss in Eq. 13). `p` does not require gradients, so it
/// enters the tape as a constant; the `p·log p` term is still included so
/// the node's *value* is a true mean KL divergence (useful for the
/// Figure 5 loss curves), while the gradient only flows through
/// `−Σ p·log m`.
pub fn kl_div(t: &Tape, p: &Matrix, m: Var) -> Var {
    let n = p.rows().max(1) as f64;
    let pv = t.constant(p.clone());
    let log_m = t.ln(t.add_scalar(m, LOG_EPS));
    let cross = t.scale(t.neg(t.sum(t.mul(pv, log_m))), 1.0 / n);
    // Constant entropy term 1/n · Σ p·log p, added as a constant node.
    let ent: f64 =
        p.as_slice().iter().map(|&x| if x > 0.0 { x * x.ln() } else { 0.0 }).sum::<f64>() / n;
    t.add_scalar(cross, ent)
}

/// Plain (non-tape) mean-per-row KL divergence between two row-stochastic
/// matrices, `1/n · Σ_ij p·log(p/q)` — used for reporting (Figure 5)
/// without autograd.
pub fn kl_div_value(p: &Matrix, q: &Matrix) -> f64 {
    assert_eq!(p.shape(), q.shape(), "kl_div_value: shape mismatch");
    let n = p.rows().max(1) as f64;
    p.as_slice()
        .iter()
        .zip(q.as_slice())
        .map(|(&pi, &qi)| if pi > 0.0 { pi * (pi / qi.max(LOG_EPS)).ln() } else { 0.0 })
        .sum::<f64>()
        / n
}

/// Cross-entropy of row-stochastic predictions `m` against constant hard or
/// soft targets `p`: `−1/n Σ p·log m`. Used by SHGP's pseudo-label loss.
pub fn cross_entropy(t: &Tape, p: &Matrix, m: Var) -> Var {
    let n = p.rows().max(1) as f64;
    let pv = t.constant(p.clone());
    let log_m = t.ln(t.add_scalar(m, LOG_EPS));
    t.scale(t.neg(t.sum(t.mul(pv, log_m))), 1.0 / n)
}

/// NT-Xent-style contrastive loss on two aligned views (rows of `za`, `zb`
/// are positives; all other cross pairs are negatives), with temperature
/// `tau`. Used by the Starmie-style contrastive column encoder.
///
/// Implemented over tape variables so the encoder can be trained end to
/// end.
pub fn nt_xent(t: &Tape, za: Var, zb: Var, tau: f64) -> Var {
    // Cosine similarities via normalized dot products; we approximate with
    // dot products of L2-normalized inputs, which callers should provide,
    // or raw dot products otherwise (still a valid contrastive objective).
    let logits = t.scale(t.matmul(za, t.transpose(zb)), 1.0 / tau);
    let probs = t.softmax_rows(logits);
    // Positives are the diagonal; maximize their log-probability.
    let n = t.shape(za).0;
    let eye = Matrix::identity(n);
    let eye_v = t.constant(eye);
    let log_p = t.ln(t.add_scalar(probs, LOG_EPS));
    t.scale(t.neg(t.sum(t.mul(eye_v, log_p))), 1.0 / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_of_identical_is_zero() {
        let t = Tape::new();
        let a = t.leaf(Matrix::from_rows(&[&[1.0, 2.0]]));
        let l = mse(&t, a, a);
        assert_eq!(t.value(l)[(0, 0)], 0.0);
    }

    #[test]
    fn mse_matches_hand_value() {
        let t = Tape::new();
        let a = t.constant(Matrix::from_rows(&[&[1.0, 2.0]]));
        let b = t.constant(Matrix::from_rows(&[&[3.0, 2.0]]));
        let l = mse(&t, a, b);
        assert_eq!(t.value(l)[(0, 0)], 2.0); // ((1-3)² + 0)/2
    }

    #[test]
    fn kl_zero_when_distributions_match() {
        let p = Matrix::from_rows(&[&[0.25, 0.75], &[0.5, 0.5]]);
        let t = Tape::new();
        let m = t.constant(p.clone());
        let l = kl_div(&t, &p, m);
        assert!(t.value(l)[(0, 0)].abs() < 1e-9);
        assert!(kl_div_value(&p, &p).abs() < 1e-12);
    }

    #[test]
    fn kl_positive_when_distributions_differ() {
        let p = Matrix::from_rows(&[&[0.9, 0.1]]);
        let q = Matrix::from_rows(&[&[0.5, 0.5]]);
        let v = kl_div_value(&p, &q);
        assert!(v > 0.0);
        // Hand value: 0.9·ln(1.8) + 0.1·ln(0.2)
        let expect = 0.9 * (1.8f64).ln() + 0.1 * (0.2f64).ln();
        assert!((v - expect).abs() < 1e-12);
        // Tape version agrees.
        let t = Tape::new();
        let m = t.constant(q);
        assert!((t.value(kl_div(&t, &p, m))[(0, 0)] - expect).abs() < 1e-6);
    }

    #[test]
    fn kl_gradient_pushes_m_towards_p() {
        // d/dm KL(p‖m) should be negative where p > m (increase m there).
        let p = Matrix::from_rows(&[&[0.9, 0.1]]);
        let t = Tape::new();
        let m = t.leaf(Matrix::from_rows(&[&[0.5, 0.5]]));
        let l = kl_div(&t, &p, m);
        let g = t.backward(l).grad(m);
        assert!(g[(0, 0)] < 0.0, "gradient should increase m where p is larger");
        assert!(g[(0, 1)] > g[(0, 0)]);
    }

    #[test]
    fn cross_entropy_prefers_correct_labels() {
        let p = Matrix::from_rows(&[&[1.0, 0.0]]);
        let good = Matrix::from_rows(&[&[0.9, 0.1]]);
        let bad = Matrix::from_rows(&[&[0.1, 0.9]]);
        let t = Tape::new();
        let lg = t.value(cross_entropy(&t, &p, t.constant(good)))[(0, 0)];
        let lb = t.value(cross_entropy(&t, &p, t.constant(bad)))[(0, 0)];
        assert!(lg < lb);
    }

    #[test]
    fn nt_xent_lower_for_aligned_views() {
        let t = Tape::new();
        let base = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]).normalize_rows();
        let aligned = t.constant(base.clone());
        let view = t.constant(base.clone());
        let l_aligned = t.value(nt_xent(&t, aligned, view, 0.5))[(0, 0)];
        // Misaligned: swap rows of the second view.
        let swapped = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let t2 = Tape::new();
        let a2 = t2.constant(base);
        let b2 = t2.constant(swapped);
        let l_mis = t2.value(nt_xent(&t2, a2, b2, 0.5))[(0, 0)];
        assert!(l_aligned < l_mis);
    }
}
