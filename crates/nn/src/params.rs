//! Parameter storage and per-tape binding.
//!
//! Models in this workspace keep their weights in a flat [`Params`] store
//! and refer to them by [`ParamId`]. Each training step binds the store to
//! a fresh autograd tape ([`Params::bind`]), producing a [`BoundParams`]
//! that maps ids to tape [`Var`]s; after `backward`, the optimizer reads
//! each parameter's gradient through the same mapping. This mirrors the
//! PyTorch parameter/optimizer split while staying explicit about tape
//! lifetimes.

use autograd::{Tape, Var};
use tensor::Matrix;

/// Identifier of a parameter inside a [`Params`] store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub(crate) usize);

/// Flat storage for model parameters.
#[derive(Default, Clone)]
pub struct Params {
    mats: Vec<Matrix>,
    names: Vec<String>,
}

impl Params {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a parameter under an auto-generated name (`param<i>`),
    /// returning its id.
    pub fn register(&mut self, value: Matrix) -> ParamId {
        let name = format!("param{}", self.mats.len());
        self.register_named(name, value)
    }

    /// Registers a parameter under an explicit name, returning its id.
    /// Names label telemetry (`nn.grad_norm.<name>` histograms, health
    /// violations, diagnostic dumps); they are not required to be unique —
    /// duplicate names simply share a histogram.
    pub fn register_named(&mut self, name: impl Into<String>, value: Matrix) -> ParamId {
        self.mats.push(value);
        self.names.push(name.into());
        ParamId(self.mats.len() - 1)
    }

    /// The telemetry name of a parameter.
    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id.0]
    }

    /// Iterates over all parameter ids in registration order.
    pub fn ids(&self) -> impl Iterator<Item = ParamId> + '_ {
        (0..self.mats.len()).map(ParamId)
    }

    /// Number of registered parameters.
    pub fn len(&self) -> usize {
        self.mats.len()
    }

    /// True if no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.mats.is_empty()
    }

    /// Read access to a parameter value.
    pub fn get(&self, id: ParamId) -> &Matrix {
        &self.mats[id.0]
    }

    /// Write access to a parameter value.
    pub fn get_mut(&mut self, id: ParamId) -> &mut Matrix {
        &mut self.mats[id.0]
    }

    /// Total number of scalar weights across all parameters.
    pub fn num_scalars(&self) -> usize {
        self.mats.iter().map(Matrix::len).sum()
    }

    /// Creates tape leaves for every parameter, returning the binding used
    /// by both the forward pass and the optimizer step.
    pub fn bind<'t>(&self, tape: &'t Tape) -> BoundParams<'t> {
        BoundParams { tape, vars: self.mats.iter().map(|m| tape.leaf(m.clone())).collect() }
    }
}

/// Parameters bound to a specific tape as leaf nodes.
pub struct BoundParams<'t> {
    tape: &'t Tape,
    vars: Vec<Var>,
}

impl<'t> BoundParams<'t> {
    /// The tape [`Var`] for parameter `id`.
    pub fn var(&self, id: ParamId) -> Var {
        self.vars[id.0]
    }

    /// The tape this binding belongs to.
    pub fn tape(&self) -> &'t Tape {
        self.tape
    }

    /// Iterates over `(ParamId, Var)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ParamId, Var)> + '_ {
        self.vars.iter().enumerate().map(|(i, &v)| (ParamId(i), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_access() {
        let mut p = Params::new();
        let a = p.register(Matrix::ones(2, 2));
        let b = p.register(Matrix::zeros(1, 3));
        assert_eq!(p.len(), 2);
        assert_eq!(p.num_scalars(), 7);
        assert_eq!(p.get(a)[(0, 0)], 1.0);
        p.get_mut(b)[(0, 2)] = 5.0;
        assert_eq!(p.get(b)[(0, 2)], 5.0);
    }

    #[test]
    fn names_default_and_explicit() {
        let mut p = Params::new();
        let a = p.register(Matrix::ones(1, 1));
        let b = p.register_named("centers", Matrix::ones(2, 2));
        assert_eq!(p.name(a), "param0");
        assert_eq!(p.name(b), "centers");
        let ids: Vec<ParamId> = p.ids().collect();
        assert_eq!(ids, vec![a, b]);
    }

    #[test]
    fn binding_exposes_values_on_tape() {
        let mut p = Params::new();
        let a = p.register(Matrix::full(1, 1, 3.0));
        let tape = Tape::new();
        let bound = p.bind(&tape);
        assert_eq!(tape.value(bound.var(a))[(0, 0)], 3.0);
        assert_eq!(bound.iter().count(), 1);
    }
}
