//! # nn — neural-network building blocks on the autograd tape
//!
//! Layers ([`layers`]), the shared autoencoder ([`autoencoder`]), losses
//! ([`loss`]), optimizers ([`optim`]), and parameter management
//! ([`params`]). Every deep model in this repository — TableDC itself and
//! the SDCN/DFCN/DCRN/EDESC/SHGP baselines — is assembled from these
//! pieces, so behavioural differences between methods come from their
//! objectives, not from framework differences.

pub mod autoencoder;
pub mod layers;
pub mod loss;
pub mod optim;
pub mod params;

pub use autoencoder::Autoencoder;
pub use layers::{Activation, Linear, Mlp};
pub use optim::{Adam, Optimizer, Sgd};
pub use params::{BoundParams, ParamId, Params};

#[cfg(test)]
mod integration {
    use autograd::Tape;
    use tensor::random::{randn, rng};
    use tensor::Matrix;

    use crate::layers::{Activation, Mlp};
    use crate::loss::mse;
    use crate::optim::{Adam, Optimizer};
    use crate::params::Params;

    /// End-to-end sanity: a 2-layer MLP can fit a linear map.
    #[test]
    fn mlp_fits_linear_target() {
        let mut r = rng(7);
        let mut params = Params::new();
        let mlp = Mlp::new(&mut params, &[3, 8, 2], Activation::Tanh, Activation::Linear, &mut r);
        let w_true = randn(3, 2, &mut r);
        let x = randn(50, 3, &mut r);
        let y = x.matmul(&w_true);

        let mut adam = Adam::new(0.02);
        let mut last = f64::INFINITY;
        for _ in 0..300 {
            let tape = Tape::new();
            let bound = params.bind(&tape);
            let xv = tape.constant(x.clone());
            let yv = tape.constant(y.clone());
            let pred = mlp.forward(&bound, xv);
            let loss = mse(&tape, yv, pred);
            last = tape.value(loss)[(0, 0)];
            let grads = tape.backward(loss);
            adam.step_from_tape(&mut params, &bound, &grads);
        }
        assert!(last < 0.05, "final loss {last} too high");
    }

    /// Gradients flowing through the full loss stack stay finite.
    #[test]
    fn training_step_is_numerically_stable() {
        let mut r = rng(8);
        let mut params = Params::new();
        let mlp = Mlp::new(&mut params, &[4, 16, 4], Activation::Relu, Activation::Sigmoid, &mut r);
        let x = randn(20, 4, &mut r);
        let tape = Tape::new();
        let bound = params.bind(&tape);
        let xv = tape.constant(x.clone());
        let out = mlp.forward(&bound, xv);
        let loss = mse(&tape, xv, out);
        let grads = tape.backward(loss);
        for (_, var) in bound.iter() {
            assert!(grads.grad(var).all_finite());
        }
        let _ = Matrix::zeros(1, 1);
    }
}
