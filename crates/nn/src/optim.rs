//! First-order optimizers: SGD and Adam.
//!
//! The paper trains TableDC and every deep baseline with Adam (§4.3); SGD
//! is kept for tests and ablations.

use autograd::Gradients;
use tensor::Matrix;

use crate::params::{BoundParams, ParamId, Params};

/// A first-order optimizer over a [`Params`] store.
pub trait Optimizer {
    /// Applies one update step given `(id, gradient)` pairs.
    fn step(&mut self, params: &mut Params, grads: &[(ParamId, Matrix)]);

    /// Convenience: pulls each bound parameter's gradient out of a backward
    /// pass and applies the step.
    fn step_from_tape(
        &mut self,
        params: &mut Params,
        bound: &BoundParams<'_>,
        grads: &Gradients,
    ) where
        Self: Sized,
    {
        let pairs: Vec<(ParamId, Matrix)> = bound
            .iter()
            .filter_map(|(id, var)| grads.try_grad(var).map(|g| (id, g.clone())))
            .collect();
        self.step(params, &pairs);
    }

    /// [`Optimizer::step_from_tape`] with training-health telemetry: the
    /// step additionally measures per-parameter and global gradient L2
    /// norms, the update-to-parameter-norm ratio, and whether any gradient
    /// carried a non-finite entry. See [`instrumented_step`].
    fn step_from_tape_instrumented(
        &mut self,
        params: &mut Params,
        bound: &BoundParams<'_>,
        grads: &Gradients,
    ) -> StepStats
    where
        Self: Sized,
    {
        let pairs: Vec<(ParamId, Matrix)> = bound
            .iter()
            .filter_map(|(id, var)| grads.try_grad(var).map(|g| (id, g.clone())))
            .collect();
        instrumented_step(self, params, &pairs)
    }
}

/// Numerical-health telemetry of one optimizer step.
#[derive(Debug, Clone)]
pub struct StepStats {
    /// Per-parameter L2 gradient norms, in `grads` order.
    pub grad_norms: Vec<(ParamId, f64)>,
    /// Global gradient L2 norm across all updated parameters.
    pub global_grad_norm: f64,
    /// L2 norm of the updated parameters *before* the step.
    pub param_norm: f64,
    /// L2 norm of the applied update `‖θ_new − θ_old‖`.
    pub update_norm: f64,
    /// First parameter whose gradient contained a NaN/Inf, if any.
    pub nonfinite_grad: Option<ParamId>,
}

impl StepStats {
    /// Update-to-parameter-norm ratio `‖Δθ‖ / (‖θ‖ + 1e-12)` — the scale-
    /// free "effective step size" that flags both frozen training (≈0) and
    /// divergence (≫ learning rate).
    pub fn update_ratio(&self) -> f64 {
        self.update_norm / (self.param_norm + 1e-12)
    }

    /// Records the finite stats into the metrics registry: one
    /// `nn.grad_norm.<name>` histogram per parameter, plus the global
    /// `nn.grad_norm` and `nn.update_ratio` histograms. Non-finite values
    /// are skipped — they are the health monitor's story, not a sample.
    pub fn record(&self, params: &Params) {
        let reg = obs::registry();
        for (id, norm) in &self.grad_norms {
            if norm.is_finite() {
                reg.histogram(&format!("nn.grad_norm.{}", params.name(*id))).record(*norm);
            }
        }
        if self.global_grad_norm.is_finite() {
            reg.histogram("nn.grad_norm").record(self.global_grad_norm);
        }
        let ratio = self.update_ratio();
        if ratio.is_finite() {
            reg.histogram("nn.update_ratio").record(ratio);
        }
    }

    /// Emits one `nn.grad_norm` trace event for this step, carrying the
    /// global norm and update ratio. Skipped when either value is
    /// non-finite so every emitted `nn.grad_norm` event has finite numeric
    /// fields (`trace_check` enforces this).
    pub fn emit_event(&self, epoch: u64) {
        let ratio = self.update_ratio();
        if self.global_grad_norm.is_finite() && ratio.is_finite() {
            obs::event("nn.grad_norm")
                .u64("epoch", epoch)
                .f64("global", self.global_grad_norm)
                .f64("update_ratio", ratio)
                .emit();
        }
    }
}

/// Applies one optimizer step while measuring gradient and update norms.
///
/// The measurement is three extra passes over the updated parameters
/// (gradient norms, pre-step parameter snapshot, post-step delta norm) —
/// negligible next to the backward pass that produced the gradients, so
/// callers run it unconditionally and the health policy only decides what
/// to *do* with the numbers.
pub fn instrumented_step(
    opt: &mut (impl Optimizer + ?Sized),
    params: &mut Params,
    grads: &[(ParamId, Matrix)],
) -> StepStats {
    let mut grad_norms = Vec::with_capacity(grads.len());
    let mut global_sq = 0.0;
    let mut nonfinite_grad = None;
    for (id, g) in grads {
        let sq = g.frobenius_sq();
        if !sq.is_finite() && nonfinite_grad.is_none() {
            nonfinite_grad = Some(*id);
        }
        grad_norms.push((*id, sq.sqrt()));
        global_sq += sq;
    }
    let before: Vec<(ParamId, Matrix)> =
        grads.iter().map(|(id, _)| (*id, params.get(*id).clone())).collect();
    let param_sq: f64 = before.iter().map(|(_, m)| m.frobenius_sq()).sum();
    opt.step(params, grads);
    let update_sq: f64 = before
        .iter()
        .map(|(id, old)| {
            old.as_slice()
                .iter()
                .zip(params.get(*id).as_slice())
                .map(|(a, b)| (b - a) * (b - a))
                .sum::<f64>()
        })
        .sum();
    StepStats {
        grad_norms,
        global_grad_norm: global_sq.sqrt(),
        param_norm: param_sq.sqrt(),
        update_norm: update_sq.sqrt(),
        nonfinite_grad,
    }
}

/// Plain stochastic gradient descent: `θ ← θ − lr·g`.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f64,
}

impl Sgd {
    /// Creates SGD with the given learning rate.
    pub fn new(lr: f64) -> Self {
        Self { lr }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut Params, grads: &[(ParamId, Matrix)]) {
        for (id, g) in grads {
            let p = params.get_mut(*id);
            debug_assert_eq!(p.shape(), g.shape());
            for (w, gi) in p.as_mut_slice().iter_mut().zip(g.as_slice()) {
                *w -= self.lr * gi;
            }
        }
    }
}

/// Adam (Kingma & Ba) with bias correction — the optimizer of §4.3.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate (paper uses 1e-3-scale rates typical for Adam).
    pub lr: f64,
    /// Exponential decay for the first moment.
    pub beta1: f64,
    /// Exponential decay for the second moment.
    pub beta2: f64,
    /// Numerical stabilizer.
    pub eps: f64,
    t: u64,
    m: Vec<Option<Matrix>>,
    v: Vec<Option<Matrix>>,
}

impl Adam {
    /// Adam with standard hyper-parameters (β₁=0.9, β₂=0.999, ε=1e-8).
    pub fn new(lr: f64) -> Self {
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }

    fn ensure_state(&mut self, id: ParamId, shape: (usize, usize)) {
        if self.m.len() <= id.0 {
            self.m.resize_with(id.0 + 1, || None);
            self.v.resize_with(id.0 + 1, || None);
        }
        if self.m[id.0].is_none() {
            self.m[id.0] = Some(Matrix::zeros(shape.0, shape.1));
            self.v[id.0] = Some(Matrix::zeros(shape.0, shape.1));
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut Params, grads: &[(ParamId, Matrix)]) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (id, g) in grads {
            self.ensure_state(*id, g.shape());
            let m = self.m[id.0].as_mut().expect("state ensured");
            let v = self.v[id.0].as_mut().expect("state ensured");
            let p = params.get_mut(*id);
            debug_assert_eq!(p.shape(), g.shape());
            for (((w, gi), mi), vi) in p
                .as_mut_slice()
                .iter_mut()
                .zip(g.as_slice())
                .zip(m.as_mut_slice())
                .zip(v.as_mut_slice())
            {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
                let m_hat = *mi / bc1;
                let v_hat = *vi / bc2;
                *w -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autograd::Tape;

    /// Minimizes f(w) = (w − 3)² from w = 0 with the given optimizer and
    /// returns the final value of w.
    fn minimize(opt: &mut dyn Optimizer, steps: usize) -> f64 {
        let mut params = Params::new();
        let w = params.register(Matrix::zeros(1, 1));
        for _ in 0..steps {
            let tape = Tape::new();
            let bound = params.bind(&tape);
            let diff = tape.add_scalar(bound.var(w), -3.0);
            let loss = tape.sum(tape.square(diff));
            let grads = tape.backward(loss);
            let pairs: Vec<(ParamId, Matrix)> =
                bound.iter().map(|(id, v)| (id, grads.grad(v))).collect();
            opt.step(&mut params, &pairs);
        }
        params.get(w)[(0, 0)]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let w = minimize(&mut Sgd::new(0.1), 100);
        assert!((w - 3.0).abs() < 1e-6, "w = {w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let w = minimize(&mut Adam::new(0.1), 500);
        assert!((w - 3.0).abs() < 1e-3, "w = {w}");
    }

    #[test]
    fn adam_first_step_has_unit_scale() {
        // With bias correction, the first Adam step is ≈ lr regardless of
        // gradient magnitude.
        let mut params = Params::new();
        let w = params.register(Matrix::zeros(1, 1));
        let mut adam = Adam::new(0.01);
        adam.step(&mut params, &[(w, Matrix::full(1, 1, 1000.0))]);
        assert!((params.get(w)[(0, 0)] + 0.01).abs() < 1e-6);
    }

    #[test]
    fn sgd_step_is_linear_in_gradient() {
        let mut params = Params::new();
        let w = params.register(Matrix::full(1, 2, 1.0));
        let mut sgd = Sgd::new(0.5);
        sgd.step(&mut params, &[(w, Matrix::from_rows(&[&[2.0, -4.0]]))]);
        assert_eq!(params.get(w).as_slice(), &[0.0, 3.0]);
    }

    /// Bias correction pinned against hand-computed moment values for the
    /// first two steps (β₁ = 0.9, β₂ = 0.999, gradients g₁ = 1, g₂ = 0.5).
    #[test]
    fn adam_bias_correction_matches_hand_computation() {
        let lr = 0.01;
        let eps = 1e-8;
        let mut params = Params::new();
        let w = params.register(Matrix::zeros(1, 1));
        let mut adam = Adam::new(lr);

        // Step 1: m₁ = 0.1·1, v₁ = 0.001·1; bias-corrected m̂ = v̂ = 1.
        adam.step(&mut params, &[(w, Matrix::full(1, 1, 1.0))]);
        let expected1 = -lr * 1.0 / (1.0f64.sqrt() + eps);
        assert!((params.get(w)[(0, 0)] - expected1).abs() < 1e-12);

        // Step 2 with g = 0.5:
        //   m₂ = 0.9·0.1 + 0.1·0.5 = 0.14,     m̂ = 0.14 / (1 − 0.9²)
        //   v₂ = 0.999·0.001 + 0.001·0.25,     v̂ = v₂ / (1 − 0.999²)
        adam.step(&mut params, &[(w, Matrix::full(1, 1, 0.5))]);
        let m_hat = 0.14 / (1.0 - 0.9f64.powi(2));
        let v_hat = (0.999 * 0.001 + 0.001 * 0.25) / (1.0 - 0.999f64.powi(2));
        let expected2 = expected1 - lr * m_hat / (v_hat.sqrt() + eps);
        assert!(
            (params.get(w)[(0, 0)] - expected2).abs() < 1e-12,
            "w = {}, expected {expected2}",
            params.get(w)[(0, 0)]
        );
    }

    #[test]
    fn instrumented_step_measures_norms() {
        let mut params = Params::new();
        let w = params.register_named("w", Matrix::zeros(1, 2));
        let mut sgd = Sgd::new(0.5);
        let stats =
            instrumented_step(&mut sgd, &mut params, &[(w, Matrix::from_rows(&[&[3.0, 4.0]]))]);
        assert_eq!(stats.global_grad_norm, 5.0);
        assert_eq!(stats.grad_norms, vec![(w, 5.0)]);
        assert_eq!(stats.param_norm, 0.0);
        // SGD update is −lr·g = (−1.5, −2.0), norm 2.5.
        assert!((stats.update_norm - 2.5).abs() < 1e-12);
        assert!(stats.nonfinite_grad.is_none());
        // Near-zero parameter norm saturates the ratio guard, not a panic.
        assert!(stats.update_ratio().is_finite());
    }

    #[test]
    fn instrumented_step_flags_first_nonfinite_gradient() {
        let mut params = Params::new();
        let a = params.register(Matrix::ones(1, 1));
        let b = params.register(Matrix::ones(1, 1));
        let mut sgd = Sgd::new(0.1);
        let stats = instrumented_step(
            &mut sgd,
            &mut params,
            &[(a, Matrix::full(1, 1, 1.0)), (b, Matrix::full(1, 1, f64::NAN))],
        );
        assert_eq!(stats.nonfinite_grad, Some(b));
        assert!(stats.global_grad_norm.is_nan());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Adam keeps per-parameter moment buffers strictly separate: a
        /// NaN gradient on one parameter never contaminates another
        /// parameter's moments or value. The poisoned run's healthy
        /// parameter must track a control optimizer that never saw the
        /// poisoned one, bit for bit, across several steps.
        #[test]
        fn nan_gradient_does_not_contaminate_other_params(
            healthy_grads in proptest::collection::vec(-10.0..10.0f64, 12),
            poison_step in 0..4usize,
        ) {
            let mut poisoned_params = Params::new();
            let pa = poisoned_params.register(Matrix::zeros(1, 1));
            let pb = poisoned_params.register(Matrix::from_rows(&[&[1.0, -2.0, 3.0]]));
            let mut control_params = Params::new();
            let _ca = control_params.register(Matrix::zeros(1, 1));
            let cb = control_params.register(Matrix::from_rows(&[&[1.0, -2.0, 3.0]]));

            let mut poisoned = Adam::new(0.05);
            let mut control = Adam::new(0.05);
            for step in 0..4 {
                let gb = Matrix::from_rows(&[&healthy_grads[step * 3..step * 3 + 3]]);
                let ga = if step == poison_step { f64::NAN } else { 0.5 };
                // The poisoned optimizer updates both parameters; the
                // control updates only the healthy one.
                poisoned.step(
                    &mut poisoned_params,
                    &[(pa, Matrix::full(1, 1, ga)), (pb, gb.clone())],
                );
                control.step(&mut control_params, &[(cb, gb)]);
            }
            // Both optimizers stepped 4 times, so bias correction agrees;
            // b's trajectory must be identical despite a's NaN gradient.
            prop_assert_eq!(
                poisoned_params.get(pb).as_slice(),
                control_params.get(cb).as_slice()
            );
            // And the poisoned parameter itself is NaN from its step on.
            prop_assert!(poisoned_params.get(pa)[(0, 0)].is_nan());
        }
    }
}
