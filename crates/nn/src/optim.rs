//! First-order optimizers: SGD and Adam.
//!
//! The paper trains TableDC and every deep baseline with Adam (§4.3); SGD
//! is kept for tests and ablations.

use autograd::Gradients;
use tensor::Matrix;

use crate::params::{BoundParams, ParamId, Params};

/// A first-order optimizer over a [`Params`] store.
pub trait Optimizer {
    /// Applies one update step given `(id, gradient)` pairs.
    fn step(&mut self, params: &mut Params, grads: &[(ParamId, Matrix)]);

    /// Convenience: pulls each bound parameter's gradient out of a backward
    /// pass and applies the step.
    fn step_from_tape(
        &mut self,
        params: &mut Params,
        bound: &BoundParams<'_>,
        grads: &Gradients,
    ) where
        Self: Sized,
    {
        let pairs: Vec<(ParamId, Matrix)> = bound
            .iter()
            .filter_map(|(id, var)| grads.try_grad(var).map(|g| (id, g.clone())))
            .collect();
        self.step(params, &pairs);
    }
}

/// Plain stochastic gradient descent: `θ ← θ − lr·g`.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f64,
}

impl Sgd {
    /// Creates SGD with the given learning rate.
    pub fn new(lr: f64) -> Self {
        Self { lr }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut Params, grads: &[(ParamId, Matrix)]) {
        for (id, g) in grads {
            let p = params.get_mut(*id);
            debug_assert_eq!(p.shape(), g.shape());
            for (w, gi) in p.as_mut_slice().iter_mut().zip(g.as_slice()) {
                *w -= self.lr * gi;
            }
        }
    }
}

/// Adam (Kingma & Ba) with bias correction — the optimizer of §4.3.
#[derive(Debug, Clone)]
pub struct Adam {
    /// Learning rate (paper uses 1e-3-scale rates typical for Adam).
    pub lr: f64,
    /// Exponential decay for the first moment.
    pub beta1: f64,
    /// Exponential decay for the second moment.
    pub beta2: f64,
    /// Numerical stabilizer.
    pub eps: f64,
    t: u64,
    m: Vec<Option<Matrix>>,
    v: Vec<Option<Matrix>>,
}

impl Adam {
    /// Adam with standard hyper-parameters (β₁=0.9, β₂=0.999, ε=1e-8).
    pub fn new(lr: f64) -> Self {
        Self { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, t: 0, m: Vec::new(), v: Vec::new() }
    }

    fn ensure_state(&mut self, id: ParamId, shape: (usize, usize)) {
        if self.m.len() <= id.0 {
            self.m.resize_with(id.0 + 1, || None);
            self.v.resize_with(id.0 + 1, || None);
        }
        if self.m[id.0].is_none() {
            self.m[id.0] = Some(Matrix::zeros(shape.0, shape.1));
            self.v[id.0] = Some(Matrix::zeros(shape.0, shape.1));
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut Params, grads: &[(ParamId, Matrix)]) {
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (id, g) in grads {
            self.ensure_state(*id, g.shape());
            let m = self.m[id.0].as_mut().expect("state ensured");
            let v = self.v[id.0].as_mut().expect("state ensured");
            let p = params.get_mut(*id);
            debug_assert_eq!(p.shape(), g.shape());
            for (((w, gi), mi), vi) in p
                .as_mut_slice()
                .iter_mut()
                .zip(g.as_slice())
                .zip(m.as_mut_slice())
                .zip(v.as_mut_slice())
            {
                *mi = self.beta1 * *mi + (1.0 - self.beta1) * gi;
                *vi = self.beta2 * *vi + (1.0 - self.beta2) * gi * gi;
                let m_hat = *mi / bc1;
                let v_hat = *vi / bc2;
                *w -= self.lr * m_hat / (v_hat.sqrt() + self.eps);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autograd::Tape;

    /// Minimizes f(w) = (w − 3)² from w = 0 with the given optimizer and
    /// returns the final value of w.
    fn minimize(opt: &mut dyn Optimizer, steps: usize) -> f64 {
        let mut params = Params::new();
        let w = params.register(Matrix::zeros(1, 1));
        for _ in 0..steps {
            let tape = Tape::new();
            let bound = params.bind(&tape);
            let diff = tape.add_scalar(bound.var(w), -3.0);
            let loss = tape.sum(tape.square(diff));
            let grads = tape.backward(loss);
            let pairs: Vec<(ParamId, Matrix)> =
                bound.iter().map(|(id, v)| (id, grads.grad(v))).collect();
            opt.step(&mut params, &pairs);
        }
        params.get(w)[(0, 0)]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let w = minimize(&mut Sgd::new(0.1), 100);
        assert!((w - 3.0).abs() < 1e-6, "w = {w}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let w = minimize(&mut Adam::new(0.1), 500);
        assert!((w - 3.0).abs() < 1e-3, "w = {w}");
    }

    #[test]
    fn adam_first_step_has_unit_scale() {
        // With bias correction, the first Adam step is ≈ lr regardless of
        // gradient magnitude.
        let mut params = Params::new();
        let w = params.register(Matrix::zeros(1, 1));
        let mut adam = Adam::new(0.01);
        adam.step(&mut params, &[(w, Matrix::full(1, 1, 1000.0))]);
        assert!((params.get(w)[(0, 0)] + 0.01).abs() < 1e-6);
    }

    #[test]
    fn sgd_step_is_linear_in_gradient() {
        let mut params = Params::new();
        let w = params.register(Matrix::full(1, 2, 1.0));
        let mut sgd = Sgd::new(0.5);
        sgd.step(&mut params, &[(w, Matrix::from_rows(&[&[2.0, -4.0]]))]);
        assert_eq!(params.get(w).as_slice(), &[0.0, 3.0]);
    }
}
