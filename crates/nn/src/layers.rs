//! Layers: activations, fully-connected layers, and MLP stacks.

use autograd::{Tape, Var};
use rand::rngs::StdRng;
use tensor::random::xavier_uniform;
use tensor::Matrix;

use crate::params::{BoundParams, ParamId, Params};

/// Pointwise non-linearity applied after a linear map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Identity (no non-linearity) — used on latent/output layers.
    Linear,
    /// Rectified linear unit (paper §3, Eq. 1 mentions ReLU).
    Relu,
    /// Logistic sigmoid (the classic AE activation, paper §2.1).
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    /// Applies the activation on the tape.
    pub fn apply(self, t: &Tape, x: Var) -> Var {
        match self {
            Activation::Linear => x,
            Activation::Relu => t.relu(x),
            Activation::Sigmoid => t.sigmoid(x),
            Activation::Tanh => t.tanh(x),
        }
    }
}

/// A fully-connected layer `act(X·W + b)` (paper Eq. 1–2).
#[derive(Debug, Clone)]
pub struct Linear {
    w: ParamId,
    b: ParamId,
    activation: Activation,
    fan_in: usize,
    fan_out: usize,
}

impl Linear {
    /// Creates a layer with Xavier-uniform weights and zero bias,
    /// registering its parameters in `params` under auto-generated names.
    pub fn new(
        params: &mut Params,
        fan_in: usize,
        fan_out: usize,
        activation: Activation,
        rng: &mut StdRng,
    ) -> Self {
        let w = params.register(xavier_uniform(fan_in, fan_out, rng));
        let b = params.register(Matrix::zeros(1, fan_out));
        Self { w, b, activation, fan_in, fan_out }
    }

    /// [`Linear::new`] with a telemetry name: the parameters register as
    /// `<name>.w` / `<name>.b`, which labels per-layer gradient-norm
    /// histograms and health-dump entries.
    pub fn new_named(
        params: &mut Params,
        name: &str,
        fan_in: usize,
        fan_out: usize,
        activation: Activation,
        rng: &mut StdRng,
    ) -> Self {
        let w = params.register_named(format!("{name}.w"), xavier_uniform(fan_in, fan_out, rng));
        let b = params.register_named(format!("{name}.b"), Matrix::zeros(1, fan_out));
        Self { w, b, activation, fan_in, fan_out }
    }

    /// Forward pass on the tape.
    pub fn forward(&self, bound: &BoundParams<'_>, x: Var) -> Var {
        let t = bound.tape();
        let z = t.add_row_broadcast(t.matmul(x, bound.var(self.w)), bound.var(self.b));
        self.activation.apply(t, z)
    }

    /// Input dimension.
    pub fn fan_in(&self) -> usize {
        self.fan_in
    }

    /// Output dimension.
    pub fn fan_out(&self) -> usize {
        self.fan_out
    }

    /// Parameter ids `(weights, bias)`.
    pub fn param_ids(&self) -> (ParamId, ParamId) {
        (self.w, self.b)
    }
}

/// A stack of [`Linear`] layers.
#[derive(Debug, Clone, Default)]
pub struct Mlp {
    layers: Vec<Linear>,
}

impl Mlp {
    /// Builds an MLP through the given `dims` (e.g. `[784, 500, 100]`),
    /// applying `hidden` activation to all but the last layer and `last` to
    /// the final one.
    ///
    /// # Panics
    /// Panics if `dims` has fewer than two entries.
    pub fn new(
        params: &mut Params,
        dims: &[usize],
        hidden: Activation,
        last: Activation,
        rng: &mut StdRng,
    ) -> Self {
        assert!(dims.len() >= 2, "Mlp::new: need at least input and output dims");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                let act = if i + 2 == dims.len() { last } else { hidden };
                Linear::new(params, w[0], w[1], act, rng)
            })
            .collect();
        Self { layers }
    }

    /// [`Mlp::new`] with a telemetry name prefix: layer `i` registers its
    /// parameters as `<prefix>.l<i>.w` / `<prefix>.l<i>.b`.
    pub fn new_named(
        params: &mut Params,
        prefix: &str,
        dims: &[usize],
        hidden: Activation,
        last: Activation,
        rng: &mut StdRng,
    ) -> Self {
        assert!(dims.len() >= 2, "Mlp::new_named: need at least input and output dims");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                let act = if i + 2 == dims.len() { last } else { hidden };
                Linear::new_named(params, &format!("{prefix}.l{i}"), w[0], w[1], act, rng)
            })
            .collect();
        Self { layers }
    }

    /// Forward pass through all layers.
    pub fn forward(&self, bound: &BoundParams<'_>, x: Var) -> Var {
        self.layers.iter().fold(x, |h, layer| layer.forward(bound, h))
    }

    /// The layers of the stack.
    pub fn layers(&self) -> &[Linear] {
        &self.layers
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.layers.first().map_or(0, Linear::fan_in)
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.layers.last().map_or(0, Linear::fan_out)
    }

    /// Forward pass outside any tape (pure inference, no gradients).
    pub fn infer(&self, params: &Params, x: &Matrix) -> Matrix {
        let tape = Tape::new();
        let bound = params.bind(&tape);
        let v = self.forward(&bound, tape.constant(x.clone()));
        tape.value(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::random::rng;

    #[test]
    fn linear_layer_shapes() {
        let mut params = Params::new();
        let mut r = rng(1);
        let layer = Linear::new(&mut params, 4, 3, Activation::Relu, &mut r);
        let tape = Tape::new();
        let bound = params.bind(&tape);
        let x = tape.constant(Matrix::ones(5, 4));
        let y = layer.forward(&bound, x);
        assert_eq!(tape.shape(y), (5, 3));
        // ReLU output is non-negative.
        assert!(tape.value(y).as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn mlp_builds_correct_dims() {
        let mut params = Params::new();
        let mut r = rng(2);
        let mlp = Mlp::new(&mut params, &[8, 16, 4], Activation::Relu, Activation::Linear, &mut r);
        assert_eq!(mlp.layers().len(), 2);
        assert_eq!(mlp.in_dim(), 8);
        assert_eq!(mlp.out_dim(), 4);
        assert_eq!(params.len(), 4); // 2 layers × (W, b)
        let y = mlp.infer(&params, &Matrix::ones(3, 8));
        assert_eq!(y.shape(), (3, 4));
        assert!(y.all_finite());
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn mlp_rejects_single_dim() {
        let mut params = Params::new();
        let mut r = rng(3);
        let _ = Mlp::new(&mut params, &[8], Activation::Relu, Activation::Linear, &mut r);
    }

    #[test]
    fn activations_behave() {
        let t = Tape::new();
        let x = t.leaf(Matrix::from_rows(&[&[-1.0, 0.0, 1.0]]));
        assert_ne!(Activation::Relu.apply(&t, x), x);
        let relu = t.value(Activation::Relu.apply(&t, x));
        assert_eq!(relu.as_slice(), &[0.0, 0.0, 1.0]);
        let id = Activation::Linear.apply(&t, x);
        assert_eq!(id, x);
        let sig = t.value(Activation::Sigmoid.apply(&t, x));
        assert!((sig[(0, 1)] - 0.5).abs() < 1e-12);
    }
}
