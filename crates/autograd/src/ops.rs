//! Operation records and their backward rules.
//!
//! Every differentiable operation the tape supports is one variant of
//! [`Op`]; [`Op::backward`] pushes the upstream gradient `g` of a node back
//! to its parents. Keeping the rules in one `match` (instead of boxed
//! closures) makes the whole engine auditable at a glance.

use std::rc::Rc;

use tensor::Matrix;

/// A constant linear operator that can appear on the left of a matrix
/// product inside the graph without being differentiated itself.
///
/// This is how graph convolutions enter the autodiff graph: the normalized
/// adjacency `Â` (a sparse CSR matrix in `crates/graph`) implements this
/// trait, so `Â·H` is differentiable w.r.t. `H` while `Â` stays constant
/// and sparse.
pub trait LinearOperator {
    /// Output rows of `self · rhs`.
    fn out_rows(&self) -> usize;
    /// `self · rhs` (dense result).
    fn apply(&self, rhs: &Matrix) -> Matrix;
    /// `selfᵀ · rhs` (dense result) — needed for the backward pass.
    fn apply_transpose(&self, rhs: &Matrix) -> Matrix;
}

/// The operation that produced a node, with parent node ids.
pub(crate) enum Op {
    /// Input / parameter: no parents.
    Leaf,
    /// `a + b`, same shapes.
    Add(usize, usize),
    /// `a - b`, same shapes.
    Sub(usize, usize),
    /// Elementwise `a ∘ b`.
    Mul(usize, usize),
    /// Elementwise `a / b`.
    Div(usize, usize),
    /// `a · b`.
    MatMul(usize, usize),
    /// `a` (n×c) plus row vector `b` (1×c) broadcast to every row.
    AddRowBroadcast(usize, usize),
    /// `a · s` for scalar `s`.
    Scale(usize, f64),
    /// `a + s` elementwise.
    AddScalar(usize),
    /// `-a`.
    Neg(usize),
    /// `max(a, 0)`.
    Relu(usize),
    /// Logistic sigmoid.
    Sigmoid(usize),
    /// Hyperbolic tangent.
    Tanh(usize),
    /// `exp(a)`.
    Exp(usize),
    /// `ln(a)`; caller is responsible for positivity.
    Ln(usize),
    /// `sqrt(a)`.
    Sqrt(usize),
    /// `a^p` elementwise for constant `p`.
    PowScalar(usize, f64),
    /// `aᵀ`.
    Transpose(usize),
    /// Row-wise softmax.
    SoftmaxRows(usize),
    /// Sum of all elements → 1×1.
    Sum(usize),
    /// Mean of all elements → 1×1.
    Mean(usize),
    /// Per-row sums → n×1.
    RowSums(usize),
    /// `a` (n×k) divided by column `b` (n×1) broadcast across columns.
    DivColBroadcast(usize, usize),
    /// Pairwise squared Euclidean distances between rows of `x` (n×d) and
    /// rows of `c` (k×d) → n×k. The joint primitive for every
    /// distance-to-centroid kernel (Euclidean, scaled-identity Mahalanobis,
    /// and whitened general Mahalanobis).
    SqDistCdist(usize, usize),
    /// `lin · b` where `lin` is a constant linear operator (e.g. sparse Â).
    ApplyLeft(Rc<dyn LinearOperator>, usize),
}

impl Op {
    /// Propagates the upstream gradient `g` of a node with `value` to the
    /// parent gradient accumulators.
    ///
    /// `values` gives read access to all node values; `acc(id, delta)`
    /// accumulates `delta` into the gradient of parent `id`.
    pub(crate) fn backward(
        &self,
        value: &Matrix,
        g: &Matrix,
        values: &[Matrix],
        acc: &mut dyn FnMut(usize, Matrix),
    ) {
        match self {
            Op::Leaf => {}
            Op::Add(a, b) => {
                acc(*a, g.clone());
                acc(*b, g.clone());
            }
            Op::Sub(a, b) => {
                acc(*a, g.clone());
                acc(*b, -g);
            }
            Op::Mul(a, b) => {
                acc(*a, g * &values[*b]);
                acc(*b, g * &values[*a]);
            }
            Op::Div(a, b) => {
                let vb = &values[*b];
                acc(*a, g / vb);
                let ratio = &(g * &values[*a]) / &(vb * vb);
                acc(*b, -&ratio);
            }
            Op::MatMul(a, b) => {
                acc(*a, g.matmul(&values[*b].transpose()));
                acc(*b, values[*a].transpose().matmul(g));
            }
            Op::AddRowBroadcast(a, b) => {
                acc(*a, g.clone());
                acc(*b, Matrix::from_vec(1, g.cols(), g.col_sums()));
            }
            Op::Scale(a, s) => acc(*a, g * *s),
            Op::AddScalar(a) => acc(*a, g.clone()),
            Op::Neg(a) => acc(*a, -g),
            Op::Relu(a) => {
                acc(*a, g.zip_map(&values[*a], |gi, x| if x > 0.0 { gi } else { 0.0 }));
            }
            Op::Sigmoid(a) => {
                // value = σ(x); dσ = σ(1−σ)
                acc(*a, g.zip_map(value, |gi, y| gi * y * (1.0 - y)));
            }
            Op::Tanh(a) => {
                acc(*a, g.zip_map(value, |gi, y| gi * (1.0 - y * y)));
            }
            Op::Exp(a) => acc(*a, g * value),
            Op::Ln(a) => acc(*a, g / &values[*a]),
            Op::Sqrt(a) => {
                acc(*a, g.zip_map(value, |gi, y| gi / (2.0 * y)));
            }
            Op::PowScalar(a, p) => {
                let va = &values[*a];
                acc(*a, g.zip_map(va, |gi, x| gi * p * x.powf(p - 1.0)));
            }
            Op::Transpose(a) => acc(*a, g.transpose()),
            Op::SoftmaxRows(a) => {
                // dx = y ∘ (g − Σ_j g∘y), per row.
                let y = value;
                let gy = g * y;
                let row_dots = gy.row_sums();
                let mut dx = gy;
                for i in 0..dx.rows() {
                    let yrow = y.row(i);
                    let dot = row_dots[i];
                    for (v, &yv) in dx.row_mut(i).iter_mut().zip(yrow) {
                        // v currently holds g∘y; rewrite to y∘(g − dot)
                        // using g∘y − y·dot = y∘g − y·dot.
                        *v -= yv * dot;
                    }
                }
                acc(*a, dx);
            }
            Op::Sum(a) => {
                let (r, c) = values[*a].shape();
                acc(*a, Matrix::full(r, c, g[(0, 0)]));
            }
            Op::Mean(a) => {
                let (r, c) = values[*a].shape();
                let n = (r * c) as f64;
                acc(*a, Matrix::full(r, c, g[(0, 0)] / n));
            }
            Op::RowSums(a) => {
                let (r, c) = values[*a].shape();
                let mut d = Matrix::zeros(r, c);
                for i in 0..r {
                    let gi = g[(i, 0)];
                    for v in d.row_mut(i) {
                        *v = gi;
                    }
                }
                acc(*a, d);
            }
            Op::DivColBroadcast(a, b) => {
                let va = &values[*a];
                let vb = &values[*b];
                let (r, c) = va.shape();
                let mut da = Matrix::zeros(r, c);
                let mut db = Matrix::zeros(r, 1);
                for i in 0..r {
                    let bi = vb[(i, 0)];
                    let mut s = 0.0;
                    for j in 0..c {
                        da[(i, j)] = g[(i, j)] / bi;
                        s += g[(i, j)] * va[(i, j)];
                    }
                    db[(i, 0)] = -s / (bi * bi);
                }
                acc(*a, da);
                acc(*b, db);
            }
            Op::SqDistCdist(x, c) => {
                // D[i,j] = ‖x_i − c_j‖².
                // dX = 2·(diag(rowsum(g))·X − g·C)
                // dC = 2·(diag(colsum(g))·C − gᵀ·X)
                let vx = &values[*x];
                let vc = &values[*c];
                let row_s = g.row_sums();
                let col_s = g.col_sums();
                let mut dx = g.matmul(vc);
                for i in 0..dx.rows() {
                    let rs = row_s[i];
                    for (d, &xv) in dx.row_mut(i).iter_mut().zip(vx.row(i)) {
                        *d = 2.0 * (rs * xv - *d);
                    }
                }
                let mut dc = g.transpose().matmul(vx);
                for j in 0..dc.rows() {
                    let cs = col_s[j];
                    for (d, &cv) in dc.row_mut(j).iter_mut().zip(vc.row(j)) {
                        *d = 2.0 * (cs * cv - *d);
                    }
                }
                acc(*x, dx);
                acc(*c, dc);
            }
            Op::ApplyLeft(lin, b) => {
                acc(*b, lin.apply_transpose(g));
            }
        }
    }
}
