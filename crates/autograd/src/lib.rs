//! # autograd — tape-based reverse-mode automatic differentiation
//!
//! A compact autodiff engine over [`tensor::Matrix`], sufficient to train
//! every model in this repository: the TableDC autoencoder with its
//! Mahalanobis/Cauchy clustering head, and the SDCN/DFCN/DCRN/EDESC/SHGP
//! baselines (including GCN layers, which enter the graph through constant
//! sparse-times-dense products materialized by `crates/graph`).
//!
//! ## Design
//!
//! * A [`Tape`] owns a flat vector of nodes; [`Var`] is a `Copy` index into
//!   it. One tape is built per forward pass and dropped afterwards, so
//!   memory stays bounded during training.
//! * Each node records its operation as an explicit [`Op`] variant rather
//!   than a boxed closure; the whole backward pass is a single `match`,
//!   which keeps gradients auditable and the engine allocation-light.
//! * Gradients are validated against central finite differences both in
//!   unit tests and property tests (see [`check::finite_difference_grad`]).

pub mod check;
pub mod ops;
mod tape;

pub use ops::LinearOperator;
pub use tape::{Gradients, Tape, Var};
