//! Gradient checking against central finite differences.
//!
//! Used by this crate's own tests and exported so downstream crates
//! (`nn`, `tabledc`) can verify that their composite losses differentiate
//! correctly — the repository's substitute for trusting a mature autodiff
//! framework.

use tensor::Matrix;

use crate::tape::{Tape, Var};

/// Numerically estimates `∂f/∂input` with central differences, where `f`
/// builds a scalar loss on a fresh tape from leaf matrices (the perturbed
/// `input` plus any fixed context the closure captures).
///
/// `f` receives the input value and must return the scalar loss value.
pub fn finite_difference_grad(
    input: &Matrix,
    eps: f64,
    mut f: impl FnMut(&Matrix) -> f64,
) -> Matrix {
    let (r, c) = input.shape();
    let mut g = Matrix::zeros(r, c);
    let mut x = input.clone();
    for i in 0..r {
        for j in 0..c {
            let orig = x[(i, j)];
            x[(i, j)] = orig + eps;
            let fp = f(&x);
            x[(i, j)] = orig - eps;
            let fm = f(&x);
            x[(i, j)] = orig;
            g[(i, j)] = (fp - fm) / (2.0 * eps);
        }
    }
    g
}

/// Asserts that the analytic gradient of `build` w.r.t. its single leaf
/// matches finite differences to a relative/absolute tolerance.
///
/// `build` receives a tape and the leaf [`Var`] for `input` and must return
/// the scalar loss node.
///
/// # Panics
/// Panics with a diagnostic message if any element disagrees.
pub fn assert_grad_close(
    input: &Matrix,
    build: impl Fn(&Tape, Var) -> Var,
    eps: f64,
    tol: f64,
) {
    let tape = Tape::new();
    let x = tape.leaf(input.clone());
    let loss = build(&tape, x);
    let analytic = tape.backward(loss).grad(x);

    let numeric = finite_difference_grad(input, eps, |m| {
        let t = Tape::new();
        let v = t.leaf(m.clone());
        let l = build(&t, v);
        t.value(l)[(0, 0)]
    });

    for i in 0..input.rows() {
        for j in 0..input.cols() {
            let a = analytic[(i, j)];
            let n = numeric[(i, j)];
            let denom = 1.0f64.max(a.abs()).max(n.abs());
            assert!(
                (a - n).abs() / denom <= tol,
                "gradient mismatch at ({i},{j}): analytic={a}, numeric={n}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use tensor::random::{randn, rng};

    const EPS: f64 = 1e-5;
    const TOL: f64 = 1e-5;

    #[test]
    fn grad_check_elementwise_chain() {
        let x = randn(3, 4, &mut rng(1));
        assert_grad_close(
            &x,
            |t, v| {
                let y = t.tanh(t.scale(v, 0.7));
                let z = t.sigmoid(t.add_scalar(y, 0.1));
                t.mean(t.square(z))
            },
            EPS,
            TOL,
        );
    }

    #[test]
    fn grad_check_relu() {
        // Shift away from 0 to avoid the kink.
        let mut x = randn(3, 3, &mut rng(2));
        x.map_inplace(|v| if v.abs() < 0.1 { v + 0.5 } else { v });
        assert_grad_close(&x, |t, v| t.sum(t.relu(v)), EPS, TOL);
    }

    #[test]
    fn grad_check_matmul_both_sides() {
        let a = randn(3, 4, &mut rng(3));
        let b = randn(4, 2, &mut rng(4));
        // w.r.t. A with B fixed
        assert_grad_close(
            &a,
            |t, v| {
                let bv = t.constant(b.clone());
                t.sum(t.square(t.matmul(v, bv)))
            },
            EPS,
            TOL,
        );
        // w.r.t. B with A fixed
        assert_grad_close(
            &b,
            |t, v| {
                let av = t.constant(a.clone());
                t.sum(t.square(t.matmul(av, v)))
            },
            EPS,
            TOL,
        );
    }

    #[test]
    fn grad_check_softmax_kl_like() {
        // A KL(p‖softmax(x))-shaped loss — the TableDC clustering loss core.
        let x = randn(4, 5, &mut rng(5));
        let mut p = randn(4, 5, &mut rng(6));
        p.map_inplace(|v| v.abs() + 0.1);
        let sums = p.row_sums();
        for i in 0..4 {
            let s = sums[i];
            for v in p.row_mut(i) {
                *v /= s;
            }
        }
        assert_grad_close(
            &x,
            |t, v| {
                let m = t.softmax_rows(v);
                let pv = t.constant(p.clone());
                let log_m = t.ln(t.add_scalar(m, 1e-12));
                t.neg(t.sum(t.mul(pv, log_m)))
            },
            EPS,
            1e-4,
        );
    }

    #[test]
    fn grad_check_cdist_wrt_points_and_centers() {
        let x = randn(5, 3, &mut rng(7));
        let c = randn(2, 3, &mut rng(8));
        assert_grad_close(
            &x,
            |t, v| {
                let cv = t.constant(c.clone());
                t.mean(t.sq_dist_cdist(v, cv))
            },
            EPS,
            TOL,
        );
        assert_grad_close(
            &c,
            |t, v| {
                let xv = t.constant(x.clone());
                t.mean(t.sq_dist_cdist(xv, v))
            },
            EPS,
            TOL,
        );
    }

    #[test]
    fn grad_check_cauchy_assignment_pipeline() {
        // The full TableDC similarity head: Cauchy kernel over distances,
        // row-normalize, softmax, dot with a constant target.
        let z = randn(4, 3, &mut rng(9));
        let c = randn(3, 3, &mut rng(10));
        assert_grad_close(
            &z,
            |t, v| {
                let cv = t.constant(c.clone());
                let d2 = t.sq_dist_cdist(v, cv);
                let q = t.pow_scalar(t.add_scalar(t.scale(d2, 1.0 / 4.0), 1.0), -1.0);
                let s = t.add_scalar(t.row_sums(q), 1e-10);
                let qn = t.div_col_broadcast(q, s);
                let m = t.softmax_rows(qn);
                t.mean(t.square(m))
            },
            EPS,
            1e-4,
        );
    }

    #[test]
    fn grad_check_div_and_ln() {
        let mut x = randn(3, 3, &mut rng(11));
        x.map_inplace(|v| v.abs() + 0.5);
        let y = {
            let mut m = randn(3, 3, &mut rng(12));
            m.map_inplace(|v| v.abs() + 0.5);
            m
        };
        assert_grad_close(
            &x,
            |t, v| {
                let yv = t.constant(y.clone());
                t.sum(t.ln(t.div(v, yv)))
            },
            EPS,
            TOL,
        );
    }

    #[test]
    fn grad_check_transpose_and_row_sums() {
        let x = randn(3, 4, &mut rng(13));
        assert_grad_close(
            &x,
            |t, v| {
                let tt = t.transpose(v);
                let rs = t.row_sums(tt);
                t.sum(t.square(rs))
            },
            EPS,
            TOL,
        );
    }

    #[test]
    fn grad_check_sqrt_exp() {
        let mut x = randn(2, 3, &mut rng(14));
        x.map_inplace(|v| v.abs() + 0.3);
        assert_grad_close(&x, |t, v| t.sum(t.sqrt(t.exp(v))), EPS, TOL);
    }

    #[test]
    fn grad_check_bias_broadcast() {
        let b = randn(1, 4, &mut rng(15));
        let x = randn(3, 4, &mut rng(16));
        assert_grad_close(
            &b,
            |t, v| {
                let xv = t.constant(x.clone());
                t.sum(t.square(t.add_row_broadcast(xv, v)))
            },
            EPS,
            TOL,
        );
    }

    #[test]
    fn grad_check_random_composite_expressions() {
        // Light fuzzing: random small expressions mixing safe ops.
        let mut r = rng(99);
        for trial in 0..10 {
            let x = randn(3, 3, &mut r);
            let picks: Vec<u8> = (0..3).map(|_| r.gen_range(0..4u8)).collect();
            assert_grad_close(
                &x,
                |t, v| {
                    let mut cur = v;
                    for &p in &picks {
                        cur = match p {
                            0 => t.tanh(cur),
                            1 => t.sigmoid(cur),
                            2 => t.scale(cur, 1.3),
                            _ => t.add_scalar(cur, 0.2),
                        };
                    }
                    t.mean(t.square(cur))
                },
                EPS,
                1e-4,
            );
            let _ = trial;
        }
    }
}
