//! The tape: forward-pass recording and the reverse sweep.

use std::cell::RefCell;
use std::rc::Rc;

use tensor::distance::sq_euclidean_cdist;
use tensor::Matrix;

use crate::ops::{LinearOperator, Op};

/// Handle to a node on a [`Tape`]. Cheap to copy; only meaningful together
/// with the tape that produced it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(pub(crate) usize);

struct Node {
    value: Matrix,
    op: Op,
}

/// A gradient tape. Build one per forward pass, call the op methods to
/// record the computation, call [`Tape::backward`] on a scalar loss, then
/// read parameter gradients with [`Tape::grad`].
#[derive(Default)]
pub struct Tape {
    nodes: RefCell<Vec<Node>>,
}

impl Tape {
    /// Creates an empty tape.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.borrow().len()
    }

    /// True if no nodes have been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.borrow().is_empty()
    }

    fn push(&self, value: Matrix, op: Op) -> Var {
        // Non-finite values are allowed to flow through the tape: numerical
        // health is the training loop's concern (`obs::health`), which can
        // report *which* tensor diverged and dump diagnostics — a blind
        // panic here would preempt that and only ever fire in debug builds.
        let mut nodes = self.nodes.borrow_mut();
        nodes.push(Node { value, op });
        Var(nodes.len() - 1)
    }

    /// Registers an input/parameter node.
    pub fn leaf(&self, value: Matrix) -> Var {
        self.push(value, Op::Leaf)
    }

    /// Registers a constant. Identical to [`Tape::leaf`] today (its gradient
    /// is simply never read); kept separate for intent at call sites.
    pub fn constant(&self, value: Matrix) -> Var {
        self.push(value, Op::Leaf)
    }

    /// Copies the value of a node out of the tape.
    pub fn value(&self, v: Var) -> Matrix {
        self.nodes.borrow()[v.0].value.clone()
    }

    /// Shape of a node's value.
    pub fn shape(&self, v: Var) -> (usize, usize) {
        self.nodes.borrow()[v.0].value.shape()
    }

    /// Runs `f` with a borrow of the node's value, avoiding a clone.
    pub fn with_value<R>(&self, v: Var, f: impl FnOnce(&Matrix) -> R) -> R {
        f(&self.nodes.borrow()[v.0].value)
    }

    // ---- binary ops -----------------------------------------------------

    /// Elementwise sum.
    pub fn add(&self, a: Var, b: Var) -> Var {
        let v = {
            let n = self.nodes.borrow();
            &n[a.0].value + &n[b.0].value
        };
        self.push(v, Op::Add(a.0, b.0))
    }

    /// Elementwise difference.
    pub fn sub(&self, a: Var, b: Var) -> Var {
        let v = {
            let n = self.nodes.borrow();
            &n[a.0].value - &n[b.0].value
        };
        self.push(v, Op::Sub(a.0, b.0))
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&self, a: Var, b: Var) -> Var {
        let v = {
            let n = self.nodes.borrow();
            &n[a.0].value * &n[b.0].value
        };
        self.push(v, Op::Mul(a.0, b.0))
    }

    /// Elementwise quotient.
    pub fn div(&self, a: Var, b: Var) -> Var {
        let v = {
            let n = self.nodes.borrow();
            &n[a.0].value / &n[b.0].value
        };
        self.push(v, Op::Div(a.0, b.0))
    }

    /// Matrix product.
    pub fn matmul(&self, a: Var, b: Var) -> Var {
        let v = {
            let n = self.nodes.borrow();
            n[a.0].value.matmul(&n[b.0].value)
        };
        self.push(v, Op::MatMul(a.0, b.0))
    }

    /// Adds a `1×c` bias row to every row of an `n×c` matrix.
    pub fn add_row_broadcast(&self, a: Var, bias: Var) -> Var {
        let v = {
            let n = self.nodes.borrow();
            let b = &n[bias.0].value;
            assert_eq!(b.rows(), 1, "add_row_broadcast: bias must be 1×c");
            n[a.0].value.add_row_broadcast(b.row(0))
        };
        self.push(v, Op::AddRowBroadcast(a.0, bias.0))
    }

    // ---- scalar / unary ops ----------------------------------------------

    /// Multiplies by a constant scalar.
    pub fn scale(&self, a: Var, s: f64) -> Var {
        let v = { &self.nodes.borrow()[a.0].value * s };
        self.push(v, Op::Scale(a.0, s))
    }

    /// Adds a constant scalar to every element.
    pub fn add_scalar(&self, a: Var, s: f64) -> Var {
        let v = { self.nodes.borrow()[a.0].value.map(|x| x + s) };
        self.push(v, Op::AddScalar(a.0))
    }

    /// Elementwise negation.
    pub fn neg(&self, a: Var) -> Var {
        let v = { -&self.nodes.borrow()[a.0].value };
        self.push(v, Op::Neg(a.0))
    }

    /// ReLU.
    pub fn relu(&self, a: Var) -> Var {
        let v = { self.nodes.borrow()[a.0].value.max_scalar(0.0) };
        self.push(v, Op::Relu(a.0))
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&self, a: Var) -> Var {
        let v = { self.nodes.borrow()[a.0].value.map(|x| 1.0 / (1.0 + (-x).exp())) };
        self.push(v, Op::Sigmoid(a.0))
    }

    /// Hyperbolic tangent.
    pub fn tanh(&self, a: Var) -> Var {
        let v = { self.nodes.borrow()[a.0].value.map(f64::tanh) };
        self.push(v, Op::Tanh(a.0))
    }

    /// Elementwise exponential.
    pub fn exp(&self, a: Var) -> Var {
        let v = { self.nodes.borrow()[a.0].value.map(f64::exp) };
        self.push(v, Op::Exp(a.0))
    }

    /// Elementwise natural log. The caller must guarantee positivity (use
    /// [`Tape::add_scalar`] with an epsilon first when needed).
    pub fn ln(&self, a: Var) -> Var {
        let v = { self.nodes.borrow()[a.0].value.map(f64::ln) };
        self.push(v, Op::Ln(a.0))
    }

    /// Elementwise square root.
    pub fn sqrt(&self, a: Var) -> Var {
        let v = { self.nodes.borrow()[a.0].value.map(f64::sqrt) };
        self.push(v, Op::Sqrt(a.0))
    }

    /// Elementwise power with a constant exponent.
    pub fn pow_scalar(&self, a: Var, p: f64) -> Var {
        let v = { self.nodes.borrow()[a.0].value.map(|x| x.powf(p)) };
        self.push(v, Op::PowScalar(a.0, p))
    }

    /// Elementwise square — sugar for `pow_scalar(a, 2.0)` with an exact
    /// backward rule.
    pub fn square(&self, a: Var) -> Var {
        self.pow_scalar(a, 2.0)
    }

    /// Transpose.
    pub fn transpose(&self, a: Var) -> Var {
        let v = { self.nodes.borrow()[a.0].value.transpose() };
        self.push(v, Op::Transpose(a.0))
    }

    /// Row-wise softmax (paper Eq. 9).
    pub fn softmax_rows(&self, a: Var) -> Var {
        let v = { self.nodes.borrow()[a.0].value.softmax_rows() };
        self.push(v, Op::SoftmaxRows(a.0))
    }

    // ---- reductions -------------------------------------------------------

    /// Sum of all elements → 1×1.
    pub fn sum(&self, a: Var) -> Var {
        let v = { Matrix::full(1, 1, self.nodes.borrow()[a.0].value.sum()) };
        self.push(v, Op::Sum(a.0))
    }

    /// Mean of all elements → 1×1.
    pub fn mean(&self, a: Var) -> Var {
        let v = { Matrix::full(1, 1, self.nodes.borrow()[a.0].value.mean()) };
        self.push(v, Op::Mean(a.0))
    }

    /// Per-row sums → n×1.
    pub fn row_sums(&self, a: Var) -> Var {
        let v = {
            let n = self.nodes.borrow();
            let sums = n[a.0].value.row_sums();
            Matrix::from_vec(sums.len(), 1, sums)
        };
        self.push(v, Op::RowSums(a.0))
    }

    /// Divides each row of `a` (n×k) by the corresponding entry of `b`
    /// (n×1) — the row-normalization of soft assignments (paper Eq. 8).
    pub fn div_col_broadcast(&self, a: Var, b: Var) -> Var {
        let v = {
            let n = self.nodes.borrow();
            let va = &n[a.0].value;
            let vb = &n[b.0].value;
            assert_eq!(vb.cols(), 1, "div_col_broadcast: divisor must be n×1");
            assert_eq!(va.rows(), vb.rows(), "div_col_broadcast: row counts differ");
            let mut out = va.clone();
            for i in 0..out.rows() {
                let d = vb[(i, 0)];
                for x in out.row_mut(i) {
                    *x /= d;
                }
            }
            out
        };
        self.push(v, Op::DivColBroadcast(a.0, b.0))
    }

    /// Pairwise squared Euclidean distances between rows of `x` (n×d) and
    /// rows of `c` (k×d) → n×k. Differentiable w.r.t. both point sets: this
    /// is the primitive under every distance kernel in TableDC and the
    /// baselines (Mahalanobis distances are taken in a whitened space, so
    /// they also reduce to this op).
    pub fn sq_dist_cdist(&self, x: Var, c: Var) -> Var {
        let v = {
            let n = self.nodes.borrow();
            sq_euclidean_cdist(&n[x.0].value, &n[c.0].value)
        };
        self.push(v, Op::SqDistCdist(x.0, c.0))
    }

    /// Applies a constant linear operator on the left: `lin · b`. Used for
    /// sparse graph convolutions `Â·H`.
    pub fn apply_left(&self, lin: Rc<dyn LinearOperator>, b: Var) -> Var {
        let v = {
            let n = self.nodes.borrow();
            lin.apply(&n[b.0].value)
        };
        self.push(v, Op::ApplyLeft(lin, b.0))
    }

    // ---- backward ---------------------------------------------------------

    /// Runs the reverse sweep from a scalar (1×1) `loss` node and returns
    /// the gradient of every node. Gradients of nodes that do not influence
    /// the loss are zero matrices.
    ///
    /// # Panics
    /// Panics if `loss` is not 1×1.
    pub fn backward(&self, loss: Var) -> Gradients {
        let nodes = self.nodes.borrow();
        assert_eq!(nodes[loss.0].value.shape(), (1, 1), "backward: loss must be a 1×1 scalar");
        let mut grads: Vec<Option<Matrix>> = vec![None; nodes.len()];
        grads[loss.0] = Some(Matrix::ones(1, 1));

        // Collect values once for the Op::backward interface.
        // (Borrowing each lazily would fight the RefCell; a straight slice
        // of values is simpler and the clone below is shallow — we only
        // build a Vec of references via split access.)
        let values: Vec<Matrix> = nodes.iter().map(|n| n.value.clone()).collect();

        for id in (0..nodes.len()).rev() {
            let Some(g) = grads[id].take() else { continue };
            let node = &nodes[id];
            node.op.backward(&node.value, &g, &values, &mut |pid, delta| {
                match &mut grads[pid] {
                    Some(existing) => {
                        debug_assert_eq!(existing.shape(), delta.shape());
                        *existing = &*existing + &delta;
                    }
                    slot @ None => *slot = Some(delta),
                }
            });
            grads[id] = Some(g);
        }

        Gradients { grads, shapes: values.iter().map(Matrix::shape).collect() }
    }
}

/// The result of a backward pass: per-node gradients.
pub struct Gradients {
    grads: Vec<Option<Matrix>>,
    shapes: Vec<(usize, usize)>,
}

impl Gradients {
    /// Gradient of the loss w.r.t. node `v` (zeros if the node does not
    /// influence the loss).
    pub fn grad(&self, v: Var) -> Matrix {
        match &self.grads[v.0] {
            Some(g) => g.clone(),
            None => {
                let (r, c) = self.shapes[v.0];
                Matrix::zeros(r, c)
            }
        }
    }

    /// Borrowing accessor; `None` means the node has no gradient path.
    pub fn try_grad(&self, v: Var) -> Option<&Matrix> {
        self.grads[v.0].as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_chain_rule() {
        // f(x) = sum((2x + 1)²) at x = [1, 2]: df/dx = 4(2x+1) = [12, 20].
        let t = Tape::new();
        let x = t.leaf(Matrix::from_rows(&[&[1.0, 2.0]]));
        let y = t.add_scalar(t.scale(x, 2.0), 1.0);
        let loss = t.sum(t.square(y));
        assert_eq!(t.value(loss)[(0, 0)], 9.0 + 25.0);
        let g = t.backward(loss);
        assert_eq!(g.grad(x), Matrix::from_rows(&[&[12.0, 20.0]]));
    }

    #[test]
    fn matmul_gradients() {
        // loss = sum(A·B); dA = 1·Bᵀ, dB = Aᵀ·1.
        let t = Tape::new();
        let a = t.leaf(Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]));
        let b = t.leaf(Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]));
        let loss = t.sum(t.matmul(a, b));
        let g = t.backward(loss);
        assert_eq!(g.grad(a), Matrix::from_rows(&[&[11.0, 15.0], &[11.0, 15.0]]));
        assert_eq!(g.grad(b), Matrix::from_rows(&[&[4.0, 4.0], &[6.0, 6.0]]));
    }

    #[test]
    fn fan_out_accumulates() {
        // loss = sum(x ∘ x + x): dx = 2x + 1.
        let t = Tape::new();
        let x = t.leaf(Matrix::from_rows(&[&[3.0]]));
        let loss = t.sum(t.add(t.mul(x, x), x));
        let g = t.backward(loss);
        assert_eq!(g.grad(x)[(0, 0)], 7.0);
    }

    #[test]
    fn unused_leaf_has_zero_grad() {
        let t = Tape::new();
        let x = t.leaf(Matrix::ones(1, 1));
        let y = t.leaf(Matrix::ones(2, 3));
        let loss = t.sum(x);
        let g = t.backward(loss);
        assert_eq!(g.grad(y), Matrix::zeros(2, 3));
        assert!(g.try_grad(y).is_none());
    }

    #[test]
    #[should_panic(expected = "loss must be a 1×1 scalar")]
    fn backward_rejects_non_scalar() {
        let t = Tape::new();
        let x = t.leaf(Matrix::ones(2, 2));
        let _ = t.backward(x);
    }

    #[test]
    fn div_col_broadcast_normalizes_rows() {
        let t = Tape::new();
        let q = t.leaf(Matrix::from_rows(&[&[1.0, 3.0], &[2.0, 2.0]]));
        let s = t.row_sums(q);
        let n = t.div_col_broadcast(q, s);
        let v = t.value(n);
        assert!((v[(0, 0)] - 0.25).abs() < 1e-12);
        assert!((v[(0, 1)] - 0.75).abs() < 1e-12);
        assert!((v.row_sums()[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sq_dist_cdist_value_matches_tensor() {
        let t = Tape::new();
        let x = t.leaf(Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 2.0]]));
        let c = t.leaf(Matrix::from_rows(&[&[1.0, 0.0]]));
        let d = t.sq_dist_cdist(x, c);
        let v = t.value(d);
        assert_eq!(v[(0, 0)], 1.0);
        assert_eq!(v[(1, 0)], 4.0);
    }
}
