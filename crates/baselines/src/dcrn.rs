//! DCRN — Dual Correlation Reduction Network (Liu et al., AAAI '22).
//!
//! Compact reimplementation of the core idea: two augmented views of the
//! data (feature dropout) are encoded by a shared AE+GCN pair, and a
//! *correlation-reduction* loss pushes the cross-view feature-correlation
//! matrix towards the identity (decorrelating dimensions, "reducing the
//! information correlation to improve the discriminative property" §4.1.2).
//! Clustering is Student-t self-supervision on the mean fused view.

use std::rc::Rc;

use graph::{gcn_adjacency, Csr, Gcn};
use nn::loss::{kl_div, kl_div_value, mse};
use nn::{Activation, Adam, Autoencoder, Params};
use rand::rngs::StdRng;
use rand::Rng;
use tabledc::target_distribution;
use tensor::Matrix;

use crate::common::{
    kmeans_centers, student_t_assignments, train_step, ClusterOutput, DeepConfig, EpochObserver,
};

/// DCRN model configuration.
#[derive(Debug, Clone)]
pub struct Dcrn {
    /// Shared deep-baseline hyper-parameters.
    pub config: DeepConfig,
    /// Feature-dropout rate used to build the two views.
    pub dropout: f64,
}

impl Default for Dcrn {
    fn default() -> Self {
        Self { config: DeepConfig::default(), dropout: 0.2 }
    }
}

impl Dcrn {
    /// Creates DCRN with the given shared configuration.
    pub fn new(config: DeepConfig) -> Self {
        Self { config, dropout: 0.2 }
    }

    /// Trains DCRN on the rows of `x` into `k` clusters.
    pub fn fit(&self, x: &Matrix, k: usize, rng: &mut StdRng) -> ClusterOutput {
        // Standardize features in front of the encoder, matching TableDC's
        // preprocessing so the comparison isolates the objectives.
        let x = &x.standardize_cols();
        let cfg = &self.config;
        let adj: Rc<Csr> =
            Rc::new(gcn_adjacency(x, cfg.knn_k.min(x.rows().saturating_sub(1)).max(1)));

        let mut params = Params::new();
        let dims = cfg.encoder_dims(x.cols());
        let ae = Autoencoder::new(&mut params, &dims, rng);
        ae.pretrain(&mut params, x, cfg.pretrain_epochs, cfg.lr);
        let gcn = Gcn::new(&mut params, &dims, Activation::Linear, rng);

        let z0 = ae.embed(&params, x);
        let centers = params.register(kmeans_centers(&z0, k, rng));

        let mut adam = Adam::new(cfg.lr);
        let mut out = ClusterOutput::from_labels(vec![0; x.rows()]);
        let mut final_q = Matrix::zeros(x.rows(), k);

        let mut observer = EpochObserver::new("dcrn", k);
        for epoch in 0..cfg.epochs {
            // Two feature-dropout views (the siamese augmentation).
            let view = |r: &mut StdRng| {
                let mut v = x.clone();
                for val in v.as_mut_slice() {
                    if r.gen::<f64>() < self.dropout {
                        *val = 0.0;
                    }
                }
                v
            };
            let x1 = view(rng);
            let x2 = view(rng);

            let adj = adj.clone();
            let ae_ref = &ae;
            let gcn_ref = &gcn;
            let latent = cfg.latent_dim;
            let mut q_val = Matrix::zeros(1, 1);
            let mut re_val = 0.0;
            let mut kl_val = 0.0;
            let loss_val = train_step(&mut params, &mut adam, |t, bound| {
                let xv = t.constant(x.clone());
                let x1v = t.constant(x1.clone());
                let x2v = t.constant(x2.clone());

                let z1 = t.add(ae_ref.encode(bound, x1v), gcn_ref.forward(bound, &adj, x1v));
                let z2 = t.add(ae_ref.encode(bound, x2v), gcn_ref.forward(bound, &adj, x2v));

                // Cross-view feature-correlation matrix (latent × latent)
                // over L2-normalized *columns*; target: identity.
                let n1 = normalize_cols(t, z1);
                let n2 = normalize_cols(t, z2);
                let s_f = t.matmul(t.transpose(n1), n2);
                let eye = t.constant(Matrix::identity(latent));
                let corr_loss = t.mean(t.square(t.sub(s_f, eye)));

                // Clustering on the mean fused view.
                let fused = t.scale(t.add(z1, z2), 0.5);
                let q = student_t_assignments(t, fused, bound.var(centers), 1.0);
                q_val = t.value(q);
                let p = target_distribution(&q_val);
                let kl = kl_div(t, &p, q);

                let recon = ae_ref.decode(bound, ae_ref.encode(bound, xv));
                let re = mse(t, xv, recon);
                re_val = t.value(re)[(0, 0)];
                kl_val = kl_div_value(&p, &q_val);
                t.add(t.add(re, t.scale(kl, 0.1)), t.scale(corr_loss, 1.0))
            });
            if observer.observe(epoch, re_val, kl_val, loss_val, &q_val).should_abort() {
                break;
            }
            out.re_loss.push(re_val);
            out.kl_pq.push(kl_val);
            final_q = q_val;
        }

        out.labels = final_q.argmax_rows();
        let (health, convergence) = observer.finish();
        out.health = health;
        out.convergence = convergence;
        out
    }
}

/// L2-normalizes the columns of a tape variable (via transposed row
/// normalization).
fn normalize_cols(t: &autograd::Tape, v: autograd::Var) -> autograd::Var {
    let vt = t.transpose(v);
    let norms = t.sqrt(t.add_scalar(t.row_sums(t.square(vt)), 1e-12));
    t.transpose(t.div_col_broadcast(vt, norms))
}

#[cfg(test)]
mod tests {
    use super::*;
    use clustering::metrics::adjusted_rand_index;
    use datagen::{generate_mixture, MixtureConfig};
    use tensor::random::rng;

    #[test]
    fn dcrn_clusters_separated_mixture() {
        let g = generate_mixture(
            &MixtureConfig { n: 90, k: 3, dim: 12, separation: 4.0, ..Default::default() },
            &mut rng(1),
        );
        let cfg = DeepConfig { latent_dim: 8, pretrain_epochs: 10, epochs: 20, ..Default::default() };
        let out = Dcrn::new(cfg).fit(&g.x, 3, &mut rng(2));
        let ari = adjusted_rand_index(&out.labels, &g.labels);
        assert!(ari > 0.3, "ARI = {ari}");
    }

    #[test]
    fn dcrn_output_shapes() {
        let g = generate_mixture(
            &MixtureConfig { n: 30, k: 2, dim: 6, ..Default::default() },
            &mut rng(3),
        );
        let cfg = DeepConfig { latent_dim: 4, pretrain_epochs: 4, epochs: 8, ..Default::default() };
        let out = Dcrn::new(cfg).fit(&g.x, 2, &mut rng(4));
        assert_eq!(out.labels.len(), 30);
        assert_eq!(out.re_loss.len(), 8);
    }
}
