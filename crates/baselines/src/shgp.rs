//! SHGP — Self-supervised Heterogeneous Graph Pre-training (Yang et al.,
//! NeurIPS '22).
//!
//! The original alternates two attention modules on a heterogeneous graph:
//! *Att-LPA* produces pseudo-labels by structural clustering (label
//! propagation), and *Att-HGNN* learns embeddings by predicting them. No
//! heterogeneous graph exists for flat embedding matrices, so — as in the
//! paper's own benchmark usage on tabular data — the substitution here runs
//! the same alternation on a KNN graph: label propagation generates
//! pseudo-labels, an MLP encoder is trained with cross-entropy to predict
//! them, and the graph/pseudo-labels are rebuilt from the refined
//! embeddings each round.

use graph::{gcn_adjacency, label_propagation};
use nn::loss::cross_entropy;
use nn::{Activation, Adam, Mlp, Params};
use rand::rngs::StdRng;
use tensor::Matrix;

use crate::common::{train_step, ClusterOutput, DeepConfig};

/// SHGP model configuration.
#[derive(Debug, Clone)]
pub struct Shgp {
    /// Shared deep-baseline hyper-parameters (`epochs` = gradient steps per
    /// round).
    pub config: DeepConfig,
    /// Alternation rounds between Att-LPA (pseudo-labels) and Att-HGNN
    /// (embedding training).
    pub rounds: usize,
    /// Label-propagation iterations per round.
    pub lpa_iters: usize,
}

impl Default for Shgp {
    fn default() -> Self {
        Self { config: DeepConfig::default(), rounds: 3, lpa_iters: 10 }
    }
}

impl Shgp {
    /// Creates SHGP with the given shared configuration.
    pub fn new(config: DeepConfig) -> Self {
        Self { config, rounds: 3, lpa_iters: 10 }
    }

    /// Trains SHGP on the rows of `x` into `k` clusters.
    pub fn fit(&self, x: &Matrix, k: usize, rng: &mut StdRng) -> ClusterOutput {
        // Standardize features in front of the encoder, matching TableDC's
        // preprocessing so the comparison isolates the objectives.
        let x = &x.standardize_cols();
        let cfg = &self.config;
        let n = x.rows();
        let knn = cfg.knn_k.min(n.saturating_sub(1)).max(1);

        let mut params = Params::new();
        let encoder = Mlp::new(
            &mut params,
            &[x.cols(), 64, cfg.latent_dim],
            Activation::Relu,
            Activation::Linear,
            rng,
        );
        // Classification head on top of the encoder.
        let head = nn::Linear::new(&mut params, cfg.latent_dim, k, Activation::Linear, rng);

        let mut adam = Adam::new(cfg.lr);
        let mut embedding = x.clone();
        let mut pseudo = Matrix::zeros(n, k);
        let steps_per_round = (cfg.epochs / self.rounds.max(1)).max(1);

        for _round in 0..self.rounds {
            // Att-LPA substitute: structural clustering via label
            // propagation on the current embedding's KNN graph, seeded with
            // K-means++-style anchor points (k farthest-ish seeds).
            let adj = gcn_adjacency(&embedding, knn);
            let seeds = clustering::kmeans::kmeans_pp_seeds(&embedding, k, rng);
            let mut seed_labels = Matrix::zeros(n, k);
            for j in 0..k {
                // The data point closest to each seed anchors one label.
                let mut best = 0;
                let mut best_d = f64::INFINITY;
                for i in 0..n {
                    let d = tensor::distance::sq_euclidean(embedding.row(i), seeds.row(j));
                    if d < best_d {
                        best_d = d;
                        best = i;
                    }
                }
                seed_labels[(best, j)] = 1.0;
            }
            pseudo = label_propagation(&adj, &seed_labels, self.lpa_iters);
            // Harden pseudo-labels (the original's argmax structural
            // clusters).
            let hard = pseudo.argmax_rows();
            let mut targets = Matrix::zeros(n, k);
            for (i, &l) in hard.iter().enumerate() {
                targets[(i, l)] = 1.0;
            }

            // Att-HGNN substitute: train the encoder to predict them.
            for _ in 0..steps_per_round {
                let enc = &encoder;
                let head_ref = &head;
                let tgt = targets.clone();
                let _ = train_step(&mut params, &mut adam, |t, bound| {
                    let xv = t.constant(x.clone());
                    let z = enc.forward(bound, xv);
                    let logits = head_ref.forward(bound, z);
                    let probs = t.softmax_rows(logits);
                    cross_entropy(t, &tgt, probs)
                });
            }
            embedding = encoder.infer(&params, x);
        }

        ClusterOutput::from_labels(pseudo.argmax_rows())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clustering::metrics::adjusted_rand_index;
    use datagen::{generate_mixture, MixtureConfig};
    use tensor::random::rng;

    #[test]
    fn shgp_clusters_separated_mixture() {
        let g = generate_mixture(
            &MixtureConfig { n: 90, k: 3, dim: 12, separation: 5.0, ..Default::default() },
            &mut rng(1),
        );
        let cfg = DeepConfig { latent_dim: 8, epochs: 30, ..Default::default() };
        let out = Shgp::new(cfg).fit(&g.x, 3, &mut rng(2));
        let ari = adjusted_rand_index(&out.labels, &g.labels);
        assert!(ari > 0.3, "ARI = {ari}");
    }

    #[test]
    fn shgp_label_range() {
        let g = generate_mixture(
            &MixtureConfig { n: 40, k: 4, dim: 8, ..Default::default() },
            &mut rng(3),
        );
        let cfg = DeepConfig { latent_dim: 4, epochs: 9, ..Default::default() };
        let out = Shgp::new(cfg).fit(&g.x, 4, &mut rng(4));
        assert_eq!(out.labels.len(), 40);
        assert!(out.labels.iter().all(|&l| l < 4));
    }
}
