//! Shared configuration and building blocks for the deep-clustering
//! baselines.
//!
//! All five deep baselines (SDCN, DFCN, DCRN, EDESC, SHGP) are built on the
//! same `nn`/`graph` substrate as TableDC itself, so quality differences
//! between methods come from their objectives — not from framework or
//! tuning asymmetries. Per §4.3 the baselines run with the same epoch
//! budget as TableDC and their originally published architectural choices
//! (Student-t kernel, Euclidean distances, K-means initialization).

use autograd::{Tape, Var};
use nn::Params;
use rand::rngs::StdRng;
use tabledc::diagnostics::{self, ConvergenceVerdict, DiagnosticsTracker, VerdictRules};
use tensor::Matrix;

/// Hyper-parameters shared by the deep baselines.
#[derive(Debug, Clone)]
pub struct DeepConfig {
    /// Latent dimension of the AE/GCN representations.
    pub latent_dim: usize,
    /// AE pretraining epochs.
    pub pretrain_epochs: usize,
    /// Joint training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// KNN graph degree for the GCN-based methods.
    pub knn_k: usize,
}

impl Default for DeepConfig {
    fn default() -> Self {
        Self { latent_dim: 32, pretrain_epochs: 30, epochs: 100, lr: 1e-3, knn_k: 5 }
    }
}

impl DeepConfig {
    /// Compact encoder layout `[d, 256, 128, latent]` shared with TableDC's
    /// scaled configuration.
    pub fn encoder_dims(&self, input_dim: usize) -> Vec<usize> {
        vec![input_dim, 256, 128, self.latent_dim]
    }
}

/// Output of a baseline run.
#[derive(Debug, Clone)]
pub struct ClusterOutput {
    /// Hard labels per input row.
    pub labels: Vec<usize>,
    /// Per-epoch reconstruction loss (when the method has one).
    pub re_loss: Vec<f64>,
    /// Per-epoch `KL(p‖q)` divergence (when the method is self-supervised).
    pub kl_pq: Vec<f64>,
    /// Numerical-health verdict of the run (policy from `TABLEDC_HEALTH`).
    pub health: obs::HealthReport,
    /// Structural convergence verdict (shared rules with TableDC).
    pub convergence: ConvergenceVerdict,
}

impl ClusterOutput {
    /// Output with labels only.
    pub fn from_labels(labels: Vec<usize>) -> Self {
        Self {
            labels,
            re_loss: Vec::new(),
            kl_pq: Vec::new(),
            health: obs::HealthReport::default(),
            convergence: ConvergenceVerdict::default(),
        }
    }
}

/// Per-epoch telemetry shared by the deep baselines: one `baseline.epoch`
/// event, NaN/Inf health checks on the loss scalars, and the structural
/// diagnostics (`baseline.diag` events + churn/share/margin tracking) the
/// convergence verdict is rendered from. One observer per fit; every event
/// carries the observer's process-unique `fit` id so `trace_check` can
/// verify per-fit epoch monotonicity.
pub struct EpochObserver {
    method: &'static str,
    fit_id: u64,
    k: usize,
    monitor: obs::HealthMonitor,
    tracker: DiagnosticsTracker,
}

impl EpochObserver {
    /// A fresh observer for one `method` fit into `k` clusters (health
    /// policy from `TABLEDC_HEALTH`).
    pub fn new(method: &'static str, k: usize) -> Self {
        Self {
            method,
            fit_id: diagnostics::next_fit_id(),
            k,
            monitor: obs::HealthMonitor::from_env(),
            tracker: DiagnosticsTracker::new(),
        }
    }

    /// Records one epoch: emits `baseline.epoch`, checks each loss scalar
    /// against the monitor's policy, and — when the epoch is healthy —
    /// observes the soft-assignment matrix `q` for structural diagnostics
    /// and emits `baseline.diag`. Returns
    /// [`Abort`](obs::health::Action::Abort) when a strict-policy
    /// violation was found — the baseline then stops its epoch loop
    /// (baselines record the violation but do not write diagnostic dumps;
    /// those are TableDC's own abort path).
    pub fn observe(
        &mut self,
        epoch: usize,
        re_loss: f64,
        kl_pq: f64,
        loss: f64,
        q: &Matrix,
    ) -> obs::health::Action {
        obs::event("baseline.epoch")
            .str("method", self.method)
            .u64("fit", self.fit_id)
            .u64("epoch", epoch as u64)
            .f64("re_loss", re_loss)
            .f64("kl_pq", kl_pq)
            .f64("loss", loss)
            .emit();
        for (name, v) in [("re_loss", re_loss), ("kl_pq", kl_pq), ("loss", loss)] {
            let action = self.monitor.check_scalar(&format!("{}.{name}", self.method), v, epoch as u64);
            if action.should_abort() {
                return action;
            }
        }
        let diag = self.tracker.observe(q, None);
        diagnostics::emit_diag_event("baseline.diag", Some(self.method), self.fit_id, &diag);
        diagnostics::record_series(&format!("{}.diag", self.method), &diag);
        obs::health::Action::Continue
    }

    /// Closes the fit: the health report and the convergence verdict.
    pub fn finish(self) -> (obs::HealthReport, ConvergenceVerdict) {
        let verdict = self.tracker.verdict(self.k, &VerdictRules::default());
        obs::event("baseline.convergence")
            .str("method", self.method)
            .u64("fit", self.fit_id)
            .str("status", verdict.status.as_str())
            .i64("epoch", verdict.epoch.map_or(-1, |e| e as i64))
            .str("rule", &verdict.rule)
            .emit();
        (self.monitor.report(), verdict)
    }
}

/// Student's-t soft assignments between latent points and centers with the
/// standard DEC normalization: `q_ij ∝ (1 + ‖z_i − c_j‖²/ν)^−(ν+1)/2`,
/// rows summing to 1 — the kernel used by SDCN/DFCN/DCRN (§2.1).
pub fn student_t_assignments(t: &Tape, z: Var, c: Var, nu: f64) -> Var {
    let d2 = t.sq_dist_cdist(z, c);
    let q_raw = t.pow_scalar(t.add_scalar(t.scale(d2, 1.0 / nu), 1.0), -(nu + 1.0) / 2.0);
    let sums = t.add_scalar(t.row_sums(q_raw), 1e-12);
    t.div_col_broadcast(q_raw, sums)
}

/// K-means cluster-center initialization on a latent matrix — the
/// initializer all the deep baselines use (§2.1 item iii).
pub fn kmeans_centers(z: &Matrix, k: usize, rng: &mut StdRng) -> Matrix {
    clustering::KMeans::new(k).fit(z, rng).centroids
}

/// Binds `params`, runs `forward` to produce a scalar loss, backprops and
/// applies one Adam step. Returns the loss value. Centralizing this loop
/// keeps each baseline's `fit` focused on its objective.
pub fn train_step(
    params: &mut Params,
    adam: &mut nn::Adam,
    forward: impl FnOnce(&Tape, &nn::BoundParams<'_>) -> Var,
) -> f64 {
    use nn::Optimizer;
    let tape = Tape::new();
    let bound = params.bind(&tape);
    let loss = forward(&tape, &bound);
    let value = tape.value(loss)[(0, 0)];
    let grads = tape.backward(loss);
    adam.step_from_tape(params, &bound, &grads);
    value
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::random::{randn, rng};

    #[test]
    fn student_t_rows_are_distributions() {
        let t = Tape::new();
        let z = t.leaf(randn(10, 4, &mut rng(1)));
        let c = t.leaf(randn(3, 4, &mut rng(2)));
        let q = student_t_assignments(&t, z, c, 1.0);
        let v = t.value(q);
        for i in 0..10 {
            let s: f64 = v.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn student_t_prefers_closer_center() {
        let t = Tape::new();
        let z = t.leaf(Matrix::from_rows(&[&[0.0, 0.0]]));
        let c = t.leaf(Matrix::from_rows(&[&[0.5, 0.0], &[5.0, 0.0]]));
        let q = t.value(student_t_assignments(&t, z, c, 1.0));
        assert!(q[(0, 0)] > q[(0, 1)]);
    }

    #[test]
    fn epoch_observer_emits_diag_events_and_renders_a_verdict() {
        let q = Matrix::from_rows(&[&[0.9, 0.1], &[0.2, 0.8], &[0.1, 0.9], &[0.7, 0.3]]);
        let ((health, verdict), lines) = obs::test_support::with_memory_sink(|| {
            let mut obs_ = EpochObserver::new("unit", 2);
            for epoch in 0..12 {
                let action = obs_.observe(epoch, 0.5, 0.1, 0.6, &q);
                assert!(!action.should_abort());
            }
            obs_.finish()
        });
        assert_eq!(health.verdict, obs::health::Verdict::Healthy);
        // Constant labels: settled after the first full-churn epoch.
        assert_eq!(verdict.status, tabledc::ConvergenceStatus::Converged);
        assert_eq!(verdict.epoch, Some(1));
        let diags: Vec<_> = lines.iter().filter(|l| l.contains("\"baseline.diag\"")).collect();
        assert_eq!(diags.len(), 12);
        let v = obs::json::parse(diags[3]).expect("valid JSON");
        assert_eq!(v.get("method").unwrap().as_str(), Some("unit"));
        assert_eq!(v.get("epoch").unwrap().as_f64(), Some(3.0));
        assert_eq!(v.get("delta_label_frac").unwrap().as_f64(), Some(0.0));
        assert_eq!(v.get("min_share").unwrap().as_f64(), Some(0.5));
        assert_eq!(v.get("max_share").unwrap().as_f64(), Some(0.5));
        assert!(lines.iter().any(|l| l.contains("\"baseline.convergence\"")));
        // Every event of the fit shares one fit id.
        let fit_ids: Vec<f64> = diags
            .iter()
            .map(|l| obs::json::parse(l).unwrap().get("fit").unwrap().as_f64().unwrap())
            .collect();
        assert!(fit_ids.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn epoch_observer_aborts_on_strict_nan_before_diagnostics() {
        let q = Matrix::from_rows(&[&[1.0, 0.0]]);
        let (action, lines) = obs::test_support::with_memory_sink(|| {
            let mut obs_ = EpochObserver::new("unit2", 2);
            // Install a strict monitor by poking the loss with NaN under a
            // strict policy.
            obs_.monitor = obs::HealthMonitor::new(obs::health::Policy::Strict);
            obs_.observe(0, f64::NAN, 0.1, 0.6, &q)
        });
        assert!(action.should_abort());
        // The aborting epoch emits baseline.epoch but no baseline.diag.
        assert!(lines.iter().any(|l| l.contains("\"baseline.epoch\"")));
        assert!(!lines.iter().any(|l| l.contains("\"baseline.diag\"")));
    }

    #[test]
    fn train_step_reduces_simple_loss() {
        let mut params = Params::new();
        let w = params.register(Matrix::full(1, 1, 5.0));
        let mut adam = nn::Adam::new(0.1);
        let mut last = f64::INFINITY;
        for _ in 0..100 {
            last = train_step(&mut params, &mut adam, |t, b| t.sum(t.square(b.var(w))));
        }
        assert!(last < 0.1, "loss {last}");
    }
}
