//! Shared configuration and building blocks for the deep-clustering
//! baselines.
//!
//! All five deep baselines (SDCN, DFCN, DCRN, EDESC, SHGP) are built on the
//! same `nn`/`graph` substrate as TableDC itself, so quality differences
//! between methods come from their objectives — not from framework or
//! tuning asymmetries. Per §4.3 the baselines run with the same epoch
//! budget as TableDC and their originally published architectural choices
//! (Student-t kernel, Euclidean distances, K-means initialization).

use autograd::{Tape, Var};
use nn::Params;
use rand::rngs::StdRng;
use tensor::Matrix;

/// Hyper-parameters shared by the deep baselines.
#[derive(Debug, Clone)]
pub struct DeepConfig {
    /// Latent dimension of the AE/GCN representations.
    pub latent_dim: usize,
    /// AE pretraining epochs.
    pub pretrain_epochs: usize,
    /// Joint training epochs.
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// KNN graph degree for the GCN-based methods.
    pub knn_k: usize,
}

impl Default for DeepConfig {
    fn default() -> Self {
        Self { latent_dim: 32, pretrain_epochs: 30, epochs: 100, lr: 1e-3, knn_k: 5 }
    }
}

impl DeepConfig {
    /// Compact encoder layout `[d, 256, 128, latent]` shared with TableDC's
    /// scaled configuration.
    pub fn encoder_dims(&self, input_dim: usize) -> Vec<usize> {
        vec![input_dim, 256, 128, self.latent_dim]
    }
}

/// Output of a baseline run.
#[derive(Debug, Clone)]
pub struct ClusterOutput {
    /// Hard labels per input row.
    pub labels: Vec<usize>,
    /// Per-epoch reconstruction loss (when the method has one).
    pub re_loss: Vec<f64>,
    /// Per-epoch `KL(p‖q)` divergence (when the method is self-supervised).
    pub kl_pq: Vec<f64>,
    /// Numerical-health verdict of the run (policy from `TABLEDC_HEALTH`).
    pub health: obs::HealthReport,
}

impl ClusterOutput {
    /// Output with labels only.
    pub fn from_labels(labels: Vec<usize>) -> Self {
        Self { labels, re_loss: Vec::new(), kl_pq: Vec::new(), health: obs::HealthReport::default() }
    }
}

/// Per-epoch telemetry + health checking shared by the deep baselines:
/// emits one `baseline.epoch` event and checks each loss scalar against the
/// monitor's policy. Returns [`Abort`](obs::health::Action::Abort) when a
/// strict-policy violation was found — the baseline then stops its epoch
/// loop (baselines record the violation but do not write diagnostic dumps;
/// those are TableDC's own abort path).
pub fn epoch_health(
    monitor: &mut obs::HealthMonitor,
    method: &str,
    epoch: usize,
    re_loss: f64,
    kl_pq: f64,
    loss: f64,
) -> obs::health::Action {
    obs::event("baseline.epoch")
        .str("method", method)
        .u64("epoch", epoch as u64)
        .f64("re_loss", re_loss)
        .f64("kl_pq", kl_pq)
        .f64("loss", loss)
        .emit();
    for (name, v) in [("re_loss", re_loss), ("kl_pq", kl_pq), ("loss", loss)] {
        let action = monitor.check_scalar(&format!("{method}.{name}"), v, epoch as u64);
        if action.should_abort() {
            return action;
        }
    }
    obs::health::Action::Continue
}

/// Student's-t soft assignments between latent points and centers with the
/// standard DEC normalization: `q_ij ∝ (1 + ‖z_i − c_j‖²/ν)^−(ν+1)/2`,
/// rows summing to 1 — the kernel used by SDCN/DFCN/DCRN (§2.1).
pub fn student_t_assignments(t: &Tape, z: Var, c: Var, nu: f64) -> Var {
    let d2 = t.sq_dist_cdist(z, c);
    let q_raw = t.pow_scalar(t.add_scalar(t.scale(d2, 1.0 / nu), 1.0), -(nu + 1.0) / 2.0);
    let sums = t.add_scalar(t.row_sums(q_raw), 1e-12);
    t.div_col_broadcast(q_raw, sums)
}

/// K-means cluster-center initialization on a latent matrix — the
/// initializer all the deep baselines use (§2.1 item iii).
pub fn kmeans_centers(z: &Matrix, k: usize, rng: &mut StdRng) -> Matrix {
    clustering::KMeans::new(k).fit(z, rng).centroids
}

/// Binds `params`, runs `forward` to produce a scalar loss, backprops and
/// applies one Adam step. Returns the loss value. Centralizing this loop
/// keeps each baseline's `fit` focused on its objective.
pub fn train_step(
    params: &mut Params,
    adam: &mut nn::Adam,
    forward: impl FnOnce(&Tape, &nn::BoundParams<'_>) -> Var,
) -> f64 {
    use nn::Optimizer;
    let tape = Tape::new();
    let bound = params.bind(&tape);
    let loss = forward(&tape, &bound);
    let value = tape.value(loss)[(0, 0)];
    let grads = tape.backward(loss);
    adam.step_from_tape(params, &bound, &grads);
    value
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::random::{randn, rng};

    #[test]
    fn student_t_rows_are_distributions() {
        let t = Tape::new();
        let z = t.leaf(randn(10, 4, &mut rng(1)));
        let c = t.leaf(randn(3, 4, &mut rng(2)));
        let q = student_t_assignments(&t, z, c, 1.0);
        let v = t.value(q);
        for i in 0..10 {
            let s: f64 = v.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn student_t_prefers_closer_center() {
        let t = Tape::new();
        let z = t.leaf(Matrix::from_rows(&[&[0.0, 0.0]]));
        let c = t.leaf(Matrix::from_rows(&[&[0.5, 0.0], &[5.0, 0.0]]));
        let q = t.value(student_t_assignments(&t, z, c, 1.0));
        assert!(q[(0, 0)] > q[(0, 1)]);
    }

    #[test]
    fn train_step_reduces_simple_loss() {
        let mut params = Params::new();
        let w = params.register(Matrix::full(1, 1, 5.0));
        let mut adam = nn::Adam::new(0.1);
        let mut last = f64::INFINITY;
        for _ in 0..100 {
            last = train_step(&mut params, &mut adam, |t, b| t.sum(t.square(b.var(w))));
        }
        assert!(last < 0.1, "loss {last}");
    }
}
