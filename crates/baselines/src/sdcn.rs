//! SDCN — Structural Deep Clustering Network (Bo et al., WWW '20).
//!
//! Compact reimplementation of the reference design: a pretrained
//! autoencoder and a GCN that consumes a KNN graph over the inputs, with
//! the AE's layer representations injected into each GCN layer
//! (`Z^{(l+1)} = φ(Â·((1−ε)Z^{(l)} + ε·H^{(l)})·W)`), trained with the dual
//! self-supervised objective `KL(p‖q) + KL(p‖Z) + re_loss` where `q` is the
//! Student-t assignment on the AE latent and `Z` the GCN's softmax output.

use std::rc::Rc;

use graph::gcn_adjacency;
use graph::Csr;
use nn::loss::{kl_div, kl_div_value, mse};
use nn::{Activation, Adam, Autoencoder, Params};
use rand::rngs::StdRng;
use tabledc::target_distribution;
use tensor::Matrix;

use crate::common::{
    kmeans_centers, student_t_assignments, train_step, ClusterOutput, DeepConfig, EpochObserver,
};

/// SDCN model configuration.
#[derive(Debug, Clone, Default)]
pub struct Sdcn {
    /// Shared deep-baseline hyper-parameters.
    pub config: DeepConfig,
}

impl Sdcn {
    /// Creates SDCN with the given shared configuration.
    pub fn new(config: DeepConfig) -> Self {
        Self { config }
    }

    /// Trains SDCN on the rows of `x` into `k` clusters.
    pub fn fit(&self, x: &Matrix, k: usize, rng: &mut StdRng) -> ClusterOutput {
        // Standardize features in front of the encoder, matching TableDC's
        // preprocessing so the comparison isolates the objectives.
        let x = &x.standardize_cols();
        let cfg = &self.config;
        let adj: Rc<Csr> = Rc::new(gcn_adjacency(x, cfg.knn_k.min(x.rows().saturating_sub(1)).max(1)));

        // Pretrained AE.
        let mut params = Params::new();
        let dims = cfg.encoder_dims(x.cols());
        let ae = Autoencoder::new(&mut params, &dims, rng);
        ae.pretrain(&mut params, x, cfg.pretrain_epochs, cfg.lr);

        // GCN layers mirroring the encoder widths, ending in k logits.
        let mut gcn_layers: Vec<graph::GcnLayer> = Vec::new();
        let mut gcn_dims: Vec<usize> = dims.clone();
        gcn_dims.push(k);
        for w in gcn_dims.windows(2) {
            gcn_layers.push(graph::GcnLayer::new(&mut params, w[0], w[1], Activation::Linear, rng));
        }

        // Cluster centers from K-means on the pretrained latent.
        let z0 = ae.embed(&params, x);
        let centers = params.register(kmeans_centers(&z0, k, rng));

        let mut adam = Adam::new(cfg.lr);
        let mut out = ClusterOutput::from_labels(vec![0; x.rows()]);
        let epsilon = 0.5; // AE-injection mixing weight of the original.
        let mut final_z = Matrix::zeros(x.rows(), k);
        // SDCN predicts from the GCN distribution Z, so the structural
        // diagnostics watch Z rather than the Student-t q.
        let mut observer = EpochObserver::new("sdcn", k);

        for epoch in 0..cfg.epochs {
            let adj = adj.clone();
            let ae_ref = &ae;
            let layers = &gcn_layers;
            let mut q_val = Matrix::zeros(1, 1);
            let mut z_val = Matrix::zeros(1, 1);
            let mut re_val = 0.0;
            let mut kl_val = 0.0;
            let loss_val = train_step(&mut params, &mut adam, |t, bound| {
                let xv = t.constant(x.clone());

                // AE forward, keeping every encoder layer's activations for
                // injection into the GCN.
                let mut h = xv;
                let mut ae_activations = Vec::new();
                for layer in ae_ref.encoder_layers() {
                    h = layer.forward(bound, h);
                    ae_activations.push(h);
                }
                let z_ae = h;
                let recon = ae_ref.decode(bound, z_ae);

                // GCN with AE injection: layer 0 consumes x, later layers
                // mix in the matching AE activation.
                let mut g = xv;
                for (li, layer) in layers.iter().enumerate() {
                    if li > 0 && li <= ae_activations.len() {
                        let inject = ae_activations[li - 1];
                        g = t.add(t.scale(g, 1.0 - epsilon), t.scale(inject, epsilon));
                    }
                    g = layer.forward(bound, &adj, g);
                    if li + 1 < layers.len() {
                        g = t.relu(g);
                    }
                }
                let z_dist = t.softmax_rows(g);

                // Dual self-supervision.
                let q = student_t_assignments(t, z_ae, bound.var(centers), 1.0);
                q_val = t.value(q);
                z_val = t.value(z_dist);
                let p = target_distribution(&q_val);
                let kl_q = kl_div(t, &p, q);
                let kl_z = kl_div(t, &p, z_dist);
                let re = mse(t, xv, recon);
                re_val = t.value(re)[(0, 0)];
                kl_val = kl_div_value(&p, &q_val);
                // Original weights: 0.1·KL(p‖q) + 0.01·KL(p‖Z) + re.
                t.add(t.add(t.scale(kl_q, 0.1), t.scale(kl_z, 0.01)), re)
            });
            if observer.observe(epoch, re_val, kl_val, loss_val, &z_val).should_abort() {
                break;
            }
            out.re_loss.push(re_val);
            out.kl_pq.push(kl_val);
            final_z = z_val;
        }

        // SDCN predicts from the GCN distribution Z.
        out.labels = final_z.argmax_rows();
        let (health, convergence) = observer.finish();
        out.health = health;
        out.convergence = convergence;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clustering::metrics::adjusted_rand_index;
    use datagen::{generate_mixture, MixtureConfig};
    use tensor::random::rng;

    #[test]
    fn sdcn_clusters_separated_mixture() {
        let g = generate_mixture(
            &MixtureConfig { n: 90, k: 3, dim: 12, separation: 4.0, ..Default::default() },
            &mut rng(1),
        );
        let cfg = DeepConfig { latent_dim: 8, pretrain_epochs: 10, epochs: 25, ..Default::default() };
        let out = Sdcn::new(cfg).fit(&g.x, 3, &mut rng(2));
        let ari = adjusted_rand_index(&out.labels, &g.labels);
        assert!(ari > 0.4, "ARI = {ari}");
        assert_eq!(out.re_loss.len(), 25);
    }

    #[test]
    fn sdcn_emits_epoch_events_and_reports_health() {
        let g = generate_mixture(
            &MixtureConfig { n: 30, k: 2, dim: 6, ..Default::default() },
            &mut rng(5),
        );
        let cfg = DeepConfig { latent_dim: 4, pretrain_epochs: 2, epochs: 4, ..Default::default() };
        let (out, lines) = obs::test_support::with_memory_sink(|| {
            Sdcn::new(cfg).fit(&g.x, 2, &mut rng(6))
        });
        assert_eq!(out.health.verdict, obs::health::Verdict::Healthy);
        let epochs: Vec<_> = lines.iter().filter(|l| l.contains("\"baseline.epoch\"")).collect();
        assert_eq!(epochs.len(), 4, "one baseline.epoch event per epoch");
        for line in &epochs {
            let v = obs::json::parse(line).expect("valid JSON line");
            assert_eq!(v.get("method").unwrap().as_str().unwrap(), "sdcn");
            for key in ["epoch", "re_loss", "kl_pq", "loss"] {
                let value = v.get(key).and_then(|j| j.as_f64()).expect("numeric field");
                assert!(value.is_finite(), "{key} must be finite, got {value}");
            }
        }
    }

    #[test]
    fn sdcn_labels_cover_inputs() {
        let g = generate_mixture(
            &MixtureConfig { n: 40, k: 2, dim: 8, ..Default::default() },
            &mut rng(3),
        );
        let cfg = DeepConfig { latent_dim: 4, pretrain_epochs: 5, epochs: 10, ..Default::default() };
        let out = Sdcn::new(cfg).fit(&g.x, 2, &mut rng(4));
        assert_eq!(out.labels.len(), 40);
        assert!(out.labels.iter().all(|&l| l < 2));
    }
}
