//! DFCN — Deep Fusion Clustering Network (Tu et al., AAAI '21).
//!
//! Compact reimplementation: an autoencoder and a GCN encoder produce two
//! latent views that are fused (`z = ½(z_ae + z_gcn)` refined by a learned
//! per-dimension gate), and the fused representation drives a Student-t
//! self-supervised objective plus both reconstruction terms. The original's
//! IGAE is simplified to a GCN encoder whose reconstruction target is the
//! smoothed input `Â·X` (its graph-reconstruction surrogate).

use std::rc::Rc;

use graph::{gcn_adjacency, Csr, Gcn};
use nn::loss::{kl_div, kl_div_value, mse};
use nn::{Activation, Adam, Autoencoder, Params};
use rand::rngs::StdRng;
use tabledc::target_distribution;
use tensor::Matrix;

use crate::common::{
    kmeans_centers, student_t_assignments, train_step, ClusterOutput, DeepConfig, EpochObserver,
};

/// DFCN model configuration.
#[derive(Debug, Clone, Default)]
pub struct Dfcn {
    /// Shared deep-baseline hyper-parameters.
    pub config: DeepConfig,
}

impl Dfcn {
    /// Creates DFCN with the given shared configuration.
    pub fn new(config: DeepConfig) -> Self {
        Self { config }
    }

    /// Trains DFCN on the rows of `x` into `k` clusters.
    pub fn fit(&self, x: &Matrix, k: usize, rng: &mut StdRng) -> ClusterOutput {
        // Standardize features in front of the encoder, matching TableDC's
        // preprocessing so the comparison isolates the objectives.
        let x = &x.standardize_cols();
        let cfg = &self.config;
        let adj: Rc<Csr> =
            Rc::new(gcn_adjacency(x, cfg.knn_k.min(x.rows().saturating_sub(1)).max(1)));

        let mut params = Params::new();
        let dims = cfg.encoder_dims(x.cols());
        let ae = Autoencoder::new(&mut params, &dims, rng);
        ae.pretrain(&mut params, x, cfg.pretrain_epochs, cfg.lr);

        let gcn = Gcn::new(&mut params, &dims, Activation::Linear, rng);
        // Learned fusion gate (1×latent), initialized at 0 → sigmoid 0.5,
        // i.e. an even AE/GCN blend that training can re-balance.
        let gate = params.register(Matrix::zeros(1, cfg.latent_dim));

        let z0 = ae.embed(&params, x);
        let centers = params.register(kmeans_centers(&z0, k, rng));

        let mut adam = Adam::new(cfg.lr);
        let mut out = ClusterOutput::from_labels(vec![0; x.rows()]);
        let smoothed = {
            // Â·X — the IGAE reconstruction target.
            adj.matmul_dense(x)
        };
        let mut final_q = Matrix::zeros(x.rows(), k);

        let mut observer = EpochObserver::new("dfcn", k);
        for epoch in 0..cfg.epochs {
            let adj = adj.clone();
            let ae_ref = &ae;
            let gcn_ref = &gcn;
            let mut q_val = Matrix::zeros(1, 1);
            let mut re_val = 0.0;
            let mut kl_val = 0.0;
            let loss_val = train_step(&mut params, &mut adam, |t, bound| {
                let xv = t.constant(x.clone());
                let z_ae = ae_ref.encode(bound, xv);
                let recon = ae_ref.decode(bound, z_ae);
                let z_gcn = gcn_ref.forward(bound, &adj, xv);

                // Gated fusion: z = g∘z_ae + (1−g)∘z_gcn with g = σ(gate)
                // broadcast across rows.
                let g_row = t.sigmoid(bound.var(gate));
                let ones = t.constant(Matrix::ones(x.rows(), 1));
                let g_full = t.matmul(ones, g_row);
                let fused = t.add(
                    t.mul(g_full, z_ae),
                    t.mul(t.add_scalar(t.neg(g_full), 1.0), z_gcn),
                );

                let q = student_t_assignments(t, fused, bound.var(centers), 1.0);
                q_val = t.value(q);
                let p = target_distribution(&q_val);
                let kl = kl_div(t, &p, q);
                let re_ae = mse(t, xv, recon);
                // GCN view reconstructs the smoothed input from its latent
                // via the decoder (shared decoder, as in the fusion idea).
                let recon_g = ae_ref.decode(bound, z_gcn);
                let sm = t.constant(smoothed.clone());
                let re_gcn = mse(t, sm, recon_g);
                re_val = t.value(re_ae)[(0, 0)];
                kl_val = kl_div_value(&p, &q_val);
                t.add(t.add(re_ae, t.scale(re_gcn, 0.1)), t.scale(kl, 0.1))
            });
            if observer.observe(epoch, re_val, kl_val, loss_val, &q_val).should_abort() {
                break;
            }
            out.re_loss.push(re_val);
            out.kl_pq.push(kl_val);
            final_q = q_val;
        }

        out.labels = final_q.argmax_rows();
        let (health, convergence) = observer.finish();
        out.health = health;
        out.convergence = convergence;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clustering::metrics::adjusted_rand_index;
    use datagen::{generate_mixture, MixtureConfig};
    use tensor::random::rng;

    #[test]
    fn dfcn_clusters_separated_mixture() {
        let g = generate_mixture(
            &MixtureConfig { n: 90, k: 3, dim: 12, separation: 4.0, ..Default::default() },
            &mut rng(1),
        );
        let cfg = DeepConfig { latent_dim: 8, pretrain_epochs: 10, epochs: 25, ..Default::default() };
        let out = Dfcn::new(cfg).fit(&g.x, 3, &mut rng(2));
        let ari = adjusted_rand_index(&out.labels, &g.labels);
        assert!(ari > 0.4, "ARI = {ari}");
    }

    #[test]
    fn dfcn_histories_have_epoch_length() {
        let g = generate_mixture(
            &MixtureConfig { n: 40, k: 2, dim: 8, ..Default::default() },
            &mut rng(3),
        );
        let cfg = DeepConfig { latent_dim: 4, pretrain_epochs: 5, epochs: 12, ..Default::default() };
        let out = Dfcn::new(cfg).fit(&g.x, 2, &mut rng(4));
        assert_eq!(out.re_loss.len(), 12);
        assert_eq!(out.kl_pq.len(), 12);
    }
}
