//! Bespoke (task-specific) comparators of §4.7: D3L and Starmie for schema
//! inference, JedAI for entity resolution, D4 and Starmie for domain
//! discovery.
//!
//! Unlike the deep baselines, these operate on the *raw text* of tables,
//! records, or columns — the same corpora the embedding simulators consume
//! — using purely syntactic evidence, so they genuinely cannot see the
//! ground-truth concepts. Each is a compact reimplementation of the
//! published method's core mechanism (DESIGN.md §1).

use std::collections::{HashMap, HashSet};

use nn::loss::nt_xent;
use nn::{Activation, Adam, Mlp, Params};
use rand::rngs::StdRng;
use rand::Rng;
use tensor::Matrix;

use crate::common::{train_step, ClusterOutput};
use clustering::{connected_components, KMeans};

/// Lowercased whitespace token set of a text.
fn token_set(text: &str) -> HashSet<String> {
    text.split_whitespace().map(|t| t.to_lowercase()).collect()
}

/// Jaccard similarity of two token sets.
fn jaccard(a: &HashSet<String>, b: &HashSet<String>) -> f64 {
    let inter = a.intersection(b).count() as f64;
    let union = (a.len() + b.len()) as f64 - inter;
    if union == 0.0 {
        0.0
    } else {
        inter / union
    }
}

/// Dice coefficient of two token sets.
fn dice(a: &HashSet<String>, b: &HashSet<String>) -> f64 {
    let inter = a.intersection(b).count() as f64;
    let total = (a.len() + b.len()) as f64;
    if total == 0.0 {
        0.0
    } else {
        2.0 * inter / total
    }
}

/// Set-cosine similarity (intersection over geometric mean of sizes).
fn set_cosine(a: &HashSet<String>, b: &HashSet<String>) -> f64 {
    let inter = a.intersection(b).count() as f64;
    let denom = ((a.len() * b.len()) as f64).sqrt();
    if denom == 0.0 {
        0.0
    } else {
        inter / denom
    }
}

/// Overlap coefficient (intersection over the smaller set) — D4's
/// containment-style evidence for domains.
fn overlap_coefficient(a: &HashSet<String>, b: &HashSet<String>) -> f64 {
    let inter = a.intersection(b).count() as f64;
    let denom = a.len().min(b.len()) as f64;
    if denom == 0.0 {
        0.0
    } else {
        inter / denom
    }
}

// ---------------------------------------------------------------------------
// D3L
// ---------------------------------------------------------------------------

/// D3L (Bogatu et al., ICDE '20): table similarity from several largely
/// syntactic signals — here word-token q-grams and value-token overlap —
/// combined into one feature embedding and clustered with K-means, the
/// combination §4.7.1 reports as strongest.
#[derive(Debug, Clone)]
pub struct D3l {
    /// Hash-embedding dimension per evidence channel.
    pub dim: usize,
}

impl Default for D3l {
    fn default() -> Self {
        Self { dim: 96 }
    }
}

impl D3l {
    /// Clusters table texts into `k` groups.
    pub fn fit(&self, texts: &[&str], k: usize, rng: &mut StdRng) -> ClusterOutput {
        // Two evidence channels: character 4-grams (name/format evidence)
        // and whole-token hashes (value-overlap evidence).
        let qgrams = datagen::hash_ngram_embed(texts, self.dim, 4);
        let tokens = {
            let mut m = Matrix::zeros(texts.len(), self.dim);
            for (i, text) in texts.iter().enumerate() {
                for tok in token_set(text) {
                    let h = datagen::text::fnv1a(&tok);
                    let bucket = (h % self.dim as u64) as usize;
                    m[(i, bucket)] += 1.0;
                }
            }
            m.normalize_rows()
        };
        let features = qgrams.hcat(&tokens);
        let result = KMeans::paper_protocol(k).fit(&features, rng);
        ClusterOutput::from_labels(result.labels)
    }
}

// ---------------------------------------------------------------------------
// Starmie
// ---------------------------------------------------------------------------

/// Starmie (Fan et al., PVLDB '23): a contrastive column/table encoder.
/// The substitution fine-tunes an MLP projector over hash-n-gram text
/// embeddings with an NT-Xent loss on token-dropout augmented views, then
/// clusters by connected components over a cosine-similarity threshold
/// (the original's grouping step).
#[derive(Debug, Clone)]
pub struct Starmie {
    /// Base hash-embedding dimension.
    pub dim: usize,
    /// Projector output dimension.
    pub proj_dim: usize,
    /// Contrastive fine-tuning epochs.
    pub epochs: usize,
    /// Token dropout rate for augmentation.
    pub dropout: f64,
    /// Similarity threshold for the connected-component grouping.
    pub threshold: f64,
}

impl Default for Starmie {
    fn default() -> Self {
        Self { dim: 96, proj_dim: 32, epochs: 30, dropout: 0.3, threshold: 0.85 }
    }
}

impl Starmie {
    /// Clusters texts; `k` is used only as a fallback K-means target when
    /// thresholding degenerates (everything or nothing connected).
    pub fn fit(&self, texts: &[&str], k: usize, rng: &mut StdRng) -> ClusterOutput {
        let base = datagen::hash_ngram_embed(texts, self.dim, 3);
        let mut params = Params::new();
        let projector = Mlp::new(
            &mut params,
            &[self.dim, 64, self.proj_dim],
            Activation::Relu,
            Activation::Linear,
            rng,
        );
        let mut adam = Adam::new(1e-3);

        for _ in 0..self.epochs {
            // Two augmented views: token dropout, re-embedded.
            let augment = |r: &mut StdRng| -> Matrix {
                let dropped: Vec<String> = texts
                    .iter()
                    .map(|t| {
                        let kept: Vec<&str> = t
                            .split_whitespace()
                            .filter(|_| r.gen::<f64>() >= self.dropout)
                            .collect();
                        if kept.is_empty() {
                            t.to_string()
                        } else {
                            kept.join(" ")
                        }
                    })
                    .collect();
                let refs: Vec<&str> = dropped.iter().map(String::as_str).collect();
                datagen::hash_ngram_embed(&refs, self.dim, 3)
            };
            let v1 = augment(rng);
            let v2 = augment(rng);
            let proj = &projector;
            let _ = train_step(&mut params, &mut adam, |t, bound| {
                let a = proj.forward(bound, t.constant(v1.clone()));
                let b = proj.forward(bound, t.constant(v2.clone()));
                nt_xent(t, a, b, 0.5)
            });
        }

        let embedded = projector.infer(&params, &base).normalize_rows();
        let sim = embedded.matmul(&embedded.transpose());
        let n = texts.len();
        let edges: Vec<(usize, usize)> = (0..n)
            .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
            .filter(|&(i, j)| sim[(i, j)] >= self.threshold)
            .collect();
        let labels = connected_components(n, edges);
        let n_components = labels.iter().copied().max().map_or(0, |m| m + 1);
        if n_components <= 1 || n_components >= n {
            // Degenerate threshold: fall back to K-means on the embedding.
            let km = KMeans::new(k).fit(&embedded, rng);
            return ClusterOutput::from_labels(km.labels);
        }
        ClusterOutput::from_labels(labels)
    }
}

// ---------------------------------------------------------------------------
// JedAI
// ---------------------------------------------------------------------------

/// Pairwise similarity metric inside the JedAI workflow (Figure 2b
/// compares Jaccard, Cosine, and Dice).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JedaiMetric {
    /// Jaccard on token sets.
    Jaccard,
    /// Set cosine on token sets.
    Cosine,
    /// Dice coefficient on token sets.
    Dice,
}

impl JedaiMetric {
    /// Metric display name.
    pub fn name(self) -> &'static str {
        match self {
            JedaiMetric::Jaccard => "Jaccard",
            JedaiMetric::Cosine => "Cosine",
            JedaiMetric::Dice => "Dice",
        }
    }
}

/// JedAI (Papadakis et al.): the schema-agnostic entity-resolution
/// workflow — token blocking, pairwise token-set similarity over candidate
/// pairs, similarity thresholding, connected-component entity clusters.
#[derive(Debug, Clone)]
pub struct Jedai {
    /// Similarity metric.
    pub metric: JedaiMetric,
    /// Similarity threshold above which two records match.
    pub threshold: f64,
}

impl Jedai {
    /// Creates a workflow with the given metric and threshold.
    pub fn new(metric: JedaiMetric, threshold: f64) -> Self {
        Self { metric, threshold }
    }

    /// Clusters record texts into entities.
    pub fn fit(&self, texts: &[&str]) -> ClusterOutput {
        let sets: Vec<HashSet<String>> = texts.iter().map(|t| token_set(t)).collect();

        // Token blocking: candidate pairs share at least one token.
        let mut blocks: HashMap<&str, Vec<usize>> = HashMap::new();
        for (i, set) in sets.iter().enumerate() {
            for tok in set {
                blocks.entry(tok.as_str()).or_default().push(i);
            }
        }
        let mut candidates: HashSet<(usize, usize)> = HashSet::new();
        for ids in blocks.values() {
            // Skip stop-word-like huge blocks (standard block purging).
            if ids.len() > texts.len() / 2 {
                continue;
            }
            for (a, &i) in ids.iter().enumerate() {
                for &j in &ids[a + 1..] {
                    candidates.insert((i.min(j), i.max(j)));
                }
            }
        }

        let sim = |a: &HashSet<String>, b: &HashSet<String>| match self.metric {
            JedaiMetric::Jaccard => jaccard(a, b),
            JedaiMetric::Cosine => set_cosine(a, b),
            JedaiMetric::Dice => dice(a, b),
        };
        let edges: Vec<(usize, usize)> = candidates
            .into_iter()
            .filter(|&(i, j)| sim(&sets[i], &sets[j]) >= self.threshold)
            .collect();
        ClusterOutput::from_labels(connected_components(texts.len(), edges))
    }
}

// ---------------------------------------------------------------------------
// D4
// ---------------------------------------------------------------------------

/// D4 (Ota et al., PVLDB '20): data-driven domain discovery. Columns are
/// value sets; *local domains* form by connecting columns with strong value
/// overlap, and *strong domains* merge local domains that remain robust
/// under a stricter agreement requirement (simplified to a two-threshold
/// scheme over the overlap coefficient).
#[derive(Debug, Clone)]
pub struct D4 {
    /// Overlap coefficient threshold for local domains.
    pub local_threshold: f64,
    /// Fraction of a component's columns that must mutually agree for the
    /// strong-domain refinement to keep them merged.
    pub strong_threshold: f64,
}

impl Default for D4 {
    fn default() -> Self {
        Self { local_threshold: 0.35, strong_threshold: 0.2 }
    }
}

impl D4 {
    /// Clusters column texts (each text = the column's values) into
    /// domains.
    pub fn fit(&self, texts: &[&str]) -> ClusterOutput {
        let sets: Vec<HashSet<String>> = texts.iter().map(|t| token_set(t)).collect();
        let n = texts.len();

        // Local domains: strong pairwise value overlap.
        let mut edges = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                if overlap_coefficient(&sets[i], &sets[j]) >= self.local_threshold {
                    edges.push((i, j));
                }
            }
        }
        let local = connected_components(n, edges.iter().copied());

        // Strong domains: within each local domain, drop columns whose mean
        // overlap with the rest falls below the strong threshold; they
        // become singletons (D4's robustness pass against incomplete
        // columns).
        let mut groups: HashMap<usize, Vec<usize>> = HashMap::new();
        for (i, &l) in local.iter().enumerate() {
            groups.entry(l).or_default().push(i);
        }
        let mut labels = vec![usize::MAX; n];
        let mut next = 0;
        for members in groups.values() {
            if members.len() == 1 {
                labels[members[0]] = next;
                next += 1;
                continue;
            }
            let mut kept = Vec::new();
            for &i in members {
                let mean: f64 = members
                    .iter()
                    .filter(|&&j| j != i)
                    .map(|&j| overlap_coefficient(&sets[i], &sets[j]))
                    .sum::<f64>()
                    / (members.len() - 1) as f64;
                if mean >= self.strong_threshold {
                    kept.push(i);
                } else {
                    labels[i] = next;
                    next += 1;
                }
            }
            if !kept.is_empty() {
                for &i in &kept {
                    labels[i] = next;
                }
                next += 1;
            }
        }
        ClusterOutput::from_labels(labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clustering::metrics::accuracy;
    use datagen::corpus::{
        domain_corpus, entity_corpus, schema_corpus, DomainCorpusConfig, EntityCorpusConfig,
        SchemaCorpusConfig,
    };
    use tensor::random::rng;

    #[test]
    fn similarity_primitives() {
        let a: HashSet<String> = ["x", "y", "z"].iter().map(|s| s.to_string()).collect();
        let b: HashSet<String> = ["x", "y"].iter().map(|s| s.to_string()).collect();
        assert!((jaccard(&a, &b) - 2.0 / 3.0).abs() < 1e-12);
        assert!((dice(&a, &b) - 4.0 / 5.0).abs() < 1e-12);
        assert!((overlap_coefficient(&a, &b) - 1.0).abs() < 1e-12);
        assert!((set_cosine(&a, &b) - 2.0 / 6.0_f64.sqrt()).abs() < 1e-12);
        let empty: HashSet<String> = HashSet::new();
        assert_eq!(jaccard(&empty, &empty), 0.0);
    }

    #[test]
    fn d3l_clusters_schema_corpus() {
        let corpus = schema_corpus(
            &SchemaCorpusConfig {
                n_tables: 60,
                n_types: 5,
                shared_attr_fraction: 0.1,
                ..Default::default()
            },
            &mut rng(1),
        );
        let out = D3l::default().fit(&corpus.texts(), 5, &mut rng(2));
        let acc = accuracy(&out.labels, &corpus.labels());
        assert!(acc > 0.5, "D3L acc = {acc}");
    }

    #[test]
    fn jedai_recovers_duplicates() {
        let corpus = entity_corpus(
            &EntityCorpusConfig { n_entities: 25, noise: 0.3, ..Default::default() },
            &mut rng(3),
        );
        let out = Jedai::new(JedaiMetric::Jaccard, 0.5).fit(&corpus.texts());
        let acc = accuracy(&out.labels, &corpus.labels());
        assert!(acc > 0.5, "JedAI acc = {acc}");
    }

    #[test]
    fn jedai_metrics_all_run() {
        let corpus = entity_corpus(
            &EntityCorpusConfig { n_entities: 10, ..Default::default() },
            &mut rng(4),
        );
        for metric in [JedaiMetric::Jaccard, JedaiMetric::Cosine, JedaiMetric::Dice] {
            let out = Jedai::new(metric, 0.5).fit(&corpus.texts());
            assert_eq!(out.labels.len(), corpus.items.len());
        }
    }

    #[test]
    fn d4_groups_columns_by_domain() {
        let corpus = domain_corpus(
            &DomainCorpusConfig {
                n_columns: 60,
                n_domains: 6,
                vocab_overlap: 0.0,
                values_per_column: (8, 15),
                ..Default::default()
            },
            &mut rng(5),
        );
        let out = D4::default().fit(&corpus.texts());
        let acc = accuracy(&out.labels, &corpus.labels());
        assert!(acc > 0.45, "D4 acc = {acc}");
    }

    #[test]
    fn starmie_produces_reasonable_groups() {
        let corpus = schema_corpus(
            &SchemaCorpusConfig {
                n_tables: 40,
                n_types: 4,
                shared_attr_fraction: 0.1,
                ..Default::default()
            },
            &mut rng(6),
        );
        let starmie = Starmie { epochs: 10, ..Default::default() };
        let out = starmie.fit(&corpus.texts(), 4, &mut rng(7));
        assert_eq!(out.labels.len(), 40);
        let acc = accuracy(&out.labels, &corpus.labels());
        assert!(acc > 0.35, "Starmie acc = {acc}");
    }
}
