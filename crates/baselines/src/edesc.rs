//! EDESC — Efficient Deep Embedded Subspace Clustering (Cai et al.,
//! CVPR '22).
//!
//! Compact reimplementation: a pretrained autoencoder plus *learnable
//! subspace bases* `D_j` (one `latent × r` block per cluster). Soft
//! assignments come from the squared projection norm of each latent point
//! onto each subspace (with the η-regularization of the original), refined
//! with the standard KL self-supervision, plus reconstruction and a
//! basis-orthogonality penalty `‖DᵀD − I‖²`.

use autograd::{Tape, Var};
use nn::loss::{kl_div, kl_div_value, mse};
use nn::{Adam, Autoencoder, Params};
use rand::rngs::StdRng;
use tabledc::target_distribution;
use tensor::random::xavier_uniform;
use tensor::Matrix;

use crate::common::{train_step, ClusterOutput, DeepConfig, EpochObserver};

/// EDESC model configuration.
#[derive(Debug, Clone)]
pub struct Edesc {
    /// Shared deep-baseline hyper-parameters.
    pub config: DeepConfig,
    /// Dimension of each cluster's subspace.
    pub subspace_dim: usize,
    /// η regularizer of the original's soft assignment.
    pub eta: f64,
}

impl Default for Edesc {
    fn default() -> Self {
        Self { config: DeepConfig::default(), subspace_dim: 4, eta: 1.0 }
    }
}

impl Edesc {
    /// Creates EDESC with the given shared configuration.
    pub fn new(config: DeepConfig) -> Self {
        Self { config, subspace_dim: 4, eta: 1.0 }
    }

    /// Trains EDESC on the rows of `x` into `k` clusters.
    pub fn fit(&self, x: &Matrix, k: usize, rng: &mut StdRng) -> ClusterOutput {
        // Standardize features in front of the encoder, matching TableDC's
        // preprocessing so the comparison isolates the objectives.
        let x = &x.standardize_cols();
        let cfg = &self.config;
        let r = self.subspace_dim;

        let mut params = Params::new();
        let dims = cfg.encoder_dims(x.cols());
        let ae = Autoencoder::new(&mut params, &dims, rng);
        ae.pretrain(&mut params, x, cfg.pretrain_epochs, cfg.lr);

        // Subspace bases: latent × (k·r), block j = basis of cluster j.
        let bases = params.register(xavier_uniform(cfg.latent_dim, k * r, rng));

        let mut adam = Adam::new(cfg.lr);
        let mut out = ClusterOutput::from_labels(vec![0; x.rows()]);
        let mut final_s = Matrix::zeros(x.rows(), k);

        let mut observer = EpochObserver::new("edesc", k);
        for epoch in 0..cfg.epochs {
            let ae_ref = &ae;
            let eta = self.eta;
            let latent = cfg.latent_dim;
            let mut s_val = Matrix::zeros(1, 1);
            let mut re_val = 0.0;
            let mut kl_val = 0.0;
            let loss_val = train_step(&mut params, &mut adam, |t, bound| {
                let xv = t.constant(x.clone());
                let z = ae_ref.encode(bound, xv);
                let recon = ae_ref.decode(bound, z);
                let d = bound.var(bases);

                // Projections: P = z·D (n × k·r); per-cluster energy
                // e_ij = Σ_{b in block j} P²; assignment
                // s_ij ∝ (e_ij + η·r) (η-regularized, then normalized).
                let proj = t.matmul(z, d);
                let energy = block_sums(t, t.square(proj), k, r);
                let s_raw = t.add_scalar(energy, eta * r as f64);
                let sums = t.add_scalar(t.row_sums(s_raw), 1e-12);
                let s = t.div_col_broadcast(s_raw, sums);
                s_val = t.value(s);

                let p = target_distribution(&s_val);
                let kl = kl_div(t, &p, s);
                let re = mse(t, xv, recon);

                // Orthogonality of the stacked bases: DᵀD ≈ I.
                let dtd = t.matmul(t.transpose(d), d);
                let eye = t.constant(Matrix::identity(k * r));
                let ortho = t.mean(t.square(t.sub(dtd, eye)));

                re_val = t.value(re)[(0, 0)];
                kl_val = kl_div_value(&p, &s_val);
                let _ = latent;
                t.add(t.add(re, t.scale(kl, 0.1)), t.scale(ortho, 1.0))
            });
            if observer.observe(epoch, re_val, kl_val, loss_val, &s_val).should_abort() {
                break;
            }
            out.re_loss.push(re_val);
            out.kl_pq.push(kl_val);
            final_s = s_val;
        }

        out.labels = final_s.argmax_rows();
        let (health, convergence) = observer.finish();
        out.health = health;
        out.convergence = convergence;
        out
    }
}

/// Sums each row of an `n × (k·r)` matrix over `k` contiguous blocks of
/// width `r`, producing `n × k` — implemented as a constant block-sum
/// matmul so it differentiates for free.
fn block_sums(t: &Tape, v: Var, k: usize, r: usize) -> Var {
    let mut pool = Matrix::zeros(k * r, k);
    for j in 0..k {
        for b in 0..r {
            pool[(j * r + b, j)] = 1.0;
        }
    }
    let pool_v = t.constant(pool);
    t.matmul(v, pool_v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clustering::metrics::adjusted_rand_index;
    use datagen::{generate_mixture, MixtureConfig};
    use tensor::random::rng;

    #[test]
    fn block_sums_pool_correctly() {
        let t = Tape::new();
        let v = t.constant(Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]));
        let s = block_sums(&t, v, 2, 2);
        assert_eq!(t.value(s), Matrix::from_rows(&[&[3.0, 7.0]]));
    }

    #[test]
    fn edesc_clusters_separated_mixture() {
        let g = generate_mixture(
            &MixtureConfig { n: 90, k: 3, dim: 12, separation: 4.0, ..Default::default() },
            &mut rng(1),
        );
        let cfg = DeepConfig { latent_dim: 8, pretrain_epochs: 10, epochs: 30, ..Default::default() };
        let out = Edesc::new(cfg).fit(&g.x, 3, &mut rng(2));
        let ari = adjusted_rand_index(&out.labels, &g.labels);
        assert!(ari > 0.3, "ARI = {ari}");
    }

    #[test]
    fn edesc_assignments_cover_labels() {
        let g = generate_mixture(
            &MixtureConfig { n: 30, k: 2, dim: 6, ..Default::default() },
            &mut rng(3),
        );
        let cfg = DeepConfig { latent_dim: 4, pretrain_epochs: 4, epochs: 10, ..Default::default() };
        let out = Edesc::new(cfg).fit(&g.x, 2, &mut rng(4));
        assert_eq!(out.labels.len(), 30);
        assert!(out.labels.iter().all(|&l| l < 2));
    }
}
