//! # baselines — the methods TableDC is evaluated against
//!
//! Deep-clustering baselines (§4.1.2) reimplemented on the shared
//! `nn`/`graph` substrate — [`sdcn`], [`dfcn`], [`dcrn`], [`edesc`],
//! [`shgp`] — and the bespoke task-specific comparators of §4.7 —
//! [`bespoke::D3l`], [`bespoke::Starmie`], [`bespoke::Jedai`],
//! [`bespoke::D4`]. Standard-clustering baselines (K-means, DBSCAN, Birch)
//! live in `crates/clustering`.
//!
//! Per-method simplifications relative to the reference implementations are
//! documented in DESIGN.md §1; each keeps the original's loss family and
//! architecture shape so the comparison measures the same algorithmic
//! trade-offs the paper measures.

pub mod bespoke;
pub mod common;
pub mod dcrn;
pub mod dfcn;
pub mod edesc;
pub mod sdcn;
pub mod shgp;

pub use bespoke::{D3l, D4, Jedai, JedaiMetric, Starmie};
pub use common::{ClusterOutput, DeepConfig, EpochObserver};
pub use dcrn::Dcrn;
pub use dfcn::Dfcn;
pub use edesc::Edesc;
pub use sdcn::Sdcn;
pub use shgp::Shgp;
