//! Numerical linear algebra: Cholesky decomposition, triangular solves, and
//! SPD inversion.
//!
//! TableDC (paper Eq. 4–5) inverts its covariance matrix Σ via the Cholesky
//! factorization `Σ = L·Lᵀ` and two triangular solves; this module provides
//! exactly that machinery for *general* SPD matrices, even though the paper's
//! default Σ is a scaled identity (for which the whitening reduces to a
//! scalar multiply — see [`crate::distance`]). Keeping the general path lets
//! the library support empirical (shrunk) covariance matrices as an ablation.

use crate::matrix::Matrix;

/// Errors from numerically fallible linear-algebra routines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// The input matrix was not square.
    NotSquare { rows: usize, cols: usize },
    /// Cholesky failed: the matrix is not (numerically) positive definite.
    /// Contains the pivot index where the failure occurred.
    NotPositiveDefinite { pivot: usize },
    /// A triangular solve encountered a (near-)zero diagonal element.
    SingularTriangular { index: usize },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix is not square ({rows}x{cols})")
            }
            LinalgError::NotPositiveDefinite { pivot } => {
                write!(f, "matrix is not positive definite (failure at pivot {pivot})")
            }
            LinalgError::SingularTriangular { index } => {
                write!(f, "triangular matrix is singular at diagonal index {index}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}

/// Computes the Cholesky factor `L` of an SPD matrix `A = L·Lᵀ`
/// (paper Eq. 4). `L` is lower-triangular with strictly positive diagonal.
///
/// # Errors
/// [`LinalgError::NotSquare`] for non-square input;
/// [`LinalgError::NotPositiveDefinite`] if a pivot is not strictly positive
/// (the matrix is indefinite, semi-definite, or too ill-conditioned).
pub fn cholesky(a: &Matrix) -> Result<Matrix, LinalgError> {
    if !a.is_square() {
        return Err(LinalgError::NotSquare { rows: a.rows(), cols: a.cols() });
    }
    let n = a.rows();
    let mut l = Matrix::zeros(n, n);
    for j in 0..n {
        // Diagonal element: sqrt(A[j,j] - Σ_{k<j} L[j,k]²)
        let mut d = a[(j, j)];
        for k in 0..j {
            d -= l[(j, k)] * l[(j, k)];
        }
        if d <= 0.0 || !d.is_finite() {
            return Err(LinalgError::NotPositiveDefinite { pivot: j });
        }
        let diag = d.sqrt();
        l[(j, j)] = diag;
        // Column below the diagonal.
        for i in (j + 1)..n {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= l[(i, k)] * l[(j, k)];
            }
            l[(i, j)] = s / diag;
        }
    }
    Ok(l)
}

/// Solves `L·X = B` for lower-triangular `L` by forward substitution.
/// `B` may have multiple right-hand-side columns.
///
/// # Errors
/// [`LinalgError::SingularTriangular`] on a zero diagonal.
pub fn solve_lower(l: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
    if !l.is_square() {
        return Err(LinalgError::NotSquare { rows: l.rows(), cols: l.cols() });
    }
    assert_eq!(l.rows(), b.rows(), "solve_lower: dimension mismatch");
    let n = l.rows();
    let m = b.cols();
    let mut x = b.clone();
    for i in 0..n {
        let diag = l[(i, i)];
        if diag == 0.0 {
            return Err(LinalgError::SingularTriangular { index: i });
        }
        for c in 0..m {
            let mut s = x[(i, c)];
            for k in 0..i {
                s -= l[(i, k)] * x[(k, c)];
            }
            x[(i, c)] = s / diag;
        }
    }
    Ok(x)
}

/// Solves `U·X = B` for upper-triangular `U` by backward substitution.
///
/// # Errors
/// [`LinalgError::SingularTriangular`] on a zero diagonal.
pub fn solve_upper(u: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
    if !u.is_square() {
        return Err(LinalgError::NotSquare { rows: u.rows(), cols: u.cols() });
    }
    assert_eq!(u.rows(), b.rows(), "solve_upper: dimension mismatch");
    let n = u.rows();
    let m = b.cols();
    let mut x = b.clone();
    for i in (0..n).rev() {
        let diag = u[(i, i)];
        if diag == 0.0 {
            return Err(LinalgError::SingularTriangular { index: i });
        }
        for c in 0..m {
            let mut s = x[(i, c)];
            for k in (i + 1)..n {
                s -= u[(i, k)] * x[(k, c)];
            }
            x[(i, c)] = s / diag;
        }
    }
    Ok(x)
}

/// Inverts an SPD matrix via Cholesky: `A⁻¹ = L⁻ᵀ·L⁻¹` (paper Eq. 5).
///
/// # Errors
/// Propagates Cholesky / solve failures.
pub fn spd_inverse(a: &Matrix) -> Result<Matrix, LinalgError> {
    let l = cholesky(a)?;
    let n = a.rows();
    // Solve L·Y = I, then Lᵀ·X = Y.
    let y = solve_lower(&l, &Matrix::identity(n))?;
    solve_upper(&l.transpose(), &y)
}

/// Log-determinant of an SPD matrix via Cholesky:
/// `log det A = 2 Σ log L[i,i]`.
///
/// # Errors
/// Propagates Cholesky failure.
pub fn spd_log_det(a: &Matrix) -> Result<f64, LinalgError> {
    let l = cholesky(a)?;
    Ok((0..a.rows()).map(|i| l[(i, i)].ln()).sum::<f64>() * 2.0)
}

/// Empirical covariance of the rows of `x` (features are columns), with
/// optional shrinkage towards the scaled identity:
/// `Σ = (1-λ)·S + λ·(tr(S)/d)·I`.
///
/// Shrinkage keeps Σ positive definite when `n ≤ d` or under
/// multicollinearity — the failure mode the paper's scaled identity avoids.
pub fn empirical_covariance(x: &Matrix, shrinkage: f64) -> Matrix {
    let (n, d) = x.shape();
    assert!((0.0..=1.0).contains(&shrinkage), "shrinkage must be in [0,1]");
    let means = x.col_means();
    let mut s = Matrix::zeros(d, d);
    for row in x.row_iter() {
        for i in 0..d {
            let di = row[i] - means[i];
            for j in i..d {
                let dj = row[j] - means[j];
                s[(i, j)] += di * dj;
            }
        }
    }
    let denom = (n.max(2) - 1) as f64;
    for i in 0..d {
        for j in i..d {
            let v = s[(i, j)] / denom;
            s[(i, j)] = v;
            s[(j, i)] = v;
        }
    }
    if shrinkage > 0.0 {
        let trace_mean = (0..d).map(|i| s[(i, i)]).sum::<f64>() / d.max(1) as f64;
        for i in 0..d {
            for j in 0..d {
                s[(i, j)] *= 1.0 - shrinkage;
            }
            s[(i, i)] += shrinkage * trace_mean;
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = Bᵀ·B + I is SPD for any B.
        let b = Matrix::from_rows(&[&[1.0, 2.0, 0.0], &[0.5, -1.0, 3.0], &[2.0, 0.0, 1.0]]);
        let mut a = b.transpose().matmul(&b);
        for i in 0..3 {
            a[(i, i)] += 1.0;
        }
        a
    }

    #[test]
    fn cholesky_reconstructs_input() {
        let a = spd3();
        let l = cholesky(&a).unwrap();
        let recon = l.matmul(&l.transpose());
        assert!(recon.max_abs_diff(&a) < 1e-10);
        // Lower triangular: everything above the diagonal is zero.
        for i in 0..3 {
            for j in (i + 1)..3 {
                assert_eq!(l[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn cholesky_of_scaled_identity_is_sqrt_delta() {
        let sigma = Matrix::scaled_identity(5, 0.01);
        let l = cholesky(&sigma).unwrap();
        for i in 0..5 {
            assert!((l[(i, i)] - 0.1).abs() < 1e-15);
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        assert_eq!(cholesky(&a), Err(LinalgError::NotPositiveDefinite { pivot: 1 }));
    }

    #[test]
    fn cholesky_rejects_non_square() {
        let a = Matrix::zeros(2, 3);
        assert_eq!(cholesky(&a), Err(LinalgError::NotSquare { rows: 2, cols: 3 }));
    }

    #[test]
    fn triangular_solves_round_trip() {
        let a = spd3();
        let l = cholesky(&a).unwrap();
        let b = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let y = solve_lower(&l, &b).unwrap();
        assert!(l.matmul(&y).max_abs_diff(&b) < 1e-12);
        let u = l.transpose();
        let x = solve_upper(&u, &b).unwrap();
        assert!(u.matmul(&x).max_abs_diff(&b) < 1e-12);
    }

    #[test]
    fn spd_inverse_gives_identity() {
        let a = spd3();
        let inv = spd_inverse(&a).unwrap();
        let eye = a.matmul(&inv);
        assert!(eye.max_abs_diff(&Matrix::identity(3)) < 1e-10);
    }

    #[test]
    fn spd_inverse_of_scaled_identity() {
        // (δI)⁻¹ = (1/δ)I — the exact quantity TableDC's Mahalanobis uses.
        let inv = spd_inverse(&Matrix::scaled_identity(4, 0.01)).unwrap();
        assert!(inv.max_abs_diff(&Matrix::scaled_identity(4, 100.0)) < 1e-9);
    }

    #[test]
    fn log_det_matches_known_value() {
        // det(δI_n) = δⁿ.
        let ld = spd_log_det(&Matrix::scaled_identity(3, 2.0)).unwrap();
        assert!((ld - 3.0 * 2.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn empirical_covariance_diag_matches_variance() {
        let x = Matrix::from_rows(&[&[1.0, 0.0], &[3.0, 0.0], &[5.0, 0.0]]);
        let s = empirical_covariance(&x, 0.0);
        assert!((s[(0, 0)] - 4.0).abs() < 1e-12); // sample variance of {1,3,5}
        assert_eq!(s[(1, 1)], 0.0);
        assert_eq!(s[(0, 1)], 0.0);
    }

    #[test]
    fn shrinkage_restores_positive_definiteness() {
        // A constant feature gives an exactly-zero variance row/column, so
        // the raw covariance is singular; shrinkage must restore SPD.
        let x = Matrix::from_rows(&[&[0.0, 0.0], &[2.0, 0.0]]);
        let raw = empirical_covariance(&x, 0.0);
        assert!(cholesky(&raw).is_err());
        let shrunk = empirical_covariance(&x, 0.5);
        assert!(cholesky(&shrunk).is_ok());
    }

    #[test]
    fn covariance_is_symmetric() {
        let x = Matrix::from_rows(&[&[1.0, 2.0, -1.0], &[0.0, 1.0, 4.0], &[2.0, -3.0, 0.5]]);
        let s = empirical_covariance(&x, 0.1);
        assert!(s.max_abs_diff(&s.transpose()) < 1e-14);
    }
}
