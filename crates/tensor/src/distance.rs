//! Pairwise distance kernels between two sets of points (rows of matrices).
//!
//! These are the geometric primitives of the whole repository: every
//! clustering algorithm and every deep-clustering similarity kernel reduces
//! to one of these `N×K` distance matrices between data points and cluster
//! centers.

use crate::linalg::{cholesky, solve_lower, LinalgError};
use crate::matrix::Matrix;

/// Pairwise **squared Euclidean** distances between the rows of `x` (`n×d`)
/// and the rows of `y` (`k×d`), returned as an `n×k` matrix.
///
/// Uses the expansion `‖a−b‖² = ‖a‖² + ‖b‖² − 2·a·b` so the dominant cost is
/// a single matmul; tiny negative values from cancellation are clamped to 0.
/// Runs in parallel row blocks on the [`runtime::global`] pool with
/// bit-identical results for every thread count.
///
/// # Panics
/// Panics if the feature dimensions differ.
pub fn sq_euclidean_cdist(x: &Matrix, y: &Matrix) -> Matrix {
    crate::par::sq_euclidean_cdist(runtime::global(), x, y)
}

/// Pairwise Euclidean distances (the square root of
/// [`sq_euclidean_cdist`]).
pub fn euclidean_cdist(x: &Matrix, y: &Matrix) -> Matrix {
    let mut d = sq_euclidean_cdist(x, y);
    d.map_inplace(f64::sqrt);
    d
}

/// Pairwise **cosine distances** `1 − cos(a, b)` between rows of `x` and
/// rows of `y`, in parallel row blocks. Zero vectors get distance 1 to
/// everything (cosine undefined → treated as orthogonal).
pub fn cosine_cdist(x: &Matrix, y: &Matrix) -> Matrix {
    crate::par::cosine_cdist(runtime::global(), x, y)
}

/// Pairwise **squared Mahalanobis** distances with covariance Σ, computed
/// via Cholesky whitening exactly as in the paper (Eq. 4–6):
/// factor `Σ = L·Lᵀ`, whiten both point sets with `L⁻¹` (one triangular
/// solve each), then take squared Euclidean distances in the whitened space:
///
/// `D_M²(z, c) = (z−c)ᵀ Σ⁻¹ (z−c) = ‖L⁻¹(z−c)‖²`.
///
/// # Errors
/// Propagates Cholesky/solve failures for non-SPD Σ.
pub fn sq_mahalanobis_cdist(x: &Matrix, y: &Matrix, sigma: &Matrix) -> Result<Matrix, LinalgError> {
    assert_eq!(x.cols(), y.cols(), "sq_mahalanobis_cdist: feature dims differ");
    assert_eq!(
        sigma.rows(),
        x.cols(),
        "sq_mahalanobis_cdist: Σ is {}x{} but features are {}",
        sigma.rows(),
        sigma.cols(),
        x.cols()
    );
    let l = cholesky(sigma)?;
    // Whiten: W = (L⁻¹·Xᵀ)ᵀ, i.e. solve L·W̃ = Xᵀ.
    let xw = solve_lower(&l, &x.transpose())?.transpose();
    let yw = solve_lower(&l, &y.transpose())?.transpose();
    Ok(sq_euclidean_cdist(&xw, &yw))
}

/// Squared Mahalanobis distances for the **scaled-identity** covariance
/// `Σ = δ·I` (the TableDC default, paper Eq. 3), which reduces to
/// `‖z−c‖²/δ` — no factorization needed.
///
/// # Panics
/// Panics if `delta <= 0`.
pub fn sq_mahalanobis_scaled_identity(x: &Matrix, y: &Matrix, delta: f64) -> Matrix {
    assert!(delta > 0.0, "sq_mahalanobis_scaled_identity: delta must be positive, got {delta}");
    let mut d = sq_euclidean_cdist(x, y);
    let inv = 1.0 / delta;
    d.map_inplace(|v| v * inv);
    d
}

/// Squared Euclidean distance between two vectors.
///
/// # Panics
/// Panics if lengths differ.
pub fn sq_euclidean(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "sq_euclidean: lengths differ");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Euclidean distance between two vectors.
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    sq_euclidean(a, b).sqrt()
}

/// Cosine similarity between two vectors (0 when either has zero norm).
pub fn cosine_similarity(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "cosine_similarity: lengths differ");
    let dot: f64 = a.iter().zip(b).map(|(x, y)| x * y).sum();
    let na: f64 = a.iter().map(|x| x * x).sum::<f64>().sqrt();
    let nb: f64 = b.iter().map(|x| x * x).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sq_euclidean_cdist_matches_naive() {
        let x = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0], &[-2.0, 3.0]]);
        let y = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 4.0]]);
        let d = sq_euclidean_cdist(&x, &y);
        for i in 0..3 {
            for j in 0..2 {
                let naive = sq_euclidean(x.row(i), y.row(j));
                assert!((d[(i, j)] - naive).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn self_distance_is_zero() {
        let x = Matrix::from_rows(&[&[1.5, -2.5, 3.0]]);
        let d = sq_euclidean_cdist(&x, &x);
        assert_eq!(d[(0, 0)], 0.0);
    }

    #[test]
    fn cosine_cdist_known_values() {
        let x = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 0.0]]);
        let y = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[-1.0, 0.0]]);
        let d = cosine_cdist(&x, &y);
        assert!((d[(0, 0)] - 0.0).abs() < 1e-12); // parallel
        assert!((d[(0, 1)] - 1.0).abs() < 1e-12); // orthogonal
        assert!((d[(0, 2)] - 2.0).abs() < 1e-12); // anti-parallel
        assert!((d[(1, 0)] - 1.0).abs() < 1e-12); // zero vector → distance 1
    }

    #[test]
    fn mahalanobis_identity_equals_euclidean() {
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, -1.0]]);
        let y = Matrix::from_rows(&[&[0.0, 0.0]]);
        let m = sq_mahalanobis_cdist(&x, &y, &Matrix::identity(2)).unwrap();
        let e = sq_euclidean_cdist(&x, &y);
        assert!(m.max_abs_diff(&e) < 1e-10);
    }

    #[test]
    fn mahalanobis_scaled_identity_fast_path_matches_general() {
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[0.1, -0.2, 0.3]]);
        let y = Matrix::from_rows(&[&[0.0, 0.0, 0.0], &[1.0, 1.0, 1.0]]);
        let delta = 0.01;
        let general =
            sq_mahalanobis_cdist(&x, &y, &Matrix::scaled_identity(3, delta)).unwrap();
        let fast = sq_mahalanobis_scaled_identity(&x, &y, delta);
        assert!(general.max_abs_diff(&fast) < 1e-6);
    }

    #[test]
    fn mahalanobis_downweights_high_variance_dimension() {
        // Σ with large variance in dim 0: distance along dim 0 should count
        // less than the same displacement along dim 1.
        let sigma = Matrix::from_rows(&[&[100.0, 0.0], &[0.0, 1.0]]);
        let origin = Matrix::from_rows(&[&[0.0, 0.0]]);
        let along0 = Matrix::from_rows(&[&[1.0, 0.0]]);
        let along1 = Matrix::from_rows(&[&[0.0, 1.0]]);
        let d0 = sq_mahalanobis_cdist(&along0, &origin, &sigma).unwrap()[(0, 0)];
        let d1 = sq_mahalanobis_cdist(&along1, &origin, &sigma).unwrap()[(0, 0)];
        assert!(d0 < d1, "high-variance axis must contribute less ({d0} vs {d1})");
        assert!((d0 - 0.01).abs() < 1e-12);
        assert!((d1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mahalanobis_accounts_for_correlation() {
        // Strong positive correlation: a displacement *along* the correlation
        // direction is "cheaper" than one against it.
        let sigma = Matrix::from_rows(&[&[1.0, 0.9], &[0.9, 1.0]]);
        let origin = Matrix::from_rows(&[&[0.0, 0.0]]);
        let with = Matrix::from_rows(&[&[1.0, 1.0]]);
        let against = Matrix::from_rows(&[&[1.0, -1.0]]);
        let dw = sq_mahalanobis_cdist(&with, &origin, &sigma).unwrap()[(0, 0)];
        let da = sq_mahalanobis_cdist(&against, &origin, &sigma).unwrap()[(0, 0)];
        assert!(dw < da, "correlated direction should be closer ({dw} vs {da})");
    }

    #[test]
    fn mahalanobis_rejects_indefinite_sigma() {
        let x = Matrix::zeros(1, 2);
        let bad = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert!(sq_mahalanobis_cdist(&x, &x, &bad).is_err());
    }

    #[test]
    fn vector_helpers() {
        assert_eq!(sq_euclidean(&[0.0, 3.0], &[4.0, 0.0]), 25.0);
        assert_eq!(euclidean(&[0.0, 3.0], &[4.0, 0.0]), 5.0);
        assert!((cosine_similarity(&[1.0, 0.0], &[1.0, 1.0]) - 1.0 / 2f64.sqrt()).abs() < 1e-12);
        assert_eq!(cosine_similarity(&[0.0, 0.0], &[1.0, 1.0]), 0.0);
    }
}
