//! Seeded random matrix construction.
//!
//! Every stochastic component in the workspace (weight init, data
//! generation, sampling) threads an explicit [`rand::rngs::StdRng`] so whole
//! experiments are reproducible from a single seed — a hard requirement for
//! the regeneration harness in `crates/bench`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::matrix::Matrix;

/// Creates a deterministically seeded RNG.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Standard-normal sample via Box–Muller. `rand 0.8` without `rand_distr`
/// only gives uniforms, so we transform two of them.
pub fn randn_scalar(rng: &mut StdRng) -> f64 {
    // Guard against ln(0).
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// `rows×cols` matrix of i.i.d. `N(0, 1)` samples.
pub fn randn(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
    Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| randn_scalar(rng)).collect())
}

/// `rows×cols` matrix of i.i.d. `U(lo, hi)` samples.
pub fn uniform(rows: usize, cols: usize, lo: f64, hi: f64, rng: &mut StdRng) -> Matrix {
    assert!(lo < hi, "uniform: empty range [{lo}, {hi})");
    Matrix::from_vec(rows, cols, (0..rows * cols).map(|_| rng.gen_range(lo..hi)).collect())
}

/// Xavier/Glorot-uniform initialization for a `fan_in → fan_out` linear
/// layer: `U(−a, a)` with `a = sqrt(6 / (fan_in + fan_out))`. This is the
/// standard initialization for the sigmoid/ReLU autoencoders used by all
/// deep-clustering methods here.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Matrix {
    let a = (6.0 / (fan_in + fan_out) as f64).sqrt();
    uniform(fan_in, fan_out, -a, a, rng)
}

/// Kaiming/He-normal initialization `N(0, 2/fan_in)` — better suited to deep
/// ReLU stacks.
pub fn kaiming_normal(fan_in: usize, fan_out: usize, rng: &mut StdRng) -> Matrix {
    let std = (2.0 / fan_in as f64).sqrt();
    let mut m = randn(fan_in, fan_out, rng);
    m.map_inplace(|x| x * std);
    m
}

/// Fisher–Yates shuffle of `0..n`, used for minibatching and subsampling.
pub fn permutation(n: usize, rng: &mut StdRng) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        idx.swap(i, j);
    }
    idx
}

/// Samples `k` distinct indices from `0..n` (reservoir-free: shuffles a
/// prefix). Panics if `k > n`.
pub fn sample_without_replacement(n: usize, k: usize, rng: &mut StdRng) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} distinct items from {n}");
    let mut idx: Vec<usize> = (0..n).collect();
    for i in 0..k {
        let j = rng.gen_range(i..n);
        idx.swap(i, j);
    }
    idx.truncate(k);
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let a = randn(3, 4, &mut rng(7));
        let b = randn(3, 4, &mut rng(7));
        assert_eq!(a, b);
        let c = randn(3, 4, &mut rng(8));
        assert_ne!(a, c);
    }

    #[test]
    fn randn_moments_are_plausible() {
        let m = randn(200, 50, &mut rng(42));
        let mean = m.mean();
        let var = m.map(|x| (x - mean) * (x - mean)).mean();
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.05, "variance {var} too far from 1");
    }

    #[test]
    fn uniform_respects_bounds() {
        let m = uniform(50, 50, -2.0, 3.0, &mut rng(1));
        assert!(m.as_slice().iter().all(|&x| (-2.0..3.0).contains(&x)));
    }

    #[test]
    fn xavier_bound_is_correct() {
        let m = xavier_uniform(100, 44, &mut rng(5));
        let a = (6.0 / 144.0_f64).sqrt();
        assert!(m.as_slice().iter().all(|&x| x.abs() <= a));
    }

    #[test]
    fn permutation_is_a_bijection() {
        let mut p = permutation(100, &mut rng(3));
        p.sort_unstable();
        assert_eq!(p, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn sampling_yields_distinct_indices() {
        let s = sample_without_replacement(50, 20, &mut rng(9));
        assert_eq!(s.len(), 20);
        let mut t = s.clone();
        t.sort_unstable();
        t.dedup();
        assert_eq!(t.len(), 20);
        assert!(t.iter().all(|&i| i < 50));
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn oversampling_panics() {
        let _ = sample_without_replacement(3, 4, &mut rng(0));
    }
}
