//! Dense, row-major, `f64` matrix — the single numeric container used by
//! every crate in the workspace.
//!
//! The representation is deliberately simple: a `Vec<f64>` of length
//! `rows * cols`, row-major. All deep-clustering workloads in this
//! repository are dense 2-D embedding matrices, so there is no need for
//! strides, views, or higher ranks; keeping the layout flat and contiguous
//! makes the hot kernels (matmul, pairwise distances) cache-friendly and
//! easy for LLVM to vectorize.

use std::fmt;
use std::ops::{Add, Div, Index, IndexMut, Mul, Neg, Sub};

/// A dense row-major matrix of `f64`.
///
/// Element `(i, j)` lives at `data[i * cols + j]`. Shapes are validated on
/// construction; binary operations panic with a descriptive message on shape
/// mismatch (a programming error, not a recoverable condition), while
/// numerically fallible routines such as Cholesky live in
/// [`crate::linalg`] and return [`Result`].
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "Matrix::from_vec: buffer length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { rows, cols, data }
    }

    /// Creates a matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a matrix of ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![1.0; rows * cols] }
    }

    /// Creates a matrix where every element is `value`.
    pub fn full(rows: usize, cols: usize, value: f64) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates an `n × n` scaled identity `delta · I`, as used for the
    /// TableDC covariance matrix (paper Eq. 3).
    pub fn scaled_identity(n: usize, delta: f64) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = delta;
        }
        m
    }

    /// Builds a matrix from nested row slices. Intended for tests and small
    /// literals.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |row| row.len());
        let mut data = Vec::with_capacity(r * c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "Matrix::from_rows: row {i} has length {} != {c}", row.len());
            data.extend_from_slice(row);
        }
        Self::from_vec(r, c, data)
    }

    /// Builds a matrix by evaluating `f(i, j)` for every element.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self::from_vec(rows, cols, data)
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the matrix has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// True if the matrix is square.
    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Immutable view of the flat row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the flat row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning the flat buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Immutable view of row `i`.
    ///
    /// # Panics
    /// Panics if `i >= rows`.
    #[inline]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of bounds for {} rows", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Mutable view of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> &mut [f64] {
        assert!(i < self.rows, "row index {i} out of bounds for {} rows", self.rows);
        &mut self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a fresh `Vec`.
    pub fn col(&self, j: usize) -> Vec<f64> {
        assert!(j < self.cols, "column index {j} out of bounds for {} columns", self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Iterator over row slices.
    pub fn row_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Returns a new matrix containing only the rows whose indices appear in
    /// `indices`, in order. Indices may repeat.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        out
    }

    /// Stacks `rows` (each of equal length) into a matrix.
    pub fn from_row_vecs(rows: &[Vec<f64>]) -> Matrix {
        let r = rows.len();
        let c = rows.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(r * c);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), c, "from_row_vecs: row {i} has length {} != {c}", row.len());
            data.extend_from_slice(row);
        }
        Matrix::from_vec(r, c, data)
    }

    /// Applies `f` elementwise, returning a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` elementwise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shaped matrices elementwise with `f`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn zip_map(&self, other: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
        self.assert_same_shape(other, "zip_map");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect(),
        }
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[(j, i)] = self[(i, j)];
            }
        }
        out
    }

    /// Matrix product `self · other`.
    ///
    /// The kernel is the classic `ikj` loop order so the innermost loop
    /// streams contiguously through both the output row and the right-hand
    /// row, which LLVM auto-vectorizes; output row blocks are computed in
    /// parallel on the [`runtime::global`] pool. Results are bit-identical
    /// for every thread count.
    ///
    /// # Panics
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        crate::par::matmul(runtime::global(), self, other)
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all elements. Returns 0 for an empty matrix.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Per-row sums as a length-`rows` vector.
    pub fn row_sums(&self) -> Vec<f64> {
        self.row_iter().map(|r| r.iter().sum()).collect()
    }

    /// Per-column sums as a length-`cols` vector.
    pub fn col_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.cols];
        for row in self.row_iter() {
            for (s, &x) in sums.iter_mut().zip(row) {
                *s += x;
            }
        }
        sums
    }

    /// Per-column means.
    pub fn col_means(&self) -> Vec<f64> {
        let n = self.rows.max(1) as f64;
        self.col_sums().into_iter().map(|s| s / n).collect()
    }

    /// Index of the maximum element in each row (ties go to the first),
    /// computed in parallel row blocks.
    pub fn argmax_rows(&self) -> Vec<usize> {
        crate::par::argmax_rows(runtime::global(), self)
    }

    /// Squared Frobenius norm.
    pub fn frobenius_sq(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum()
    }

    /// Frobenius norm.
    pub fn frobenius(&self) -> f64 {
        self.frobenius_sq().sqrt()
    }

    /// Adds `row` (length `cols`) to every row, returning a new matrix.
    /// This is the broadcast used for layer biases.
    pub fn add_row_broadcast(&self, row: &[f64]) -> Matrix {
        assert_eq!(
            row.len(),
            self.cols,
            "add_row_broadcast: vector length {} != cols {}",
            row.len(),
            self.cols
        );
        let mut out = self.clone();
        for r in out.data.chunks_exact_mut(self.cols) {
            for (x, &b) in r.iter_mut().zip(row) {
                *x += b;
            }
        }
        out
    }

    /// Elementwise maximum with a scalar (used by ReLU).
    pub fn max_scalar(&self, s: f64) -> Matrix {
        self.map(|x| x.max(s))
    }

    /// True if every element is finite.
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Maximum absolute elementwise difference between two same-shaped
    /// matrices. Useful for test assertions.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        self.assert_same_shape(other, "max_abs_diff");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Row-wise softmax: each output row is `exp(x) / Σ exp(x)`, computed
    /// with the max-subtraction trick for numerical stability, in parallel
    /// row blocks.
    pub fn softmax_rows(&self) -> Matrix {
        crate::par::softmax_rows(runtime::global(), self)
    }

    /// Normalizes each row to unit L2 norm in parallel row blocks; zero
    /// rows are left unchanged.
    pub fn normalize_rows(&self) -> Matrix {
        crate::par::normalize_rows(runtime::global(), self)
    }

    /// Standardizes each column to zero mean and unit variance (columns
    /// with zero variance are left centered only). The usual preprocessing
    /// in front of neural encoders.
    pub fn standardize_cols(&self) -> Matrix {
        let means = self.col_means();
        let mut vars = vec![0.0f64; self.cols()];
        for row in self.row_iter() {
            for (v, (&x, &m)) in vars.iter_mut().zip(row.iter().zip(&means)) {
                let d = x - m;
                *v += d * d;
            }
        }
        let n = self.rows().max(1) as f64;
        let inv_std: Vec<f64> = vars
            .iter()
            .map(|&v| {
                let std = (v / n).sqrt();
                if std > 1e-12 {
                    1.0 / std
                } else {
                    1.0
                }
            })
            .collect();
        let mut out = self.clone();
        for row in out.data.chunks_exact_mut(self.cols.max(1)) {
            for ((x, &m), &inv) in row.iter_mut().zip(&means).zip(&inv_std) {
                *x = (*x - m) * inv;
            }
        }
        out
    }

    /// Horizontal concatenation `[self | other]`.
    ///
    /// # Panics
    /// Panics if row counts differ.
    pub fn hcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "hcat: row counts differ ({} vs {})", self.rows, other.rows);
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for i in 0..self.rows {
            out.row_mut(i)[..self.cols].copy_from_slice(self.row(i));
            out.row_mut(i)[self.cols..].copy_from_slice(other.row(i));
        }
        out
    }

    /// Vertical concatenation.
    ///
    /// # Panics
    /// Panics if column counts differ.
    pub fn vcat(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vcat: column counts differ ({} vs {})", self.cols, other.cols);
        let mut data = Vec::with_capacity((self.rows + other.rows) * self.cols);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Matrix::from_vec(self.rows + other.rows, self.cols, data)
    }

    #[inline]
    fn assert_same_shape(&self, other: &Matrix, op: &str) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "{op}: shape mismatch ({}x{} vs {}x{})",
            self.rows,
            self.cols,
            other.rows,
            other.cols
        );
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols, "index ({i},{j}) out of bounds");
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        const MAX_SHOW: usize = 8;
        for i in 0..self.rows.min(MAX_SHOW) {
            write!(f, "  [")?;
            for j in 0..self.cols.min(MAX_SHOW) {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.4}", self[(i, j)])?;
            }
            if self.cols > MAX_SHOW {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > MAX_SHOW {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

macro_rules! impl_elementwise {
    ($trait:ident, $method:ident, $op:tt) => {
        impl $trait<&Matrix> for &Matrix {
            type Output = Matrix;
            fn $method(self, rhs: &Matrix) -> Matrix {
                self.zip_map(rhs, |a, b| a $op b)
            }
        }
        impl $trait<f64> for &Matrix {
            type Output = Matrix;
            fn $method(self, rhs: f64) -> Matrix {
                self.map(|a| a $op rhs)
            }
        }
    };
}

impl_elementwise!(Add, add, +);
impl_elementwise!(Sub, sub, -);
impl_elementwise!(Mul, mul, *);
impl_elementwise!(Div, div, /);

impl Neg for &Matrix {
    type Output = Matrix;
    fn neg(self) -> Matrix {
        self.map(|a| -a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_round_trips() {
        let m = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(m.shape(), (2, 3));
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 2)], 6.0);
        assert_eq!(m.into_vec(), vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_rejects_bad_length() {
        let _ = Matrix::from_vec(2, 2, vec![1.0]);
    }

    #[test]
    fn identity_is_diagonal_ones() {
        let i = Matrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn scaled_identity_matches_paper_eq3() {
        let sigma = Matrix::scaled_identity(4, 0.01);
        assert_eq!(sigma[(2, 2)], 0.01);
        assert_eq!(sigma[(0, 1)], 0.0);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[&[1.0, -2.0, 0.5], &[0.0, 3.0, 9.0]]);
        assert_eq!(a.matmul(&Matrix::identity(3)), a);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_rejects_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn elementwise_operators() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(&a + &b, Matrix::from_rows(&[&[4.0, 6.0]]));
        assert_eq!(&b - &a, Matrix::from_rows(&[&[2.0, 2.0]]));
        assert_eq!(&a * &b, Matrix::from_rows(&[&[3.0, 8.0]]));
        assert_eq!(&b / &a, Matrix::from_rows(&[&[3.0, 2.0]]));
        assert_eq!(&a * 2.0, Matrix::from_rows(&[&[2.0, 4.0]]));
        assert_eq!(-&a, Matrix::from_rows(&[&[-1.0, -2.0]]));
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserved() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[1000.0, 1000.0, 1000.0]]);
        let s = m.softmax_rows();
        for i in 0..2 {
            let sum: f64 = s.row(i).iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "row {i} sums to {sum}");
        }
        assert!(s[(0, 2)] > s[(0, 1)] && s[(0, 1)] > s[(0, 0)]);
        // Large-magnitude row must not overflow thanks to max subtraction.
        assert!(s.all_finite());
        assert!((s[(1, 0)] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn row_and_col_accessors() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        assert_eq!(m.row(1), &[3.0, 4.0]);
        assert_eq!(m.col(0), vec![1.0, 3.0, 5.0]);
        assert_eq!(m.row_sums(), vec![3.0, 7.0, 11.0]);
        assert_eq!(m.col_sums(), vec![9.0, 12.0]);
        assert_eq!(m.col_means(), vec![3.0, 4.0]);
    }

    #[test]
    fn argmax_rows_picks_first_on_tie() {
        let m = Matrix::from_rows(&[&[0.0, 5.0, 5.0], &[9.0, 1.0, 2.0]]);
        assert_eq!(m.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn select_rows_copies_in_order() {
        let m = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]);
        let s = m.select_rows(&[2, 0, 2]);
        assert_eq!(s, Matrix::from_rows(&[&[3.0, 3.0], &[1.0, 1.0], &[3.0, 3.0]]));
    }

    #[test]
    fn broadcast_add_bias() {
        let m = Matrix::zeros(2, 3);
        let out = m.add_row_broadcast(&[1.0, 2.0, 3.0]);
        assert_eq!(out.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(out.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn normalize_rows_unit_norm() {
        let m = Matrix::from_rows(&[&[3.0, 4.0], &[0.0, 0.0]]);
        let n = m.normalize_rows();
        assert!((n.row(0).iter().map(|x| x * x).sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(n.row(1), &[0.0, 0.0]); // zero row untouched
    }

    #[test]
    fn hcat_vcat_shapes_and_contents() {
        let a = Matrix::from_rows(&[&[1.0], &[2.0]]);
        let b = Matrix::from_rows(&[&[3.0], &[4.0]]);
        assert_eq!(a.hcat(&b), Matrix::from_rows(&[&[1.0, 3.0], &[2.0, 4.0]]));
        assert_eq!(a.vcat(&b), Matrix::from_rows(&[&[1.0], &[2.0], &[3.0], &[4.0]]));
    }

    #[test]
    fn standardize_cols_zero_mean_unit_var() {
        let m = Matrix::from_rows(&[&[1.0, 5.0], &[3.0, 5.0], &[5.0, 5.0]]);
        let s = m.standardize_cols();
        let means = s.col_means();
        assert!(means[0].abs() < 1e-12);
        // Constant column: centered, not scaled.
        assert!(means[1].abs() < 1e-12);
        let var0: f64 = s.col(0).iter().map(|x| x * x).sum::<f64>() / 3.0;
        assert!((var0 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn frobenius_norms() {
        let m = Matrix::from_rows(&[&[3.0, 4.0]]);
        assert_eq!(m.frobenius_sq(), 25.0);
        assert_eq!(m.frobenius(), 5.0);
    }
}
