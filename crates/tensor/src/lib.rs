//! # tensor — dense matrices and numerical primitives for TableDC
//!
//! The numeric foundation of the TableDC reproduction: a dense row-major
//! `f64` [`Matrix`], Cholesky-based linear algebra ([`linalg`]), pairwise
//! distance kernels ([`distance`]) including the Mahalanobis distance at the
//! heart of TableDC (paper Eq. 3–6), and seeded random construction
//! ([`random`]).
//!
//! Everything is pure safe Rust with no external numerics dependencies; the
//! hot kernels (matmul, cdist) are written so that LLVM auto-vectorizes the
//! inner loops.

pub mod distance;
pub mod linalg;
pub mod matrix;
pub mod par;
pub mod random;

pub use linalg::{cholesky, empirical_covariance, solve_lower, solve_upper, spd_inverse, LinalgError};
pub use matrix::Matrix;

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use crate::distance::{sq_euclidean_cdist, sq_mahalanobis_cdist};
    use crate::linalg::{cholesky, solve_lower, solve_upper};
    use crate::matrix::Matrix;

    /// Strategy: a random matrix with entries in [-5, 5].
    fn matrix_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
        proptest::collection::vec(-5.0..5.0f64, rows * cols)
            .prop_map(move |v| Matrix::from_vec(rows, cols, v))
    }

    /// Strategy: a random SPD matrix `BᵀB + I`.
    fn spd_strategy(n: usize) -> impl Strategy<Value = Matrix> {
        matrix_strategy(n, n).prop_map(move |b| {
            let mut a = b.transpose().matmul(&b);
            for i in 0..n {
                a[(i, i)] += 1.0;
            }
            a
        })
    }

    proptest! {
        #[test]
        fn cholesky_reconstruction(a in spd_strategy(4)) {
            let l = cholesky(&a).unwrap();
            let recon = l.matmul(&l.transpose());
            prop_assert!(recon.max_abs_diff(&a) < 1e-8);
        }

        #[test]
        fn solves_invert_triangular_products(a in spd_strategy(4), b in matrix_strategy(4, 2)) {
            let l = cholesky(&a).unwrap();
            let y = solve_lower(&l, &b).unwrap();
            prop_assert!(l.matmul(&y).max_abs_diff(&b) < 1e-8);
            let u = l.transpose();
            let x = solve_upper(&u, &b).unwrap();
            prop_assert!(u.matmul(&x).max_abs_diff(&b) < 1e-8);
        }

        #[test]
        fn cdist_is_nonnegative_and_symmetric(x in matrix_strategy(5, 3)) {
            let d = sq_euclidean_cdist(&x, &x);
            for i in 0..5 {
                prop_assert!(d[(i, i)] < 1e-9);
                for j in 0..5 {
                    prop_assert!(d[(i, j)] >= 0.0);
                    prop_assert!((d[(i, j)] - d[(j, i)]).abs() < 1e-9);
                }
            }
        }

        #[test]
        fn mahalanobis_matches_explicit_quadratic_form(
            x in matrix_strategy(3, 3),
            y in matrix_strategy(2, 3),
            sigma in spd_strategy(3),
        ) {
            let d = sq_mahalanobis_cdist(&x, &y, &sigma).unwrap();
            let inv = crate::linalg::spd_inverse(&sigma).unwrap();
            for i in 0..3 {
                for j in 0..2 {
                    let diff: Vec<f64> = x.row(i).iter().zip(y.row(j)).map(|(a, b)| a - b).collect();
                    let dm = Matrix::from_vec(1, 3, diff.clone());
                    let q = dm.matmul(&inv).matmul(&dm.transpose())[(0, 0)];
                    prop_assert!((d[(i, j)] - q).abs() < 1e-6 * (1.0 + q.abs()));
                }
            }
        }

        #[test]
        fn softmax_rows_are_distributions(x in matrix_strategy(4, 6)) {
            let s = x.softmax_rows();
            for i in 0..4 {
                let sum: f64 = s.row(i).iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-9);
                prop_assert!(s.row(i).iter().all(|&p| (0.0..=1.0).contains(&p)));
            }
        }

        #[test]
        fn matmul_distributes_over_addition(
            a in matrix_strategy(3, 4),
            b in matrix_strategy(4, 2),
            c in matrix_strategy(4, 2),
        ) {
            let lhs = a.matmul(&(&b + &c));
            let rhs = &a.matmul(&b) + &a.matmul(&c);
            prop_assert!(lhs.max_abs_diff(&rhs) < 1e-9);
        }

        #[test]
        fn transpose_reverses_matmul(a in matrix_strategy(3, 4), b in matrix_strategy(4, 2)) {
            let lhs = a.matmul(&b).transpose();
            let rhs = b.transpose().matmul(&a.transpose());
            prop_assert!(lhs.max_abs_diff(&rhs) < 1e-10);
        }
    }
}
