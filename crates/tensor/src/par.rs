//! Pool-parameterized parallel kernels behind the [`Matrix`] hot paths.
//!
//! The public `Matrix` methods (`matmul`, `softmax_rows`, …) and the
//! [`crate::distance`] kernels delegate here with the process-wide
//! [`runtime::global`] pool; these explicit-pool variants exist so tests can
//! assert the determinism contract across pools of different sizes.
//!
//! Every kernel computes exactly the same per-element arithmetic as its
//! serial predecessor — parallelism only re-schedules disjoint row blocks —
//! so outputs are **bit-identical for every thread count**, including the
//! `TABLEDC_THREADS=1` pure-serial mode.

use runtime::{block_rows, par_for_rows, par_join, ThreadPool};

use crate::matrix::Matrix;

/// Rows below which row-wise maps stay on one thread (scheduling overhead
/// dominates under this size; the cutoff never affects results).
const MIN_MAP_ROWS: usize = 64;

/// Matrix product `a · b` on an explicit pool.
///
/// The kernel is the classic `ikj` loop order: the innermost loop streams
/// contiguously through the output row and the right-hand row, and is kept
/// free of branches so LLVM auto-vectorizes it. Output rows are computed in
/// disjoint parallel blocks.
///
/// # Panics
/// Panics if `a.cols() != b.rows()`.
pub fn matmul(pool: &ThreadPool, a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul: inner dimensions differ ({}x{} · {}x{})",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let _timer = obs::span!("tensor.matmul");
    let (n, k, m) = (a.rows(), a.cols(), b.cols());
    let mut out = Matrix::zeros(n, m);
    if n == 0 || m == 0 || k == 0 {
        return out;
    }
    // Cheap rows (small k·m) get coarser blocks so per-task work stays
    // meaningful; the blocking is invisible in the output.
    let min_rows = (32_768 / (k * m).max(1)).max(8);
    let block = block_rows(n, pool.threads(), min_rows);
    par_for_rows(pool, out.as_mut_slice(), m, block, |first_row, chunk| {
        for (r, out_row) in chunk.chunks_exact_mut(m).enumerate() {
            let a_row = a.row(first_row + r);
            for (p, &av) in a_row.iter().enumerate() {
                let b_row = b.row(p);
                for (o, &bv) in out_row.iter_mut().zip(b_row) {
                    *o += av * bv;
                }
            }
        }
    });
    out
}

/// Pairwise squared Euclidean distances on an explicit pool (see
/// [`crate::distance::sq_euclidean_cdist`]).
pub fn sq_euclidean_cdist(pool: &ThreadPool, x: &Matrix, y: &Matrix) -> Matrix {
    assert_eq!(
        x.cols(),
        y.cols(),
        "sq_euclidean_cdist: feature dims differ ({} vs {})",
        x.cols(),
        y.cols()
    );
    let _timer = obs::span!("tensor.cdist");
    let (xn, yn): (Vec<f64>, Vec<f64>) = par_join(
        pool,
        || x.row_iter().map(|r| r.iter().map(|v| v * v).sum()).collect(),
        || y.row_iter().map(|r| r.iter().map(|v| v * v).sum()).collect(),
    );
    let mut g = matmul(pool, x, &y.transpose());
    let m = g.cols();
    if m == 0 || g.rows() == 0 {
        return g;
    }
    let block = block_rows(g.rows(), pool.threads(), MIN_MAP_ROWS);
    let (xn, yn) = (&xn, &yn);
    par_for_rows(pool, g.as_mut_slice(), m, block, |first_row, chunk| {
        for (r, row) in chunk.chunks_exact_mut(m).enumerate() {
            let xni = xn[first_row + r];
            for (v, &ynj) in row.iter_mut().zip(yn.iter()) {
                *v = (xni + ynj - 2.0 * *v).max(0.0);
            }
        }
    });
    g
}

/// Pairwise cosine distances on an explicit pool (see
/// [`crate::distance::cosine_cdist`]).
pub fn cosine_cdist(pool: &ThreadPool, x: &Matrix, y: &Matrix) -> Matrix {
    assert_eq!(x.cols(), y.cols(), "cosine_cdist: feature dims differ");
    let (xn, yn) = par_join(pool, || normalize_rows(pool, x), || normalize_rows(pool, y));
    let mut sim = matmul(pool, &xn, &yn.transpose());
    map_rows(pool, &mut sim, |row| {
        for s in row {
            *s = (1.0 - s.clamp(-1.0, 1.0)).max(0.0);
        }
    });
    sim
}

/// Row-wise softmax on an explicit pool (see [`Matrix::softmax_rows`]).
pub fn softmax_rows(pool: &ThreadPool, x: &Matrix) -> Matrix {
    let mut out = x.clone();
    map_rows(pool, &mut out, |row| {
        let max = row.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        if sum > 0.0 {
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
    });
    out
}

/// Row-wise L2 normalization on an explicit pool (see
/// [`Matrix::normalize_rows`]); zero rows are left unchanged.
pub fn normalize_rows(pool: &ThreadPool, x: &Matrix) -> Matrix {
    let mut out = x.clone();
    map_rows(pool, &mut out, |row| {
        let norm = row.iter().map(|v| v * v).sum::<f64>().sqrt();
        if norm > 0.0 {
            for v in row.iter_mut() {
                *v /= norm;
            }
        }
    });
    out
}

/// Per-row argmax on an explicit pool (ties to the first maximum, matching
/// the serial [`Matrix::argmax_rows`]).
pub fn argmax_rows(pool: &ThreadPool, x: &Matrix) -> Vec<usize> {
    let n = x.rows();
    let mut out = vec![0usize; n];
    if n == 0 || x.cols() == 0 {
        return out;
    }
    let block = block_rows(n, pool.threads(), 256);
    par_for_rows(pool, &mut out, 1, block, |first_row, chunk| {
        for (r, slot) in chunk.iter_mut().enumerate() {
            let row = x.row(first_row + r);
            let mut best = 0;
            for (j, &v) in row.iter().enumerate().skip(1) {
                if v > row[best] {
                    best = j;
                }
            }
            *slot = best;
        }
    });
    out
}

/// Applies `f` to every row of `m` in parallel disjoint blocks.
fn map_rows(pool: &ThreadPool, m: &mut Matrix, f: impl Fn(&mut [f64]) + Sync) {
    let cols = m.cols();
    if m.rows() == 0 || cols == 0 {
        return;
    }
    let block = block_rows(m.rows(), pool.threads(), MIN_MAP_ROWS);
    par_for_rows(pool, m.as_mut_slice(), cols, block, |_, chunk| {
        for row in chunk.chunks_exact_mut(cols) {
            f(row);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pools() -> Vec<ThreadPool> {
        [1, 2, 4, 8].into_iter().map(ThreadPool::new).collect()
    }

    /// Deterministic pseudo-random matrix without an RNG dependency.
    fn test_matrix(rows: usize, cols: usize, salt: u64) -> Matrix {
        Matrix::from_fn(rows, cols, |i, j| {
            let h = (i as u64)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add((j as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9))
                .wrapping_add(salt);
            ((h >> 11) as f64 / (1u64 << 53) as f64) * 10.0 - 5.0
        })
    }

    #[test]
    fn matmul_bit_identical_across_pools() {
        let a = test_matrix(67, 33, 1);
        let b = test_matrix(33, 29, 2);
        let reference = matmul(&ThreadPool::new(1), &a, &b);
        for pool in pools() {
            let got = matmul(&pool, &a, &b);
            assert!(got == reference, "threads = {}", pool.threads());
        }
    }

    #[test]
    fn cdist_bit_identical_across_pools() {
        let x = test_matrix(131, 17, 3);
        let y = test_matrix(9, 17, 4);
        let reference = sq_euclidean_cdist(&ThreadPool::new(1), &x, &y);
        for pool in pools() {
            assert!(sq_euclidean_cdist(&pool, &x, &y) == reference);
            assert!(cosine_cdist(&pool, &x, &y) == cosine_cdist(&ThreadPool::new(1), &x, &y));
        }
    }

    #[test]
    fn rowwise_kernels_bit_identical_across_pools() {
        let x = test_matrix(200, 13, 5);
        let serial = ThreadPool::new(1);
        for pool in pools() {
            assert!(softmax_rows(&pool, &x) == softmax_rows(&serial, &x));
            assert!(normalize_rows(&pool, &x) == normalize_rows(&serial, &x));
            assert_eq!(argmax_rows(&pool, &x), argmax_rows(&serial, &x));
        }
    }

    #[test]
    fn adversarial_shapes() {
        for pool in pools() {
            // 0×n and n×0 matmuls.
            assert_eq!(matmul(&pool, &Matrix::zeros(0, 5), &Matrix::zeros(5, 3)).shape(), (0, 3));
            assert_eq!(matmul(&pool, &Matrix::zeros(4, 0), &Matrix::zeros(0, 3)).shape(), (4, 3));
            assert_eq!(matmul(&pool, &Matrix::zeros(4, 5), &Matrix::zeros(5, 0)).shape(), (4, 0));
            // 1×1.
            let one = Matrix::from_rows(&[&[3.0]]);
            assert_eq!(matmul(&pool, &one, &one)[(0, 0)], 9.0);
            // Empty cdist.
            assert_eq!(sq_euclidean_cdist(&pool, &Matrix::zeros(0, 4), &Matrix::zeros(2, 4)).shape(), (0, 2));
            assert_eq!(argmax_rows(&pool, &Matrix::zeros(0, 0)), Vec::<usize>::new());
        }
    }
}
