//! # clustering — classical clustering algorithms and evaluation metrics
//!
//! The standard-clustering baselines of the paper (§4.1.2: K-means, DBSCAN,
//! Birch), the additional initializers of the Figure 4 ablation
//! (K-means++, random, agglomerative), connected-component clustering for
//! the bespoke baselines, and the evaluation metrics of §4.2 (ACC via the
//! Hungarian algorithm, ARI, plus NMI and cluster-shape statistics).

pub mod agglomerative;
pub mod birch;
pub mod dbscan;
pub mod hungarian;
pub mod internal;
pub mod kmeans;
pub mod metrics;
pub mod union_find;

pub use agglomerative::{Agglomerative, Linkage};
pub use birch::{Birch, BirchResult, ClusteringFeature};
pub use dbscan::{Dbscan, DbscanResult};
pub use kmeans::{KMeans, KMeansInit, KMeansResult};
pub use internal::{calinski_harabasz_index, davies_bouldin_index, silhouette_score};
pub use metrics::{accuracy, adjusted_rand_index, normalized_mutual_info, unary_cluster_count};
pub use union_find::{connected_components, UnionFind};

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;

    use crate::metrics::{accuracy, adjusted_rand_index, normalized_mutual_info};

    fn labels_strategy(n: usize, k: usize) -> impl Strategy<Value = Vec<usize>> {
        proptest::collection::vec(0..k, n)
    }

    proptest! {
        /// ACC and ARI are invariant under relabelling of the prediction.
        #[test]
        fn metrics_invariant_under_permutation(
            truth in labels_strategy(30, 4),
            pred in labels_strategy(30, 4),
            offset in 1..4usize,
        ) {
            let permuted: Vec<usize> = pred.iter().map(|&l| (l + offset) % 4).collect();
            prop_assert!((accuracy(&pred, &truth) - accuracy(&permuted, &truth)).abs() < 1e-12);
            prop_assert!(
                (adjusted_rand_index(&pred, &truth) - adjusted_rand_index(&permuted, &truth)).abs()
                    < 1e-12
            );
        }

        /// Self-comparison is perfect.
        #[test]
        fn self_comparison_is_perfect(labels in labels_strategy(25, 5)) {
            prop_assert!((accuracy(&labels, &labels) - 1.0).abs() < 1e-12);
            prop_assert!((adjusted_rand_index(&labels, &labels) - 1.0).abs() < 1e-12);
            prop_assert!((normalized_mutual_info(&labels, &labels) - 1.0).abs() < 1e-12);
        }

        /// ACC is bounded in [0, 1] and ARI in [-1, 1].
        #[test]
        fn metric_ranges(truth in labels_strategy(20, 3), pred in labels_strategy(20, 6)) {
            let acc = accuracy(&pred, &truth);
            prop_assert!((0.0..=1.0).contains(&acc));
            let ari = adjusted_rand_index(&pred, &truth);
            prop_assert!((-1.0..=1.0 + 1e-12).contains(&ari));
            let nmi = normalized_mutual_info(&pred, &truth);
            prop_assert!((0.0..=1.0).contains(&nmi));
        }

        /// ACC is at least the frequency of the most common true class
        /// (a trivial single-cluster prediction achieves exactly that).
        #[test]
        fn acc_beats_majority_floor(truth in labels_strategy(20, 3)) {
            let single = vec![0usize; truth.len()];
            let mut counts = [0usize; 3];
            for &t in &truth { counts[t] += 1; }
            let majority = *counts.iter().max().expect("non-empty") as f64 / truth.len() as f64;
            prop_assert!((accuracy(&single, &truth) - majority).abs() < 1e-12);
        }
    }
}
