//! DBSCAN: density-based spatial clustering of applications with noise
//! (Ester et al., KDD '96) — a standard-clustering baseline (§4.1.2).

use tensor::distance::sq_euclidean;
use tensor::Matrix;

/// Label assigned to noise points.
pub const NOISE: usize = usize::MAX;

/// DBSCAN configuration.
#[derive(Debug, Clone)]
pub struct Dbscan {
    /// Neighbourhood radius ε.
    pub eps: f64,
    /// Minimum neighbourhood size (including the point itself) for a core
    /// point.
    pub min_pts: usize,
}

impl Dbscan {
    /// Creates a DBSCAN configuration.
    pub fn new(eps: f64, min_pts: usize) -> Self {
        Self { eps, min_pts }
    }

    /// Clusters the rows of `x`. Returns per-point labels where `NOISE`
    /// marks unclustered points, plus the number of clusters found.
    pub fn fit(&self, x: &Matrix) -> DbscanResult {
        let n = x.rows();
        let eps2 = self.eps * self.eps;
        let mut labels = vec![NOISE; n];
        let mut visited = vec![false; n];
        let mut cluster = 0usize;

        let neighbours = |i: usize| -> Vec<usize> {
            (0..n).filter(|&j| sq_euclidean(x.row(i), x.row(j)) <= eps2).collect()
        };

        for i in 0..n {
            if visited[i] {
                continue;
            }
            visited[i] = true;
            let nbrs = neighbours(i);
            if nbrs.len() < self.min_pts {
                continue; // remains noise unless adopted by a cluster later
            }
            labels[i] = cluster;
            let mut frontier = nbrs;
            let mut pos = 0;
            while pos < frontier.len() {
                let j = frontier[pos];
                pos += 1;
                if labels[j] == NOISE {
                    labels[j] = cluster; // border or core point adoption
                }
                if !visited[j] {
                    visited[j] = true;
                    let jn = neighbours(j);
                    if jn.len() >= self.min_pts {
                        frontier.extend(jn);
                    }
                }
            }
            cluster += 1;
        }

        DbscanResult { labels, n_clusters: cluster }
    }

    /// Like [`Dbscan::fit`], but remaps noise points to singleton clusters
    /// so the labelling can be scored with ACC/ARI (which need every point
    /// labelled) — the usual benchmark convention.
    pub fn fit_assign_noise(&self, x: &Matrix) -> DbscanResult {
        let mut result = self.fit(x);
        let mut next = result.n_clusters;
        for l in &mut result.labels {
            if *l == NOISE {
                *l = next;
                next += 1;
            }
        }
        result.n_clusters = next;
        result
    }
}

/// Selects DBSCAN's ε without labels by maximizing the silhouette score
/// over a grid of k-NN-distance quantiles — the model-selection loop a
/// real deployment needs (the benchmark harness uses the median-4NN
/// heuristic directly for parity with the paper's untuned runs).
pub fn auto_eps(x: &Matrix, min_pts: usize, quantiles: &[f64]) -> f64 {
    let n = x.rows();
    assert!(n >= 2, "auto_eps: need at least two points");
    let k = min_pts.min(n - 1).max(1);
    let mut kth: Vec<f64> = (0..n)
        .map(|i| {
            let mut d: Vec<f64> = (0..n)
                .filter(|&j| j != i)
                .map(|j| tensor::distance::euclidean(x.row(i), x.row(j)))
                .collect();
            d.sort_by(|a, b| a.partial_cmp(b).expect("NaN distance"));
            d[k - 1]
        })
        .collect();
    kth.sort_by(|a, b| a.partial_cmp(b).expect("NaN distance"));

    let mut best = (f64::NEG_INFINITY, kth[n / 2]);
    for &q in quantiles {
        let idx = ((q.clamp(0.0, 1.0)) * (n - 1) as f64).round() as usize;
        let eps = kth[idx].max(f64::MIN_POSITIVE);
        let result = Dbscan::new(eps, min_pts).fit_assign_noise(x);
        if result.n_clusters < 2 || result.n_clusters >= n {
            continue;
        }
        let score = crate::internal::silhouette_score(x, &result.labels);
        if score > best.0 {
            best = (score, eps);
        }
    }
    best.1
}

/// Output of a DBSCAN run.
#[derive(Debug, Clone)]
pub struct DbscanResult {
    /// Per-point labels (`NOISE` for unclustered points under [`Dbscan::fit`]).
    pub labels: Vec<usize>,
    /// Number of clusters discovered.
    pub n_clusters: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn separates_two_dense_groups() {
        let x = Matrix::from_rows(&[
            &[0.0, 0.0],
            &[0.1, 0.0],
            &[0.0, 0.1],
            &[0.1, 0.1],
            &[5.0, 5.0],
            &[5.1, 5.0],
            &[5.0, 5.1],
            &[5.1, 5.1],
        ]);
        let r = Dbscan::new(0.3, 3).fit(&x);
        assert_eq!(r.n_clusters, 2);
        assert_eq!(r.labels[0], r.labels[1]);
        assert_eq!(r.labels[4], r.labels[7]);
        assert_ne!(r.labels[0], r.labels[4]);
    }

    #[test]
    fn isolated_point_is_noise() {
        let x = Matrix::from_rows(&[
            &[0.0, 0.0],
            &[0.1, 0.0],
            &[0.0, 0.1],
            &[100.0, 100.0], // isolated
        ]);
        let r = Dbscan::new(0.3, 2).fit(&x);
        assert_eq!(r.labels[3], NOISE);
        assert_eq!(r.n_clusters, 1);
    }

    #[test]
    fn noise_reassignment_gives_singletons() {
        let x = Matrix::from_rows(&[
            &[0.0, 0.0],
            &[0.1, 0.0],
            &[100.0, 100.0],
            &[200.0, 200.0],
        ]);
        let r = Dbscan::new(0.3, 2).fit_assign_noise(&x);
        assert!(r.labels.iter().all(|&l| l != NOISE));
        assert_eq!(r.n_clusters, 3); // one pair + two singletons
        assert_ne!(r.labels[2], r.labels[3]);
    }

    #[test]
    fn min_pts_one_makes_everything_core() {
        let x = Matrix::from_rows(&[&[0.0], &[10.0]]);
        let r = Dbscan::new(0.5, 1).fit(&x);
        assert_eq!(r.n_clusters, 2);
    }

    #[test]
    fn auto_eps_finds_separating_radius() {
        let x = Matrix::from_rows(&[
            &[0.0, 0.0],
            &[0.2, 0.0],
            &[0.0, 0.2],
            &[0.2, 0.2],
            &[8.0, 8.0],
            &[8.2, 8.0],
            &[8.0, 8.2],
            &[8.2, 8.2],
        ]);
        let eps = auto_eps(&x, 2, &[0.25, 0.5, 0.75, 0.9]);
        let r = Dbscan::new(eps, 2).fit(&x);
        assert_eq!(r.n_clusters, 2, "eps = {eps}");
    }

    #[test]
    fn chain_connectivity() {
        // A chain of points each within eps of the next forms one cluster.
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 * 0.5, 0.0]).collect();
        let x = Matrix::from_row_vecs(&rows);
        let r = Dbscan::new(0.6, 2).fit(&x);
        assert_eq!(r.n_clusters, 1);
        assert!(r.labels.iter().all(|&l| l == 0));
    }
}
