//! Internal (ground-truth-free) cluster-quality indices: silhouette,
//! Davies–Bouldin, and Calinski–Harabasz.
//!
//! These support unsupervised model selection — e.g. choosing DBSCAN's ε
//! or a cluster count when no labels exist, which is the situation real
//! data-integration deployments of TableDC are in.

use tensor::distance::{euclidean, sq_euclidean};
use tensor::Matrix;

/// Mean silhouette coefficient over all points, in [-1, 1] (higher is
/// better). Points in singleton clusters score 0, the standard convention.
///
/// # Panics
/// Panics if `labels.len() != x.rows()`.
pub fn silhouette_score(x: &Matrix, labels: &[usize]) -> f64 {
    assert_eq!(x.rows(), labels.len(), "silhouette: length mismatch");
    let n = x.rows();
    if n == 0 {
        return 0.0;
    }
    let k = labels.iter().copied().max().map_or(0, |m| m + 1);
    if k < 2 {
        return 0.0;
    }
    let mut counts = vec![0usize; k];
    for &l in labels {
        counts[l] += 1;
    }

    let mut total = 0.0;
    for i in 0..n {
        let li = labels[i];
        if counts[li] <= 1 {
            continue; // silhouette of a singleton is defined as 0
        }
        // Mean distance to every cluster.
        let mut sums = vec![0.0f64; k];
        for j in 0..n {
            if j != i {
                sums[labels[j]] += euclidean(x.row(i), x.row(j));
            }
        }
        let a = sums[li] / (counts[li] - 1) as f64;
        let b = (0..k)
            .filter(|&c| c != li && counts[c] > 0)
            .map(|c| sums[c] / counts[c] as f64)
            .fold(f64::INFINITY, f64::min);
        if b.is_finite() {
            total += (b - a) / a.max(b);
        }
    }
    total / n as f64
}

/// Davies–Bouldin index (lower is better): mean over clusters of the worst
/// ratio `(s_i + s_j) / d(c_i, c_j)` where `s` is within-cluster scatter.
pub fn davies_bouldin_index(x: &Matrix, labels: &[usize]) -> f64 {
    assert_eq!(x.rows(), labels.len(), "davies_bouldin: length mismatch");
    let k = labels.iter().copied().max().map_or(0, |m| m + 1);
    if k < 2 {
        return 0.0;
    }
    let (centroids, counts) = centroids_and_counts(x, labels, k);
    // Scatter: mean distance of members to their centroid.
    let mut scatter = vec![0.0f64; k];
    for (i, &l) in labels.iter().enumerate() {
        scatter[l] += euclidean(x.row(i), centroids.row(l));
    }
    for c in 0..k {
        if counts[c] > 0 {
            scatter[c] /= counts[c] as f64;
        }
    }
    let mut total = 0.0;
    let mut active = 0;
    for i in 0..k {
        if counts[i] == 0 {
            continue;
        }
        active += 1;
        let mut worst: f64 = 0.0;
        for j in 0..k {
            if j != i && counts[j] > 0 {
                let d = euclidean(centroids.row(i), centroids.row(j));
                if d > 0.0 {
                    worst = worst.max((scatter[i] + scatter[j]) / d);
                }
            }
        }
        total += worst;
    }
    if active == 0 {
        0.0
    } else {
        total / active as f64
    }
}

/// Calinski–Harabasz index (higher is better): ratio of between-cluster to
/// within-cluster dispersion, scaled by the degrees of freedom.
pub fn calinski_harabasz_index(x: &Matrix, labels: &[usize]) -> f64 {
    assert_eq!(x.rows(), labels.len(), "calinski_harabasz: length mismatch");
    let n = x.rows();
    let k = labels.iter().copied().max().map_or(0, |m| m + 1);
    if k < 2 || n <= k {
        return 0.0;
    }
    let (centroids, counts) = centroids_and_counts(x, labels, k);
    let global = x.col_means();
    let mut between = 0.0;
    for c in 0..k {
        if counts[c] > 0 {
            between += counts[c] as f64 * sq_euclidean(centroids.row(c), &global);
        }
    }
    let mut within = 0.0;
    for (i, &l) in labels.iter().enumerate() {
        within += sq_euclidean(x.row(i), centroids.row(l));
    }
    if within == 0.0 {
        return f64::INFINITY;
    }
    (between / (k - 1) as f64) / (within / (n - k) as f64)
}

fn centroids_and_counts(x: &Matrix, labels: &[usize], k: usize) -> (Matrix, Vec<usize>) {
    let d = x.cols();
    let mut centroids = Matrix::zeros(k, d);
    let mut counts = vec![0usize; k];
    for (i, &l) in labels.iter().enumerate() {
        counts[l] += 1;
        for (c, &v) in centroids.row_mut(l).iter_mut().zip(x.row(i)) {
            *c += v;
        }
    }
    for c in 0..k {
        if counts[c] > 0 {
            let inv = 1.0 / counts[c] as f64;
            for v in centroids.row_mut(c) {
                *v *= inv;
            }
        }
    }
    (centroids, counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> (Matrix, Vec<usize>) {
        let x = Matrix::from_rows(&[
            &[0.0, 0.0],
            &[0.2, 0.1],
            &[0.1, 0.2],
            &[10.0, 10.0],
            &[10.2, 10.1],
            &[10.1, 10.2],
        ]);
        (x, vec![0, 0, 0, 1, 1, 1])
    }

    #[test]
    fn silhouette_high_for_good_split_low_for_bad() {
        let (x, good) = two_blobs();
        let bad = vec![0, 1, 0, 1, 0, 1];
        let sg = silhouette_score(&x, &good);
        let sb = silhouette_score(&x, &bad);
        assert!(sg > 0.9, "good silhouette {sg}");
        assert!(sb < 0.1, "bad silhouette {sb}");
    }

    #[test]
    fn silhouette_of_single_cluster_is_zero() {
        let (x, _) = two_blobs();
        assert_eq!(silhouette_score(&x, &[0; 6]), 0.0);
    }

    #[test]
    fn silhouette_handles_singletons() {
        let (x, _) = two_blobs();
        let labels = vec![0, 0, 0, 1, 1, 2]; // one singleton
        let s = silhouette_score(&x, &labels);
        assert!(s.is_finite());
    }

    #[test]
    fn davies_bouldin_prefers_good_split() {
        let (x, good) = two_blobs();
        let bad = vec![0, 1, 0, 1, 0, 1];
        assert!(davies_bouldin_index(&x, &good) < davies_bouldin_index(&x, &bad));
    }

    #[test]
    fn calinski_harabasz_prefers_good_split() {
        let (x, good) = two_blobs();
        let bad = vec![0, 1, 0, 1, 0, 1];
        assert!(calinski_harabasz_index(&x, &good) > calinski_harabasz_index(&x, &bad));
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        let x = Matrix::zeros(0, 2);
        assert_eq!(silhouette_score(&x, &[]), 0.0);
        let one = Matrix::from_rows(&[&[1.0, 2.0]]);
        assert_eq!(davies_bouldin_index(&one, &[0]), 0.0);
        assert_eq!(calinski_harabasz_index(&one, &[0]), 0.0);
    }
}
