//! BIRCH: balanced iterative reducing and clustering using hierarchies
//! (Zhang et al., SIGMOD '96) — the cluster-center initializer of TableDC
//! (paper §3.2, Algorithm 2).
//!
//! A CF-tree summarizes the data set as a hierarchy of *clustering
//! features* `(n, LS, SS)` (count, linear sum, squared sum). Points are
//! inserted by descending to the closest leaf entry; an entry absorbs the
//! point if its radius stays below the threshold `T`, otherwise a new entry
//! is created, with node splits propagating upward bounded by the branching
//! factor `B` (internal) and leaf capacity `L`. A final global-clustering
//! step groups the leaf subclusters into `K` clusters (here: weighted
//! K-means over subcluster centroids, the same refinement scikit-learn
//! uses), and each point inherits the label of its nearest subcluster.

use rand::rngs::StdRng;
use tensor::distance::sq_euclidean;
use tensor::Matrix;

use crate::kmeans::{centroids_from_labels, kmeans_pp_seeds};

/// A clustering feature: the additive sufficient statistics of a
/// subcluster (paper §3.2: "the number of data points per cluster, squared,
/// and linear sum").
#[derive(Debug, Clone, PartialEq)]
pub struct ClusteringFeature {
    /// Number of absorbed points.
    pub n: f64,
    /// Linear sum per dimension.
    pub ls: Vec<f64>,
    /// Sum of squared norms.
    pub ss: f64,
}

impl ClusteringFeature {
    /// CF of a single point.
    pub fn from_point(p: &[f64]) -> Self {
        Self { n: 1.0, ls: p.to_vec(), ss: p.iter().map(|x| x * x).sum() }
    }

    /// Additively merges another CF into this one (CF additivity theorem).
    pub fn merge(&mut self, other: &ClusteringFeature) {
        self.n += other.n;
        for (a, b) in self.ls.iter_mut().zip(&other.ls) {
            *a += b;
        }
        self.ss += other.ss;
    }

    /// Subcluster centroid `LS/n`.
    pub fn centroid(&self) -> Vec<f64> {
        self.ls.iter().map(|x| x / self.n).collect()
    }

    /// Subcluster radius: RMS distance of members to the centroid,
    /// `sqrt(SS/n − ‖LS/n‖²)` (clamped at 0 against rounding).
    pub fn radius(&self) -> f64 {
        let c2: f64 = self.ls.iter().map(|x| (x / self.n) * (x / self.n)).sum();
        (self.ss / self.n - c2).max(0.0).sqrt()
    }

    /// Squared centroid distance to another CF.
    fn sq_centroid_distance(&self, other: &ClusteringFeature) -> f64 {
        self.ls
            .iter()
            .zip(&other.ls)
            .map(|(a, b)| {
                let d = a / self.n - b / other.n;
                d * d
            })
            .sum()
    }

    /// Radius of the subcluster that would result from merging with
    /// `other`, without materializing the merge.
    fn merged_radius(&self, other: &ClusteringFeature) -> f64 {
        let n = self.n + other.n;
        let ss = self.ss + other.ss;
        let c2: f64 = self
            .ls
            .iter()
            .zip(&other.ls)
            .map(|(a, b)| {
                let c = (a + b) / n;
                c * c
            })
            .sum();
        (ss / n - c2).max(0.0).sqrt()
    }
}

enum Node {
    Leaf { entries: Vec<ClusteringFeature> },
    Internal { children: Vec<(ClusteringFeature, Box<Node>)> },
}

/// Outcome of inserting into a node: either it absorbed the point, or it
/// split into two (the caller replaces the child with both halves).
enum Insert {
    Ok,
    Split(ClusteringFeature, Box<Node>, ClusteringFeature, Box<Node>),
}

impl Node {
    fn insert(&mut self, cf: &ClusteringFeature, t: f64, b: usize, l: usize) -> Insert {
        match self {
            Node::Leaf { entries } => {
                // Closest entry by centroid distance.
                let closest = entries
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, c)| {
                        a.sq_centroid_distance(cf)
                            .partial_cmp(&c.sq_centroid_distance(cf))
                            .expect("NaN in CF distance")
                    })
                    .map(|(i, _)| i);
                match closest {
                    Some(i) if entries[i].merged_radius(cf) <= t => {
                        entries[i].merge(cf);
                        Insert::Ok
                    }
                    _ => {
                        entries.push(cf.clone());
                        if entries.len() > l {
                            let (cf1, e1, cf2, e2) = split_entries(std::mem::take(entries));
                            Insert::Split(
                                cf1,
                                Box::new(Node::Leaf { entries: e1 }),
                                cf2,
                                Box::new(Node::Leaf { entries: e2 }),
                            )
                        } else {
                            Insert::Ok
                        }
                    }
                }
            }
            Node::Internal { children } => {
                let idx = children
                    .iter()
                    .enumerate()
                    .min_by(|(_, (a, _)), (_, (c, _))| {
                        a.sq_centroid_distance(cf)
                            .partial_cmp(&c.sq_centroid_distance(cf))
                            .expect("NaN in CF distance")
                    })
                    .map(|(i, _)| i)
                    .expect("internal node has children");
                let result = children[idx].1.insert(cf, t, b, l);
                children[idx].0.merge(cf);
                if let Insert::Split(cf1, n1, cf2, n2) = result {
                    children.remove(idx);
                    children.push((cf1, n1));
                    children.push((cf2, n2));
                    if children.len() > b {
                        let (g1, g2) = split_children(std::mem::take(children));
                        let cf_of = |g: &[(ClusteringFeature, Box<Node>)]| {
                            let mut acc = g[0].0.clone();
                            for (cf, _) in &g[1..] {
                                acc.merge(cf);
                            }
                            acc
                        };
                        let (c1, c2) = (cf_of(&g1), cf_of(&g2));
                        return Insert::Split(
                            c1,
                            Box::new(Node::Internal { children: g1 }),
                            c2,
                            Box::new(Node::Internal { children: g2 }),
                        );
                    }
                }
                Insert::Ok
            }
        }
    }

    fn collect_leaf_entries(&self, out: &mut Vec<ClusteringFeature>) {
        match self {
            Node::Leaf { entries } => out.extend(entries.iter().cloned()),
            Node::Internal { children } => {
                for (_, child) in children {
                    child.collect_leaf_entries(out);
                }
            }
        }
    }
}

/// Splits a set of CF entries into two groups seeded by the farthest pair.
fn split_entries(entries: Vec<ClusteringFeature>) -> (ClusteringFeature, Vec<ClusteringFeature>, ClusteringFeature, Vec<ClusteringFeature>) {
    let (i, j) = farthest_pair(&entries, |e| e);
    let (mut g1, mut g2) = (Vec::new(), Vec::new());
    let (seed1, seed2) = (entries[i].clone(), entries[j].clone());
    for e in entries {
        if e.sq_centroid_distance(&seed1) <= e.sq_centroid_distance(&seed2) {
            g1.push(e);
        } else {
            g2.push(e);
        }
    }
    let sum_cf = |g: &[ClusteringFeature]| {
        let mut acc = g[0].clone();
        for e in &g[1..] {
            acc.merge(e);
        }
        acc
    };
    let (c1, c2) = (sum_cf(&g1), sum_cf(&g2));
    (c1, g1, c2, g2)
}

fn split_children(
    children: Vec<(ClusteringFeature, Box<Node>)>,
) -> (Vec<(ClusteringFeature, Box<Node>)>, Vec<(ClusteringFeature, Box<Node>)>) {
    let (i, j) = farthest_pair(&children, |c| &c.0);
    let seed1 = children[i].0.clone();
    let seed2 = children[j].0.clone();
    let (mut g1, mut g2) = (Vec::new(), Vec::new());
    for c in children {
        if c.0.sq_centroid_distance(&seed1) <= c.0.sq_centroid_distance(&seed2) {
            g1.push(c);
        } else {
            g2.push(c);
        }
    }
    (g1, g2)
}

fn farthest_pair<T>(items: &[T], cf: impl Fn(&T) -> &ClusteringFeature) -> (usize, usize) {
    debug_assert!(items.len() >= 2);
    let mut best = (0, 1);
    let mut best_d = -1.0;
    for i in 0..items.len() {
        for j in (i + 1)..items.len() {
            let d = cf(&items[i]).sq_centroid_distance(cf(&items[j]));
            if d > best_d {
                best_d = d;
                best = (i, j);
            }
        }
    }
    best
}

/// BIRCH configuration (paper Algorithm 2: `T`, `B`, `L`, `K`).
#[derive(Debug, Clone)]
pub struct Birch {
    /// Number of final clusters.
    pub k: usize,
    /// CF-entry radius threshold `T`.
    pub threshold: f64,
    /// Branching factor `B` (max children of an internal node).
    pub branching: usize,
    /// Leaf capacity `L` (max entries in a leaf).
    pub leaf_capacity: usize,
    /// If true, the threshold is repeatedly halved until the tree yields at
    /// least `k` subclusters — the grid search on `T` of §4.3.
    pub auto_threshold: bool,
}

impl Birch {
    /// Defaults mirroring scikit-learn: `T = 0.5`, `B = 50`, `L = 50`,
    /// with automatic threshold adjustment enabled.
    pub fn new(k: usize) -> Self {
        Self { k, threshold: 0.5, branching: 50, leaf_capacity: 50, auto_threshold: true }
    }

    /// Builds the CF-tree over the rows of `x` and returns final labels,
    /// centers (per Algorithm 2: the mean of the points assigned to each
    /// cluster), and tree statistics.
    ///
    /// # Panics
    /// Panics if `k == 0` or `k > n`.
    pub fn fit(&self, x: &Matrix, rng: &mut StdRng) -> BirchResult {
        assert!(self.k > 0, "Birch: k must be positive");
        assert!(self.k <= x.rows(), "Birch: k = {} > n = {}", self.k, x.rows());
        let _fit_timer = obs::span!("birch.fit");
        let mut t = self.threshold;
        loop {
            let subclusters = self.build_tree(x, t);
            if subclusters.len() >= self.k || !self.auto_threshold || t < 1e-12 {
                return self.global_cluster(x, subclusters, t, rng);
            }
            t *= 0.5;
        }
    }

    fn build_tree(&self, x: &Matrix, t: f64) -> Vec<ClusteringFeature> {
        let mut root = Node::Leaf { entries: Vec::new() };
        for row in x.row_iter() {
            let cf = ClusteringFeature::from_point(row);
            if let Insert::Split(cf1, n1, cf2, n2) =
                root.insert(&cf, t, self.branching, self.leaf_capacity)
            {
                root = Node::Internal { children: vec![(cf1, n1), (cf2, n2)] };
            }
        }
        let mut subclusters = Vec::new();
        root.collect_leaf_entries(&mut subclusters);
        subclusters
    }

    fn global_cluster(
        &self,
        x: &Matrix,
        subclusters: Vec<ClusteringFeature>,
        threshold_used: f64,
        rng: &mut StdRng,
    ) -> BirchResult {
        let n_subclusters = subclusters.len();
        let centroids = Matrix::from_row_vecs(
            &subclusters.iter().map(ClusteringFeature::centroid).collect::<Vec<_>>(),
        );
        let weights: Vec<f64> = subclusters.iter().map(|c| c.n).collect();

        // Weighted K-means over subcluster centroids.
        let k = self.k.min(n_subclusters);
        let sub_labels = weighted_kmeans(&centroids, &weights, k, 100, rng);

        // Each data point inherits the label of its nearest subcluster.
        let mut labels = Vec::with_capacity(x.rows());
        for row in x.row_iter() {
            let mut best = 0;
            let mut best_d = f64::INFINITY;
            for (s, c) in subclusters.iter().enumerate() {
                let d = sq_euclidean(row, &c.centroid());
                if d < best_d {
                    best_d = d;
                    best = s;
                }
            }
            labels.push(sub_labels[best]);
        }

        // Final centers: mean of the points assigned to each cluster
        // (Algorithm 2, line 12), falling back to the weighted subcluster
        // mean for empty clusters.
        let fallback = {
            let mut f = Matrix::zeros(k, x.cols());
            let mut wsum = vec![0.0; k];
            for (s, cf) in subclusters.iter().enumerate() {
                let l = sub_labels[s];
                wsum[l] += cf.n;
                for (fv, &lsv) in f.row_mut(l).iter_mut().zip(&cf.ls) {
                    *fv += lsv;
                }
            }
            for l in 0..k {
                if wsum[l] > 0.0 {
                    for fv in f.row_mut(l) {
                        *fv /= wsum[l];
                    }
                }
            }
            f
        };
        let centers = centroids_from_labels(x, &labels, k, &fallback);

        BirchResult { labels, centers, n_subclusters, threshold_used }
    }
}

/// Weighted Lloyd iterations on a small set of (weighted) points, with
/// restarts — the global-clustering step over CF subcluster centroids.
/// The best run by *weighted* inertia wins, which protects the final
/// centers against unlucky seedings over the (possibly many) subclusters.
fn weighted_kmeans(
    points: &Matrix,
    weights: &[f64],
    k: usize,
    max_iter: usize,
    rng: &mut StdRng,
) -> Vec<usize> {
    const RESTARTS: usize = 8;
    let _timer = obs::span!("kmeans.weighted");
    let mut best: Option<(f64, Vec<usize>)> = None;
    for _ in 0..RESTARTS {
        let labels = weighted_kmeans_once(points, weights, k, max_iter, rng);
        let inertia = weighted_inertia(points, weights, &labels, k);
        if best.as_ref().is_none_or(|(b, _)| inertia < *b) {
            best = Some((inertia, labels));
        }
    }
    best.expect("at least one restart ran").1
}

/// Weighted sum of squared distances to the (weighted) cluster means.
fn weighted_inertia(points: &Matrix, weights: &[f64], labels: &[usize], k: usize) -> f64 {
    let d = points.cols();
    let mut sums = Matrix::zeros(k, d);
    let mut wsum = vec![0.0f64; k];
    for (i, &l) in labels.iter().enumerate() {
        wsum[l] += weights[i];
        for (s, &v) in sums.row_mut(l).iter_mut().zip(points.row(i)) {
            *s += weights[i] * v;
        }
    }
    for c in 0..k {
        if wsum[c] > 0.0 {
            let inv = 1.0 / wsum[c];
            for s in sums.row_mut(c) {
                *s *= inv;
            }
        }
    }
    labels
        .iter()
        .enumerate()
        .map(|(i, &l)| weights[i] * sq_euclidean(points.row(i), sums.row(l)))
        .sum()
}

fn weighted_kmeans_once(
    points: &Matrix,
    weights: &[f64],
    k: usize,
    max_iter: usize,
    rng: &mut StdRng,
) -> Vec<usize> {
    let n = points.rows();
    let mut centers = kmeans_pp_seeds(points, k, rng);
    let mut labels = vec![0usize; n];
    for _ in 0..max_iter {
        // Assign.
        let mut changed = false;
        for i in 0..n {
            let mut best = labels[i];
            let mut best_d = f64::INFINITY;
            for c in 0..k {
                let d = sq_euclidean(points.row(i), centers.row(c));
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if best != labels[i] {
                labels[i] = best;
                changed = true;
            }
        }
        // Update (weighted means).
        let d = points.cols();
        let mut sums = Matrix::zeros(k, d);
        let mut wsum = vec![0.0f64; k];
        for i in 0..n {
            let l = labels[i];
            wsum[l] += weights[i];
            for (s, &v) in sums.row_mut(l).iter_mut().zip(points.row(i)) {
                *s += weights[i] * v;
            }
        }
        for c in 0..k {
            if wsum[c] > 0.0 {
                let inv = 1.0 / wsum[c];
                for (cv, sv) in centers.row_mut(c).iter_mut().zip(sums.row(c)) {
                    *cv = sv * inv;
                }
            }
        }
        if !changed {
            break;
        }
    }
    labels
}

/// Output of a BIRCH run.
#[derive(Debug, Clone)]
pub struct BirchResult {
    /// Final cluster index per input row.
    pub labels: Vec<usize>,
    /// `k × d` cluster centers (means of assigned points).
    pub centers: Matrix,
    /// Number of CF subclusters the tree produced.
    pub n_subclusters: usize,
    /// The radius threshold actually used (after auto-adjustment).
    pub threshold_used: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use tensor::random::{randn, rng};

    fn blobs(n_per: usize, spread: f64, seed: u64) -> (Matrix, Vec<usize>) {
        let mut r = rng(seed);
        let centers = [[0.0, 0.0], [8.0, 0.0], [0.0, 8.0], [8.0, 8.0]];
        let mut rows = Vec::new();
        let mut truth = Vec::new();
        for (ci, c) in centers.iter().enumerate() {
            for _ in 0..n_per {
                let e = randn(1, 2, &mut r);
                rows.push(vec![c[0] + spread * e[(0, 0)], c[1] + spread * e[(0, 1)]]);
                truth.push(ci);
            }
        }
        (Matrix::from_row_vecs(&rows), truth)
    }

    #[test]
    fn cf_additivity() {
        let mut a = ClusteringFeature::from_point(&[1.0, 2.0]);
        let b = ClusteringFeature::from_point(&[3.0, 4.0]);
        a.merge(&b);
        assert_eq!(a.n, 2.0);
        assert_eq!(a.ls, vec![4.0, 6.0]);
        assert_eq!(a.ss, 1.0 + 4.0 + 9.0 + 16.0);
        assert_eq!(a.centroid(), vec![2.0, 3.0]);
    }

    #[test]
    fn cf_radius_of_symmetric_pair() {
        let mut a = ClusteringFeature::from_point(&[-1.0, 0.0]);
        a.merge(&ClusteringFeature::from_point(&[1.0, 0.0]));
        // Both points at distance 1 from centroid (0,0) → radius 1.
        assert!((a.radius() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn merged_radius_matches_actual_merge() {
        let a = ClusteringFeature::from_point(&[0.0, 0.0]);
        let b = ClusteringFeature::from_point(&[2.0, 0.0]);
        let predicted = a.merged_radius(&b);
        let mut m = a.clone();
        m.merge(&b);
        assert!((predicted - m.radius()).abs() < 1e-12);
    }

    #[test]
    fn recovers_separated_blobs() {
        let (x, truth) = blobs(25, 0.5, 1);
        let result = Birch::new(4).fit(&x, &mut rng(2));
        assert!(
            accuracy(&result.labels, &truth) > 0.95,
            "acc = {}",
            accuracy(&result.labels, &truth)
        );
        assert_eq!(result.centers.shape(), (4, 2));
    }

    #[test]
    fn tree_compresses_points_into_fewer_subclusters() {
        let (x, _) = blobs(50, 0.3, 3);
        let result = Birch { threshold: 1.0, ..Birch::new(4) }.fit(&x, &mut rng(4));
        assert!(
            result.n_subclusters < x.rows(),
            "CF tree should compress: {} subclusters for {} points",
            result.n_subclusters,
            x.rows()
        );
        assert!(result.n_subclusters >= 4);
    }

    #[test]
    fn auto_threshold_shrinks_until_enough_subclusters() {
        // A huge threshold merges everything into one CF; auto-adjust must
        // shrink it to produce >= k subclusters.
        let (x, truth) = blobs(20, 0.4, 5);
        let result = Birch { threshold: 1000.0, ..Birch::new(4) }.fit(&x, &mut rng(6));
        assert!(result.threshold_used < 1000.0);
        assert!(result.n_subclusters >= 4);
        assert!(accuracy(&result.labels, &truth) > 0.9);
    }

    #[test]
    fn handles_many_clusters_small_groups() {
        // Entity-resolution-like shape: many tiny clusters.
        let mut r = rng(7);
        let mut rows = Vec::new();
        let mut truth = Vec::new();
        for c in 0..30 {
            let cx = (c % 6) as f64 * 10.0;
            let cy = (c / 6) as f64 * 10.0;
            for _ in 0..3 {
                let e = randn(1, 2, &mut r);
                rows.push(vec![cx + 0.2 * e[(0, 0)], cy + 0.2 * e[(0, 1)]]);
                truth.push(c);
            }
        }
        let x = Matrix::from_row_vecs(&rows);
        let result = Birch::new(30).fit(&x, &mut rng(8));
        assert!(accuracy(&result.labels, &truth) > 0.8);
    }

    #[test]
    fn labels_within_k() {
        let (x, _) = blobs(10, 0.5, 9);
        let result = Birch::new(4).fit(&x, &mut rng(10));
        assert!(result.labels.iter().all(|&l| l < 4));
    }
}
