//! Agglomerative hierarchical clustering with Lance–Williams updates.
//!
//! Used in the Figure 4 initializer ablation as an alternative to Birch,
//! and as a building block for bespoke baselines. Complete, average, and
//! single linkage are supported through the Lance–Williams recurrence, with
//! a nearest-neighbour cache so merges cost `O(n)` amortized except when a
//! cached neighbour dies.

use tensor::distance::sq_euclidean;
use tensor::Matrix;

/// Linkage criterion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Linkage {
    /// Minimum pairwise distance between clusters.
    Single,
    /// Maximum pairwise distance.
    Complete,
    /// Unweighted average pairwise distance (UPGMA).
    Average,
}

/// Agglomerative clustering configuration.
#[derive(Debug, Clone)]
pub struct Agglomerative {
    /// Number of clusters to stop at.
    pub k: usize,
    /// Linkage criterion.
    pub linkage: Linkage,
}

impl Agglomerative {
    /// Creates a configuration with the given target cluster count.
    pub fn new(k: usize, linkage: Linkage) -> Self {
        Self { k, linkage }
    }

    /// Clusters the rows of `x` bottom-up until `k` clusters remain.
    ///
    /// # Panics
    /// Panics if `k == 0` or `k > n`.
    pub fn fit(&self, x: &Matrix) -> Vec<usize> {
        let n = x.rows();
        assert!(self.k > 0, "Agglomerative: k must be positive");
        assert!(self.k <= n, "Agglomerative: k = {} > n = {n}", self.k);
        if n == 0 {
            return Vec::new();
        }

        // Dense distance matrix between active clusters (Euclidean).
        let mut dist = vec![vec![0.0f64; n]; n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = sq_euclidean(x.row(i), x.row(j)).sqrt();
                dist[i][j] = d;
                dist[j][i] = d;
            }
        }
        let mut active: Vec<bool> = vec![true; n];
        let mut size: Vec<f64> = vec![1.0; n];
        // Per-cluster cached nearest active neighbour.
        let mut nn: Vec<usize> = (0..n)
            .map(|i| {
                (0..n)
                    .filter(|&j| j != i)
                    .min_by(|&a, &b| dist[i][a].partial_cmp(&dist[i][b]).expect("NaN"))
                    .unwrap_or(i)
            })
            .collect();
        // Cluster membership: which merged cluster each point belongs to.
        let mut members: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();

        let mut remaining = n;
        while remaining > self.k {
            // Find the globally closest pair via the NN cache.
            let (a, b) = {
                let mut best = (usize::MAX, usize::MAX);
                let mut best_d = f64::INFINITY;
                for i in 0..n {
                    if active[i] {
                        let j = nn[i];
                        if active[j] && dist[i][j] < best_d {
                            best_d = dist[i][j];
                            best = (i, j);
                        }
                    }
                }
                best
            };
            debug_assert!(a != usize::MAX, "no mergeable pair found");
            let (a, b) = (a.min(b), a.max(b));

            // Lance–Williams: distance from the merged cluster (stored at a)
            // to every other active cluster.
            let (sa, sb) = (size[a], size[b]);
            for j in 0..n {
                if j != a && j != b && active[j] {
                    let daj = dist[a][j];
                    let dbj = dist[b][j];
                    let d = match self.linkage {
                        Linkage::Single => daj.min(dbj),
                        Linkage::Complete => daj.max(dbj),
                        Linkage::Average => (sa * daj + sb * dbj) / (sa + sb),
                    };
                    dist[a][j] = d;
                    dist[j][a] = d;
                }
            }
            active[b] = false;
            size[a] += size[b];
            let moved = std::mem::take(&mut members[b]);
            members[a].extend(moved);
            remaining -= 1;

            // Refresh NN caches that referenced a or b (or belong to a).
            for i in 0..n {
                if active[i] && (i == a || nn[i] == a || nn[i] == b) {
                    nn[i] = (0..n)
                        .filter(|&j| j != i && active[j])
                        .min_by(|&p, &q| dist[i][p].partial_cmp(&dist[i][q]).expect("NaN"))
                        .unwrap_or(i);
                }
            }
        }

        // Emit dense labels.
        let mut labels = vec![0usize; n];
        let mut next = 0;
        for i in 0..n {
            if active[i] {
                for &m in &members[i] {
                    labels[m] = next;
                }
                next += 1;
            }
        }
        labels
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::accuracy;
    use tensor::random::{randn, rng};

    fn blobs(n_per: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut r = rng(seed);
        let centers = [[0.0, 0.0], [10.0, 0.0], [5.0, 10.0]];
        let mut rows = Vec::new();
        let mut truth = Vec::new();
        for (ci, c) in centers.iter().enumerate() {
            for _ in 0..n_per {
                let e = randn(1, 2, &mut r);
                rows.push(vec![c[0] + 0.6 * e[(0, 0)], c[1] + 0.6 * e[(0, 1)]]);
                truth.push(ci);
            }
        }
        (Matrix::from_row_vecs(&rows), truth)
    }

    #[test]
    fn average_linkage_recovers_blobs() {
        let (x, truth) = blobs(20, 1);
        let labels = Agglomerative::new(3, Linkage::Average).fit(&x);
        assert!(accuracy(&labels, &truth) > 0.95);
    }

    #[test]
    fn complete_linkage_recovers_blobs() {
        let (x, truth) = blobs(20, 2);
        let labels = Agglomerative::new(3, Linkage::Complete).fit(&x);
        assert!(accuracy(&labels, &truth) > 0.95);
    }

    #[test]
    fn single_linkage_follows_chains() {
        // Two chains: single linkage groups each chain despite its length.
        let mut rows = Vec::new();
        let mut truth = Vec::new();
        for i in 0..10 {
            rows.push(vec![i as f64 * 0.5, 0.0]);
            truth.push(0);
            rows.push(vec![i as f64 * 0.5, 20.0]);
            truth.push(1);
        }
        let x = Matrix::from_row_vecs(&rows);
        let labels = Agglomerative::new(2, Linkage::Single).fit(&x);
        assert!((accuracy(&labels, &truth) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn k_equals_n_is_identity_partition() {
        let (x, _) = blobs(4, 3);
        let labels = Agglomerative::new(12, Linkage::Average).fit(&x);
        let mut sorted = labels.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 12);
    }

    #[test]
    fn k_one_merges_everything() {
        let (x, _) = blobs(5, 4);
        let labels = Agglomerative::new(1, Linkage::Complete).fit(&x);
        assert!(labels.iter().all(|&l| l == 0));
    }
}
