//! The Hungarian (Kuhn–Munkres) algorithm for optimal assignment.
//!
//! Clustering accuracy (ACC, §4.2 of the paper) requires the *best*
//! one-to-one mapping between predicted clusters and ground-truth classes;
//! that is a maximum-weight bipartite matching over the contingency matrix,
//! solved here in `O(n³)` with the potentials formulation.

/// Solves the minimum-cost assignment problem for an `n×m` cost matrix with
/// `n ≤ m` (each row assigned to a distinct column).
///
/// Returns `assign` with `assign[row] = col`.
///
/// # Panics
/// Panics if `n > m` or the matrix is ragged.
pub fn hungarian_min(cost: &[Vec<f64>]) -> Vec<usize> {
    let n = cost.len();
    if n == 0 {
        return Vec::new();
    }
    let m = cost[0].len();
    assert!(n <= m, "hungarian_min: need rows ({n}) <= cols ({m}); transpose the input");
    assert!(cost.iter().all(|r| r.len() == m), "hungarian_min: ragged cost matrix");

    const INF: f64 = f64::INFINITY;
    // 1-indexed potentials formulation (e-maxx). p[j]: column matched to row
    // way[j]: previous column on the alternating path.
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; m + 1];
    let mut p = vec![0usize; m + 1]; // p[j] = row matched to column j (0 = none)
    let mut way = vec![0usize; m + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![INF; m + 1];
        let mut used = vec![false; m + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = INF;
            let mut j1 = 0usize;
            for j in 1..=m {
                if !used[j] {
                    let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                    if cur < minv[j] {
                        minv[j] = cur;
                        way[j] = j0;
                    }
                    if minv[j] < delta {
                        delta = minv[j];
                        j1 = j;
                    }
                }
            }
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Augment along the path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut assign = vec![usize::MAX; n];
    for j in 1..=m {
        if p[j] != 0 {
            assign[p[j] - 1] = j - 1;
        }
    }
    debug_assert!(assign.iter().all(|&a| a != usize::MAX));
    assign
}

/// Maximum-weight assignment: negates the weights and calls
/// [`hungarian_min`]. Returns `assign[row] = col`.
pub fn hungarian_max(weight: &[Vec<f64>]) -> Vec<usize> {
    let neg: Vec<Vec<f64>> = weight.iter().map(|r| r.iter().map(|&w| -w).collect()).collect();
    hungarian_min(&neg)
}

/// Total cost of an assignment under a cost matrix.
pub fn assignment_cost(cost: &[Vec<f64>], assign: &[usize]) -> f64 {
    assign.iter().enumerate().map(|(i, &j)| cost[i][j]).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Brute force over all permutations (n ≤ 6).
    fn brute_force_min(cost: &[Vec<f64>]) -> f64 {
        fn rec(cost: &[Vec<f64>], row: usize, used: &mut Vec<bool>, acc: f64, best: &mut f64) {
            if row == cost.len() {
                *best = best.min(acc);
                return;
            }
            for j in 0..cost[0].len() {
                if !used[j] {
                    used[j] = true;
                    rec(cost, row + 1, used, acc + cost[row][j], best);
                    used[j] = false;
                }
            }
        }
        let mut best = f64::INFINITY;
        rec(cost, 0, &mut vec![false; cost[0].len()], 0.0, &mut best);
        best
    }

    #[test]
    fn simple_diagonal_case() {
        let cost = vec![vec![1.0, 9.0], vec![9.0, 1.0]];
        let a = hungarian_min(&cost);
        assert_eq!(a, vec![0, 1]);
        assert_eq!(assignment_cost(&cost, &a), 2.0);
    }

    #[test]
    fn forced_off_diagonal() {
        let cost = vec![vec![9.0, 1.0], vec![1.0, 9.0]];
        assert_eq!(hungarian_min(&cost), vec![1, 0]);
    }

    #[test]
    fn rectangular_more_columns() {
        let cost = vec![vec![5.0, 1.0, 9.0], vec![9.0, 9.0, 2.0]];
        let a = hungarian_min(&cost);
        assert_eq!(a, vec![1, 2]);
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        // Deterministic pseudo-random costs (LCG) to avoid a rand dep here.
        let mut state = 0x2545F4914F6CDD1Du64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 10.0
        };
        for n in 2..=5 {
            for _ in 0..20 {
                let cost: Vec<Vec<f64>> =
                    (0..n).map(|_| (0..n).map(|_| next()).collect()).collect();
                let a = hungarian_min(&cost);
                // Assignment must be a permutation.
                let mut seen = vec![false; n];
                for &j in &a {
                    assert!(!seen[j], "duplicate column in assignment");
                    seen[j] = true;
                }
                let got = assignment_cost(&cost, &a);
                let want = brute_force_min(&cost);
                assert!((got - want).abs() < 1e-9, "n={n}: got {got}, brute force {want}");
            }
        }
    }

    #[test]
    fn hungarian_max_picks_heaviest_matching() {
        let w = vec![vec![10.0, 1.0], vec![8.0, 7.0]];
        // Max: 10 + 7 = 17 (diag), vs 1 + 8 = 9.
        assert_eq!(hungarian_max(&w), vec![0, 1]);
    }

    #[test]
    fn empty_input() {
        assert!(hungarian_min(&[]).is_empty());
    }
}
