//! External clustering-quality metrics: ACC, ARI, NMI, and cluster-shape
//! statistics (paper §4.2 and §4.5 observation iv).

use std::collections::HashMap;

use crate::hungarian::hungarian_max;

/// Remaps arbitrary label values to dense `0..k` ids, returning the dense
/// labels and `k`.
pub fn densify_labels(labels: &[usize]) -> (Vec<usize>, usize) {
    let mut map = HashMap::new();
    let mut dense = Vec::with_capacity(labels.len());
    for &l in labels {
        let next = map.len();
        let id = *map.entry(l).or_insert(next);
        dense.push(id);
    }
    (dense, map.len())
}

/// Contingency matrix `C[i][j]` = number of points with predicted cluster
/// `i` and true class `j`.
///
/// # Panics
/// Panics if the label slices differ in length.
pub fn contingency(pred: &[usize], truth: &[usize]) -> Vec<Vec<usize>> {
    assert_eq!(pred.len(), truth.len(), "contingency: length mismatch");
    let (p, kp) = densify_labels(pred);
    let (t, kt) = densify_labels(truth);
    let mut c = vec![vec![0usize; kt]; kp];
    for (&pi, &ti) in p.iter().zip(&t) {
        c[pi][ti] += 1;
    }
    c
}

/// Clustering accuracy (ACC): the fraction of points correctly labelled
/// under the *best* one-to-one matching between predicted clusters and true
/// classes, found with the Hungarian algorithm. Ranges in [0, 1].
pub fn accuracy(pred: &[usize], truth: &[usize]) -> f64 {
    if pred.is_empty() {
        return 0.0;
    }
    let c = contingency(pred, truth);
    let (kp, kt) = (c.len(), c[0].len());
    // Hungarian needs rows ≤ cols; orient accordingly.
    let weights: Vec<Vec<f64>> = if kp <= kt {
        c.iter().map(|r| r.iter().map(|&x| x as f64).collect()).collect()
    } else {
        (0..kt).map(|j| (0..kp).map(|i| c[i][j] as f64).collect()).collect()
    };
    let assign = hungarian_max(&weights);
    let matched: f64 = assign
        .iter()
        .enumerate()
        .map(|(i, &j)| if kp <= kt { c[i][j] as f64 } else { c[j][i] as f64 })
        .sum();
    matched / pred.len() as f64
}

fn comb2(x: usize) -> f64 {
    (x as f64) * (x as f64 - 1.0) / 2.0
}

/// Adjusted Rand Index (ARI): chance-corrected pair-counting agreement.
/// 1 = identical partitions, ~0 = random, negative = worse than random.
pub fn adjusted_rand_index(pred: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "ARI: length mismatch");
    let n = pred.len();
    if n < 2 {
        return 1.0;
    }
    let c = contingency(pred, truth);
    let sum_ij: f64 = c.iter().flatten().map(|&x| comb2(x)).sum();
    let a: Vec<usize> = c.iter().map(|r| r.iter().sum()).collect();
    let b: Vec<usize> = (0..c[0].len()).map(|j| c.iter().map(|r| r[j]).sum()).collect();
    let sum_a: f64 = a.iter().map(|&x| comb2(x)).sum();
    let sum_b: f64 = b.iter().map(|&x| comb2(x)).sum();
    let total = comb2(n);
    let expected = sum_a * sum_b / total;
    let max_index = 0.5 * (sum_a + sum_b);
    if (max_index - expected).abs() < f64::EPSILON {
        // Degenerate: both partitions are single-cluster or all-singletons.
        return if (sum_ij - expected).abs() < f64::EPSILON { 1.0 } else { 0.0 };
    }
    (sum_ij - expected) / (max_index - expected)
}

/// Normalized Mutual Information with arithmetic-mean normalization.
/// Ranges in [0, 1].
pub fn normalized_mutual_info(pred: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "NMI: length mismatch");
    let n = pred.len() as f64;
    if pred.is_empty() {
        return 0.0;
    }
    let c = contingency(pred, truth);
    let a: Vec<f64> = c.iter().map(|r| r.iter().sum::<usize>() as f64).collect();
    let b: Vec<f64> = (0..c[0].len()).map(|j| c.iter().map(|r| r[j]).sum::<usize>() as f64).collect();
    let mut mi = 0.0;
    for (i, row) in c.iter().enumerate() {
        for (j, &nij) in row.iter().enumerate() {
            if nij > 0 {
                let nij = nij as f64;
                mi += (nij / n) * ((n * nij) / (a[i] * b[j])).ln();
            }
        }
    }
    let h = |v: &[f64]| -> f64 {
        v.iter().filter(|&&x| x > 0.0).map(|&x| -(x / n) * (x / n).ln()).sum()
    };
    let (ha, hb) = (h(&a), h(&b));
    if ha == 0.0 && hb == 0.0 {
        1.0
    } else if ha == 0.0 || hb == 0.0 {
        0.0
    } else {
        (mi / (0.5 * (ha + hb))).clamp(0.0, 1.0)
    }
}

/// Number of singleton ("unary") clusters in a labelling — the paper uses
/// this to argue TableDC avoids fragmenting entity-resolution clusters
/// (§4.5, observation iv).
pub fn unary_cluster_count(labels: &[usize]) -> usize {
    let mut counts: HashMap<usize, usize> = HashMap::new();
    for &l in labels {
        *counts.entry(l).or_insert(0) += 1;
    }
    counts.values().filter(|&&c| c == 1).count()
}

/// Number of distinct clusters in a labelling.
pub fn num_clusters(labels: &[usize]) -> usize {
    densify_labels(labels).1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acc_perfect_up_to_permutation() {
        let truth = vec![0, 0, 1, 1, 2, 2];
        let pred = vec![2, 2, 0, 0, 1, 1]; // same partition, renamed
        assert!((accuracy(&pred, &truth) - 1.0).abs() < 1e-12);
        assert!((adjusted_rand_index(&pred, &truth) - 1.0).abs() < 1e-12);
        assert!((normalized_mutual_info(&pred, &truth) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn acc_half_right() {
        let truth = vec![0, 0, 1, 1];
        let pred = vec![0, 1, 0, 1];
        assert!((accuracy(&pred, &truth) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn acc_more_predicted_clusters_than_truth() {
        let truth = vec![0, 0, 0, 1, 1, 1];
        let pred = vec![0, 0, 1, 2, 2, 2];
        // Best map: pred 0→truth 0 (2 right), pred 2→truth 1 (3 right);
        // pred 1 unmatched → 5/6.
        assert!((accuracy(&pred, &truth) - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn acc_more_truth_classes_than_predicted() {
        let truth = vec![0, 1, 2, 3];
        let pred = vec![0, 0, 1, 1];
        // Each predicted cluster can match one class → 2/4.
        assert!((accuracy(&pred, &truth) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ari_known_sklearn_value() {
        // sklearn doc example: ARI([0,0,1,1],[0,0,1,2]) = 0.5714285714...
        let ari = adjusted_rand_index(&[0, 0, 1, 2], &[0, 0, 1, 1]);
        assert!((ari - 0.5714285714285714).abs() < 1e-12, "ari = {ari}");
    }

    #[test]
    fn ari_random_labels_near_zero() {
        // Independent alternating vs block labels on 40 points.
        let truth: Vec<usize> = (0..40).map(|i| i / 20).collect();
        let pred: Vec<usize> = (0..40).map(|i| i % 2).collect();
        let ari = adjusted_rand_index(&pred, &truth);
        assert!(ari.abs() < 0.15, "ari = {ari}");
    }

    #[test]
    fn ari_single_cluster_against_itself_is_one() {
        let l = vec![0usize; 10];
        assert_eq!(adjusted_rand_index(&l, &l), 1.0);
    }

    #[test]
    fn ari_symmetry() {
        let a = vec![0, 0, 1, 1, 2, 2, 0, 1];
        let b = vec![0, 1, 1, 1, 2, 0, 0, 2];
        assert!(
            (adjusted_rand_index(&a, &b) - adjusted_rand_index(&b, &a)).abs() < 1e-12
        );
    }

    #[test]
    fn nmi_independent_labels_low() {
        let truth: Vec<usize> = (0..100).map(|i| i / 50).collect();
        let pred: Vec<usize> = (0..100).map(|i| i % 2).collect();
        assert!(normalized_mutual_info(&pred, &truth) < 0.05);
    }

    #[test]
    fn unary_clusters_counted() {
        assert_eq!(unary_cluster_count(&[0, 0, 1, 2, 2, 3]), 2); // {1}, {3}
        assert_eq!(num_clusters(&[5, 5, 9, 100]), 3);
    }

    #[test]
    fn contingency_shape() {
        let c = contingency(&[0, 0, 1], &[1, 1, 0]);
        assert_eq!(c, vec![vec![2, 0], vec![0, 1]]);
    }
}
