//! Lloyd's K-means with random or K-means++ seeding and restarts.
//!
//! Used as (a) a standard-clustering baseline (§4.1.2), (b) the cluster
//! initializer ablation of Figure 4, and (c) the final global-clustering
//! step of Birch.

use rand::rngs::StdRng;
use rand::Rng;
use tensor::distance::sq_euclidean_cdist;
use tensor::random::sample_without_replacement;
use tensor::Matrix;

/// Seeding strategy for K-means.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KMeansInit {
    /// Uniformly random distinct points.
    Random,
    /// K-means++ (D² sampling).
    PlusPlus,
}

/// K-means configuration.
#[derive(Debug, Clone)]
pub struct KMeans {
    /// Number of clusters.
    pub k: usize,
    /// Maximum Lloyd iterations per restart.
    pub max_iter: usize,
    /// Convergence threshold on centroid movement (squared Frobenius).
    pub tol: f64,
    /// Number of random restarts; the best inertia wins (§4.3 initializes
    /// 20 times for the K-means-based methods).
    pub n_init: usize,
    /// Seeding strategy.
    pub init: KMeansInit,
}

impl KMeans {
    /// Standard configuration: K-means++ seeding, 1 restart, 100 iterations.
    pub fn new(k: usize) -> Self {
        Self { k, max_iter: 100, tol: 1e-8, n_init: 1, init: KMeansInit::PlusPlus }
    }

    /// Configuration matching the paper's benchmark protocol (§4.3):
    /// 20 restarts, best solution kept.
    pub fn paper_protocol(k: usize) -> Self {
        Self { n_init: 20, ..Self::new(k) }
    }

    /// Runs K-means on the rows of `x`.
    ///
    /// # Panics
    /// Panics if `k == 0` or `k > n`.
    pub fn fit(&self, x: &Matrix, rng: &mut StdRng) -> KMeansResult {
        assert!(self.k > 0, "KMeans: k must be positive");
        assert!(self.k <= x.rows(), "KMeans: k = {} > n = {}", self.k, x.rows());
        let mut best: Option<KMeansResult> = None;
        for _ in 0..self.n_init.max(1) {
            let result = self.fit_once(x, rng);
            if best.as_ref().is_none_or(|b| result.inertia < b.inertia) {
                best = Some(result);
            }
        }
        best.expect("at least one restart ran")
    }

    fn fit_once(&self, x: &Matrix, rng: &mut StdRng) -> KMeansResult {
        let _fit_timer = obs::span!("kmeans.fit");
        let mut centroids = match self.init {
            KMeansInit::Random => {
                let idx = sample_without_replacement(x.rows(), self.k, rng);
                x.select_rows(&idx)
            }
            KMeansInit::PlusPlus => kmeans_pp_seeds(x, self.k, rng),
        };
        let mut labels = vec![0usize; x.rows()];
        let mut n_iter = 0;
        // Phase spans nest under kmeans.fit in the profile tree (and feed
        // the like-named histograms); they wrap the parallel kernels from
        // the outside, so the Lloyd iterates are untouched by
        // instrumentation.
        let iterations = obs::registry().counter("kmeans.iterations");
        for iter in 0..self.max_iter {
            n_iter = iter + 1;
            {
                let _assign = obs::span!("kmeans.assign");
                let d = sq_euclidean_cdist(x, &centroids);
                labels = d.argmax_rows_negated();
            }
            let shift = {
                let _update = obs::span!("kmeans.update");
                let next = centroids_from_labels(x, &labels, self.k, &centroids);
                let shift = next.max_abs_diff(&centroids);
                centroids = next;
                shift
            };
            iterations.inc();
            if shift < self.tol {
                break;
            }
        }
        let d = sq_euclidean_cdist(x, &centroids);
        labels = d.argmax_rows_negated();
        let inertia: f64 = labels.iter().enumerate().map(|(i, &l)| d[(i, l)]).sum();
        KMeansResult { labels, centroids, inertia, n_iter }
    }
}

/// Output of a K-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// Cluster index per row of the input.
    pub labels: Vec<usize>,
    /// `k × d` centroid matrix.
    pub centroids: Matrix,
    /// Sum of squared distances of each point to its centroid.
    pub inertia: f64,
    /// Lloyd iterations actually executed.
    pub n_iter: usize,
}

/// K-means++ (D² weighting) seed selection, exposed for reuse by the
/// Figure 4 initializer ablation.
pub fn kmeans_pp_seeds(x: &Matrix, k: usize, rng: &mut StdRng) -> Matrix {
    let n = x.rows();
    assert!(k >= 1 && k <= n, "kmeans++: bad k = {k} for n = {n}");
    let mut chosen = Vec::with_capacity(k);
    chosen.push(rng.gen_range(0..n));
    let mut min_d2: Vec<f64> = {
        let c0 = x.select_rows(&chosen);
        let d = sq_euclidean_cdist(x, &c0);
        (0..n).map(|i| d[(i, 0)]).collect()
    };
    while chosen.len() < k {
        let total: f64 = min_d2.iter().sum();
        let next = if total <= 0.0 {
            // All remaining points coincide with a centroid; pick any unused.
            (0..n).find(|i| !chosen.contains(i)).unwrap_or(0)
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut pick = n - 1;
            for (i, &d2) in min_d2.iter().enumerate() {
                target -= d2;
                if target <= 0.0 {
                    pick = i;
                    break;
                }
            }
            pick
        };
        chosen.push(next);
        let c = x.select_rows(&[next]);
        let d = sq_euclidean_cdist(x, &c);
        for i in 0..n {
            min_d2[i] = min_d2[i].min(d[(i, 0)]);
        }
    }
    x.select_rows(&chosen)
}

/// Row chunk size for the centroid-accumulation reduction. Fixed (never
/// derived from the thread count) so the reduction tree shape — and thus the
/// floating-point result — depends only on `n`.
const CENTROID_CHUNK: usize = 1024;

/// Computes centroids as per-cluster means; clusters that lose all members
/// keep their previous centroid (standard empty-cluster handling).
///
/// Accumulation runs as a fixed-shape parallel reduction over row chunks on
/// the [`runtime::global`] pool; results are bit-identical for every thread
/// count (including `TABLEDC_THREADS=1`).
pub fn centroids_from_labels(x: &Matrix, labels: &[usize], k: usize, previous: &Matrix) -> Matrix {
    let d = x.cols();
    let acc = runtime::par_reduce(
        runtime::global(),
        labels.len(),
        CENTROID_CHUNK,
        |range| {
            let mut sums = Matrix::zeros(k, d);
            let mut counts = vec![0usize; k];
            for i in range {
                let l = labels[i];
                counts[l] += 1;
                for (s, &v) in sums.row_mut(l).iter_mut().zip(x.row(i)) {
                    *s += v;
                }
            }
            (sums, counts)
        },
        |(mut sa, mut ca), (sb, cb)| {
            for (a, b) in sa.as_mut_slice().iter_mut().zip(sb.as_slice()) {
                *a += b;
            }
            for (a, b) in ca.iter_mut().zip(cb) {
                *a += b;
            }
            (sa, ca)
        },
    );
    let (mut sums, counts) = acc.unwrap_or_else(|| (Matrix::zeros(k, d), vec![0usize; k]));
    for c in 0..k {
        if counts[c] > 0 {
            let inv = 1.0 / counts[c] as f64;
            for v in sums.row_mut(c) {
                *v *= inv;
            }
        } else {
            sums.row_mut(c).copy_from_slice(previous.row(c));
        }
    }
    sums
}

/// Helper: argmin per row expressed through `argmax_rows` of the negation.
trait ArgminRows {
    fn argmax_rows_negated(&self) -> Vec<usize>;
}

impl ArgminRows for Matrix {
    fn argmax_rows_negated(&self) -> Vec<usize> {
        let n = self.rows();
        let mut out = vec![0usize; n];
        if n == 0 || self.cols() == 0 {
            return out;
        }
        let pool = runtime::global();
        let block = runtime::block_rows(n, pool.threads(), 256);
        runtime::par_for_rows(pool, &mut out, 1, block, |first_row, chunk| {
            for (r, slot) in chunk.iter_mut().enumerate() {
                let row = self.row(first_row + r);
                let mut best = 0;
                for (j, &x) in row.iter().enumerate().skip(1) {
                    if x < row[best] {
                        best = j;
                    }
                }
                *slot = best;
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{accuracy, adjusted_rand_index};
    use tensor::random::{randn, rng};

    /// Three well-separated Gaussian blobs.
    fn blobs(n_per: usize, seed: u64) -> (Matrix, Vec<usize>) {
        let mut r = rng(seed);
        let centers = [[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]];
        let mut rows = Vec::new();
        let mut truth = Vec::new();
        for (ci, c) in centers.iter().enumerate() {
            for _ in 0..n_per {
                let noise = randn(1, 2, &mut r);
                rows.push(vec![c[0] + noise[(0, 0)], c[1] + noise[(0, 1)]]);
                truth.push(ci);
            }
        }
        (Matrix::from_row_vecs(&rows), truth)
    }

    #[test]
    fn recovers_separated_blobs() {
        let (x, truth) = blobs(30, 1);
        let result = KMeans::new(3).fit(&x, &mut rng(2));
        assert!(accuracy(&result.labels, &truth) > 0.95);
        assert!(adjusted_rand_index(&result.labels, &truth) > 0.9);
    }

    #[test]
    fn inertia_improves_with_restarts() {
        let (x, _) = blobs(20, 3);
        let mut r1 = rng(4);
        let single = KMeans { n_init: 1, init: KMeansInit::Random, ..KMeans::new(3) }.fit(&x, &mut r1);
        let mut r2 = rng(4);
        let multi = KMeans { n_init: 10, init: KMeansInit::Random, ..KMeans::new(3) }.fit(&x, &mut r2);
        assert!(multi.inertia <= single.inertia + 1e-9);
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let x = Matrix::from_rows(&[&[0.0, 0.0], &[5.0, 5.0], &[9.0, 1.0]]);
        let result = KMeans::new(3).fit(&x, &mut rng(5));
        assert!(result.inertia < 1e-18);
    }

    #[test]
    fn kmeans_pp_prefers_spread_seeds() {
        let (x, _) = blobs(25, 6);
        // With ++ seeding, the three seeds should land in distinct blobs
        // nearly always; verify via seed pairwise distances.
        let seeds = kmeans_pp_seeds(&x, 3, &mut rng(7));
        let d = sq_euclidean_cdist(&seeds, &seeds);
        let mut min_off = f64::INFINITY;
        for i in 0..3 {
            for j in 0..3 {
                if i != j {
                    min_off = min_off.min(d[(i, j)]);
                }
            }
        }
        assert!(min_off > 25.0, "seeds too close: {min_off}");
    }

    #[test]
    fn labels_are_in_range_and_assign_nearest() {
        let (x, _) = blobs(10, 8);
        let result = KMeans::new(3).fit(&x, &mut rng(9));
        assert!(result.labels.iter().all(|&l| l < 3));
        let d = sq_euclidean_cdist(&x, &result.centroids);
        for (i, &l) in result.labels.iter().enumerate() {
            for j in 0..3 {
                assert!(d[(i, l)] <= d[(i, j)] + 1e-12);
            }
        }
    }

    #[test]
    fn empty_cluster_keeps_previous_centroid() {
        let x = Matrix::from_rows(&[&[0.0], &[1.0]]);
        let prev = Matrix::from_rows(&[&[0.0], &[1.0], &[99.0]]);
        let c = centroids_from_labels(&x, &[0, 1], 3, &prev);
        assert_eq!(c[(2, 0)], 99.0);
    }

    #[test]
    #[should_panic(expected = "k = 5 > n = 2")]
    fn rejects_k_bigger_than_n() {
        let x = Matrix::zeros(2, 2);
        let _ = KMeans::new(5).fit(&x, &mut rng(0));
    }
}
