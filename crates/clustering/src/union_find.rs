//! Disjoint-set union and connected-component clustering.
//!
//! The bespoke baselines cluster by thresholding a similarity graph and
//! taking connected components: Starmie's table grouping (§4.7.1) and
//! JedAI's entity clusters (§4.7.2) both use this primitive.

/// Disjoint-set forest with path compression and union by rank.
#[derive(Debug, Clone)]
pub struct UnionFind {
    parent: Vec<usize>,
    rank: Vec<u8>,
    components: usize,
}

impl UnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self { parent: (0..n).collect(), rank: vec![0; n], components: n }
    }

    /// Representative of the set containing `x`.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets containing `a` and `b`; returns true if they were
    /// previously disjoint.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] { (ra, rb) } else { (rb, ra) };
        self.parent[lo] = hi;
        if self.rank[ra] == self.rank[rb] {
            self.rank[hi] += 1;
        }
        self.components -= 1;
        true
    }

    /// True if `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Dense component labels in `0..component_count()`.
    pub fn labels(&mut self) -> Vec<usize> {
        let n = self.parent.len();
        let mut map = std::collections::HashMap::new();
        let mut labels = Vec::with_capacity(n);
        for i in 0..n {
            let root = self.find(i);
            let next = map.len();
            labels.push(*map.entry(root).or_insert(next));
        }
        labels
    }
}

/// Clusters `n` items by connecting every pair listed in `edges` and
/// returning dense component labels.
pub fn connected_components(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Vec<usize> {
    let mut uf = UnionFind::new(n);
    for (a, b) in edges {
        uf.union(a, b);
    }
    uf.labels()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_then_unions() {
        let mut uf = UnionFind::new(5);
        assert_eq!(uf.component_count(), 5);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2)); // already connected
        assert_eq!(uf.component_count(), 3);
        assert!(uf.connected(0, 2));
        assert!(!uf.connected(0, 3));
    }

    #[test]
    fn labels_are_dense_and_consistent() {
        let labels = connected_components(6, [(0, 1), (2, 3), (3, 4)]);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[2]);
        assert_ne!(labels[5], labels[0]);
        assert!(labels.iter().all(|&l| l < 3));
    }

    #[test]
    fn no_edges_gives_identity() {
        let labels = connected_components(4, []);
        assert_eq!(labels, vec![0, 1, 2, 3]);
    }

    #[test]
    fn chain_collapses_to_one() {
        let labels = connected_components(100, (0..99).map(|i| (i, i + 1)));
        assert!(labels.iter().all(|&l| l == 0));
    }
}
