//! Embedding-model simulators.
//!
//! The paper feeds TableDC embeddings from six pretrained models (SBERT,
//! FastText, USE, T5, TabTransformer, EmbDi — §4.1.3). Those models are not
//! available here, so each is simulated as a combination of:
//!
//! 1. a **lexical** component — a real hash-n-gram (FastText-style subword)
//!    encoding of the item's actual text, capturing syntactic similarity;
//! 2. a **semantic** component — a latent direction per ground-truth
//!    concept plus per-item noise, standing in for what a pretrained
//!    language model recovers about *meaning*; its weight calibrates each
//!    simulated model's semantic quality to the ordering the paper observes
//!    (SBERT ≳ T5 > USE ≳ FastText ≫ TabTransformer, with EmbDi
//!    structural/lexical-heavy);
//! 3. a feature-mixing matrix that correlates output dimensions — the
//!    "dense, correlated embedding" property (§1 property i) that motivates
//!    the Mahalanobis distance.
//!
//! TableDC and the baselines only ever see the resulting `n × d` matrix, so
//! this substitution exercises the identical code path as real embeddings
//! (see DESIGN.md §1).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tensor::random::{randn, rng};
use tensor::Matrix;

use crate::corpus::Corpus;
use crate::text::{char_ngrams, fnv1a};

/// The embedding models of §4.1.3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EmbeddingModel {
    /// Sentence-BERT on schema-level text.
    Sbert,
    /// Sentence-BERT on instance-level text (rows serialized with [SEP]),
    /// marked `SBERT*` in Tables 2 and 4.
    SbertInstance,
    /// FastText (subword n-grams).
    FastText,
    /// Universal Sentence Encoder.
    Use,
    /// T5 encoder embeddings (`T5*` in Table 4).
    T5,
    /// TabTransformer fine-tuned on instances (`TT*` in Table 2).
    TabTransformer,
    /// EmbDi graph-based row embeddings.
    EmbDi,
}

impl EmbeddingModel {
    /// Simulation profile for this model family.
    pub fn profile(self) -> EncoderProfile {
        match self {
            EmbeddingModel::Sbert => {
                EncoderProfile { dim: 160, semantic: 1.0, lexical: 0.35, noise: 1.7, ambiguity: 0.30, semantic_rank: 0, outliers: 0.12, bridge: 0.06, density_spread: 2.5, entangle: 0.7 }
            }
            EmbeddingModel::SbertInstance => {
                EncoderProfile { dim: 160, semantic: 0.85, lexical: 0.45, noise: 1.9, ambiguity: 0.35, semantic_rank: 0, outliers: 0.12, bridge: 0.06, density_spread: 2.5, entangle: 0.7 }
            }
            EmbeddingModel::FastText => {
                EncoderProfile { dim: 160, semantic: 0.60, lexical: 0.70, noise: 1.9, ambiguity: 0.40, semantic_rank: 0, outliers: 0.12, bridge: 0.06, density_spread: 2.5, entangle: 0.65 }
            }
            EmbeddingModel::Use => {
                EncoderProfile { dim: 160, semantic: 0.75, lexical: 0.40, noise: 2.0, ambiguity: 0.40, semantic_rank: 0, outliers: 0.12, bridge: 0.06, density_spread: 2.5, entangle: 0.7 }
            }
            EmbeddingModel::T5 => {
                EncoderProfile { dim: 160, semantic: 0.90, lexical: 0.40, noise: 1.8, ambiguity: 0.32, semantic_rank: 0, outliers: 0.12, bridge: 0.06, density_spread: 2.5, entangle: 0.7 }
            }
            EmbeddingModel::TabTransformer => {
                EncoderProfile { dim: 160, semantic: 0.15, lexical: 0.35, noise: 3.0, ambiguity: 0.60, semantic_rank: 0, outliers: 0.12, bridge: 0.06, density_spread: 2.5, entangle: 0.7 }
            }
            EmbeddingModel::EmbDi => {
                EncoderProfile { dim: 160, semantic: 0.50, lexical: 0.80, noise: 1.7, ambiguity: 0.35, semantic_rank: 0, outliers: 0.12, bridge: 0.06, density_spread: 2.5, entangle: 0.65 }
            }
        }
    }

    /// Short display name matching the paper's table headers.
    pub fn name(self) -> &'static str {
        match self {
            EmbeddingModel::Sbert => "SBERT",
            EmbeddingModel::SbertInstance => "SBERT*",
            EmbeddingModel::FastText => "FastText",
            EmbeddingModel::Use => "USE",
            EmbeddingModel::T5 => "T5*",
            EmbeddingModel::TabTransformer => "TT*",
            EmbeddingModel::EmbDi => "EmbDi",
        }
    }
}

/// Geometry knobs of a simulated embedding model.
#[derive(Debug, Clone, Copy)]
pub struct EncoderProfile {
    /// Output dimension.
    pub dim: usize,
    /// Weight of the latent semantic component.
    pub semantic: f64,
    /// Weight of the lexical (hash-n-gram) component.
    pub lexical: f64,
    /// Weight of i.i.d. per-item noise (the noise component has unit norm
    /// before weighting, so `noise` is directly comparable to `semantic`).
    pub noise: f64,
    /// Fraction of items whose semantic reading blends a *second* concept
    /// (55/45) — the genuinely ambiguous, cluster-overlapping objects of
    /// §1 property ii (e.g. a table equally about `RadioStation` and
    /// `Country`).
    pub ambiguity: f64,
    /// Rank of the subspace the concept directions span; `0` selects the
    /// automatic rank `clamp(k, 16, dim/4)`. Real semantic spaces are
    /// low-rank relative to the embedding dimension, which is exactly why
    /// bottleneck autoencoders can separate semantics from isotropic
    /// noise.
    pub semantic_rank: usize,
    /// Fraction of items that are *outliers*: their noise is drawn at 3.5×
    /// scale, giving the corpus the heavy-tailed error distribution of real
    /// scraped data (missing instances, unit mismatches, duplicates — §3).
    /// Outliers are what separates the Cauchy kernel from thin-tailed ones.
    pub outliers: f64,
    /// Fraction of items that *bridge* concepts: an even three-concept
    /// semantic blend. Bridges chain clusters together for density-based
    /// methods while remaining assignable for centroid methods.
    pub bridge: f64,
    /// Ratio between the largest and smallest per-concept noise scale
    /// (1.0 = uniform density). Real corpora mix dense, homogeneous
    /// concepts with sparse heterogeneous ones — the variable-density
    /// regime in which single-radius methods (DBSCAN) fail.
    pub density_spread: f64,
    /// Strength of the fixed random nonlinear mixing applied to the final
    /// embedding (0 = purely linear composition, 1 = fully entangled):
    /// pretrained encoders entangle semantic factors nonlinearly across
    /// dimensions, which is precisely what gives representation-learning
    /// methods room to beat raw-space clustering.
    pub entangle: f64,
}

/// Pure lexical encoder: character-trigram counts hashed into `dim`
/// buckets with signed hashing, then L2-normalized. This is a *real*
/// text encoder (no ground-truth input) — it is also used directly by the
/// bespoke syntactic baselines (D3L, Starmie's base encoder, JedAI
/// token similarities).
pub fn hash_ngram_embed(texts: &[&str], dim: usize, n: usize) -> Matrix {
    assert!(dim > 0 && n > 0, "hash_ngram_embed: dim and n must be positive");
    let mut out = Matrix::zeros(texts.len(), dim);
    for (i, text) in texts.iter().enumerate() {
        let row = out.row_mut(i);
        for token in text.split_whitespace() {
            for gram in char_ngrams(token, n) {
                let h = fnv1a(&gram);
                let bucket = (h % dim as u64) as usize;
                let sign = if (h >> 63) == 0 { 1.0 } else { -1.0 };
                row[bucket] += sign;
            }
        }
    }
    out.normalize_rows()
}

/// Embeds a corpus with a simulated model. Deterministic for a given
/// `(corpus, model, seed)`.
pub fn embed_corpus(corpus: &Corpus, model: EmbeddingModel, seed: u64) -> Matrix {
    let profile = model.profile();
    embed_corpus_with(corpus, profile, model as u64 ^ seed)
}

/// Embeds a corpus with an explicit profile (for geometry sweeps).
pub fn embed_corpus_with(corpus: &Corpus, profile: EncoderProfile, seed: u64) -> Matrix {
    let dim = profile.dim;
    let texts = corpus.texts();
    let lexical = hash_ngram_embed(&texts, dim, 3);

    let mut r = rng(seed);
    // Latent semantic direction per ground-truth concept, drawn from a
    // low-rank subspace (semantic_rank base factors mixed into dim), unit
    // norm per concept.
    let concept_dirs = {
        let auto = corpus.k.clamp(16, (dim / 4).max(1));
        let rank = if profile.semantic_rank == 0 { auto } else { profile.semantic_rank }.clamp(1, dim);
        let factors = randn(corpus.k, rank, &mut r);
        let basis = randn(rank, dim, &mut r);
        factors.matmul(&basis).normalize_rows()
    };
    // Feature-mixing matrix: correlates output dimensions (density).
    let mixing = {
        let m = randn(dim, dim, &mut r);
        // Blend with identity so the mixing is mild but real.
        let mut blended = Matrix::identity(dim);
        for i in 0..dim {
            for j in 0..dim {
                blended[(i, j)] += 0.25 * m[(i, j)] / (dim as f64).sqrt();
            }
        }
        blended
    };

    // Per-concept density multipliers: log-uniform in
    // [1/sqrt(spread), sqrt(spread)].
    let density: Vec<f64> = {
        use rand::Rng;
        let spread = profile.density_spread.max(1.0);
        let half = spread.sqrt().ln();
        (0..corpus.k).map(|_| (r.gen_range(-half..=half.max(1e-9))).exp()).collect()
    };
    let inv_sqrt_dim = 1.0 / (dim as f64).sqrt();

    // Fixed random nonlinear mixing (tanh two-layer map): real pretrained
    // encoders entangle latent semantics across output dimensions, so the
    // cluster structure is not axis-aligned or linearly separable in the
    // raw space. The *clean* part of each embedding (semantics + lexical
    // evidence) is warped through it; per-item noise is added afterwards in
    // the output space, which matches how encoder idiosyncrasies behave and
    // leaves a low-dimensional clean manifold for representation learners
    // to recover.
    let w1 = {
        let mut w = randn(dim, dim, &mut r);
        w.map_inplace(|v| v * (2.0 / dim as f64).sqrt());
        w
    };
    let w2 = {
        let mut w = randn(dim, dim, &mut r);
        w.map_inplace(|v| v * (2.0 / dim as f64).sqrt());
        w
    };

    let mut clean = Matrix::zeros(corpus.items.len(), dim);
    let mut noise_rows = Matrix::zeros(corpus.items.len(), dim);
    for (i, item) in corpus.items.iter().enumerate() {
        // Per-item RNG keyed by the item text so re-encoding the same text
        // yields the same "semantic reading" of it.
        let mut ir = StdRng::seed_from_u64(seed ^ fnv1a(&item.text));
        let item_noise = randn(1, dim, &mut ir);
        // Semantic mixture: plain item (own concept), ambiguous item
        // (55/45 blend of two), or bridge item (even blend of three).
        let roll: f64 = ir.gen();
        let mut blend: Vec<(usize, f64)> = vec![(item.label, 1.0)];
        if corpus.k > 1 && roll < profile.bridge {
            let o1 = (item.label + 1 + ir.gen_range(0..corpus.k - 1)) % corpus.k;
            let o2 = (item.label + 1 + ir.gen_range(0..corpus.k - 1)) % corpus.k;
            blend = vec![(item.label, 0.34), (o1, 0.33), (o2, 0.33)];
        } else if corpus.k > 1 && roll < profile.bridge + profile.ambiguity {
            let o = (item.label + 1 + ir.gen_range(0..corpus.k - 1)) % corpus.k;
            blend = vec![(item.label, 0.55), (o, 0.45)];
        }
        // Heavy tail: a fraction of items carries 3.5x noise.
        let outlier_scale = if ir.gen::<f64>() < profile.outliers { 3.5 } else { 1.0 };
        let crow = clean.row_mut(i);
        for j in 0..dim {
            let sem: f64 = blend.iter().map(|&(c, w)| w * concept_dirs[(c, j)]).sum();
            crow[j] = profile.semantic * sem + profile.lexical * lexical[(i, j)];
        }
        let nrow = noise_rows.row_mut(i);
        for j in 0..dim {
            // Noise norm is ~1 before the profile weight, making `noise`
            // comparable to `semantic`.
            nrow[j] = profile.noise
                * density[item.label]
                * outlier_scale
                * item_noise[(0, j)]
                * inv_sqrt_dim;
        }
    }

    // Correlate the clean part linearly, blend in the nonlinear warp, then
    // add output-space noise and normalize onto the sphere (sentence
    // encoders produce unit-norm-ish dense vectors).
    let linear = clean.matmul(&mixing);
    let e = profile.entangle;
    let warped_clean = if e > 0.0 {
        let hidden = (&linear * 2.0).matmul(&w1).map(f64::tanh);
        let warped = hidden.matmul(&w2);
        &(&linear * (1.0 - e)) + &(&warped * e)
    } else {
        linear
    };
    (&warped_clean + &noise_rows).normalize_rows()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{domain_corpus, DomainCorpusConfig};
    use tensor::distance::cosine_similarity;

    #[test]
    fn hash_embed_is_deterministic_and_unit_norm() {
        let texts = vec!["hello world", "hello word", "completely different text"];
        let a = hash_ngram_embed(&texts, 32, 3);
        let b = hash_ngram_embed(&texts, 32, 3);
        assert_eq!(a, b);
        for row in a.row_iter() {
            let norm: f64 = row.iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn hash_embed_reflects_lexical_similarity() {
        let texts = vec!["manchester united kingdom", "manchester england", "kamera zoom lens"];
        let e = hash_ngram_embed(&texts, 64, 3);
        let sim_close = cosine_similarity(e.row(0), e.row(1));
        let sim_far = cosine_similarity(e.row(0), e.row(2));
        assert!(sim_close > sim_far, "{sim_close} vs {sim_far}");
    }

    #[test]
    fn corpus_embeddings_cluster_by_label() {
        let corpus = domain_corpus(
            &DomainCorpusConfig { n_columns: 60, n_domains: 6, ..Default::default() },
            &mut tensor::random::rng(1),
        );
        let x = embed_corpus(&corpus, EmbeddingModel::Sbert, 7);
        assert_eq!(x.shape(), (60, 160));
        // Mean within-label cosine similarity should exceed across-label.
        let labels = corpus.labels();
        let mut within = (0.0, 0usize);
        let mut across = (0.0, 0usize);
        for i in 0..60 {
            for j in (i + 1)..60 {
                let s = cosine_similarity(x.row(i), x.row(j));
                if labels[i] == labels[j] {
                    within.0 += s;
                    within.1 += 1;
                } else {
                    across.0 += s;
                    across.1 += 1;
                }
            }
        }
        let w = within.0 / within.1 as f64;
        let a = across.0 / across.1 as f64;
        // The calibrated geometry is deliberately hard (noise ≈ 1.7× the
        // semantic norm, nonlinear entanglement), so the mean cosine gap is
        // small — it just has to be clearly positive.
        assert!(w > a + 0.02, "within {w} vs across {a}");
    }

    #[test]
    fn model_quality_ordering_sbert_above_tabtransformer() {
        // The separation of the SBERT simulation must exceed
        // TabTransformer's — the geometry behind Table 2's ordering.
        let corpus = domain_corpus(
            &DomainCorpusConfig { n_columns: 80, n_domains: 8, ..Default::default() },
            &mut tensor::random::rng(2),
        );
        let gap = |model: EmbeddingModel| {
            let x = embed_corpus(&corpus, model, 3);
            let labels = corpus.labels();
            let mut within = (0.0, 0usize);
            let mut across = (0.0, 0usize);
            for i in 0..x.rows() {
                for j in (i + 1)..x.rows() {
                    let s = cosine_similarity(x.row(i), x.row(j));
                    if labels[i] == labels[j] {
                        within.0 += s;
                        within.1 += 1;
                    } else {
                        across.0 += s;
                        across.1 += 1;
                    }
                }
            }
            within.0 / within.1 as f64 - across.0 / across.1 as f64
        };
        assert!(gap(EmbeddingModel::Sbert) > gap(EmbeddingModel::TabTransformer) + 0.05);
    }

    #[test]
    fn same_text_same_embedding() {
        // Two items with identical text and label embed identically.
        let corpus = Corpus {
            items: vec![
                crate::corpus::TextItem { text: "alpha beta".into(), label: 0 },
                crate::corpus::TextItem { text: "alpha beta".into(), label: 0 },
            ],
            k: 1,
        };
        let x = embed_corpus(&corpus, EmbeddingModel::Sbert, 11);
        assert!(x.row(0).iter().zip(x.row(1)).all(|(a, b)| (a - b).abs() < 1e-12));
    }
}
