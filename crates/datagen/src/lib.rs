//! # datagen — synthetic workloads for the TableDC reproduction
//!
//! The paper's datasets and embedding models are unavailable (see
//! DESIGN.md §1), so this crate builds their closest synthetic equivalents:
//!
//! * [`mixture`] — Gaussian-mixture embedding generators with explicit
//!   density / overlap / correlation / imbalance knobs (§1 properties
//!   i–iii), plus the Figure 3 scalability workload;
//! * [`text`] + [`corpus`] — synthetic tabular corpora (tables, records,
//!   columns) with ground-truth structure for the three tasks;
//! * [`encoders`] — simulated embedding models (SBERT, FastText, USE, T5,
//!   TabTransformer, EmbDi) over those corpora;
//! * [`profiles`] — the six Table 1 dataset profiles at paper scale or
//!   CPU-friendly scale.

pub mod corpus;
pub mod encoders;
pub mod mixture;
pub mod profiles;
pub mod text;

pub use corpus::{Corpus, TextItem};
pub use encoders::{embed_corpus, hash_ngram_embed, EmbeddingModel, EncoderProfile};
pub use mixture::{generate_mixture, scalability_workload, Generated, MixtureConfig, SizeDistribution};
pub use profiles::{Dataset, Profile, Scale, Task};

#[cfg(test)]
mod integration {
    use clustering::KMeans;
    use clustering::metrics::accuracy;
    use tensor::random::rng;

    use crate::profiles::{Profile, Scale};
    use crate::EmbeddingModel;

    /// End-to-end sanity: the generated workloads must be *clusterable but
    /// not trivial* — K-means on SBERT-like embeddings should beat chance
    /// comfortably yet stay below perfect, leaving headroom for deep
    /// methods (the regime of Tables 2–4).
    #[test]
    fn workloads_are_nontrivial() {
        let d = Profile::WebTables.dataset(EmbeddingModel::Sbert, Scale::Scaled, 5);
        let km = KMeans::new(d.k).fit(&d.x, &mut rng(1));
        let acc = accuracy(&km.labels, &d.labels);
        let chance = 1.0 / d.k as f64;
        assert!(acc > chance * 3.0, "K-means acc {acc} barely above chance");
        assert!(acc < 0.98, "workload is trivially separable (acc {acc})");
    }
}
