//! Deterministic synthetic text primitives: word generation and the
//! perturbations (typos, abbreviations, case/unit changes) that make
//! entity-resolution and domain-discovery corpora heterogeneous.

use rand::rngs::StdRng;
use rand::Rng;

const CONSONANTS: &[u8] = b"bcdfghjklmnpqrstvwz";
const VOWELS: &[u8] = b"aeiou";

/// Generates a pronounceable pseudo-word of `syllables` syllables.
pub fn pseudo_word(syllables: usize, rng: &mut StdRng) -> String {
    let mut s = String::with_capacity(syllables * 2);
    for _ in 0..syllables.max(1) {
        s.push(CONSONANTS[rng.gen_range(0..CONSONANTS.len())] as char);
        s.push(VOWELS[rng.gen_range(0..VOWELS.len())] as char);
    }
    s
}

/// Generates a multi-token phrase (e.g. an attribute name or entity name).
pub fn pseudo_phrase(words: usize, rng: &mut StdRng) -> String {
    (0..words.max(1))
        .map(|_| pseudo_word(rng.gen_range(1..=3), rng))
        .collect::<Vec<_>>()
        .join(" ")
}

/// Applies a random typo: swap, drop, duplicate, or replace one character.
pub fn typo(s: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = s.chars().collect();
    if chars.len() < 2 {
        return s.to_string();
    }
    let i = rng.gen_range(0..chars.len() - 1);
    let mut out = chars.clone();
    match rng.gen_range(0..4u8) {
        0 => out.swap(i, i + 1),
        1 => {
            out.remove(i);
        }
        2 => out.insert(i, chars[i]),
        _ => out[i] = CONSONANTS[rng.gen_range(0..CONSONANTS.len())] as char,
    }
    out.into_iter().collect()
}

/// Abbreviates a phrase: keeps the first `keep` characters of each token.
pub fn abbreviate(s: &str, keep: usize) -> String {
    s.split_whitespace()
        .map(|tok| tok.chars().take(keep.max(1)).collect::<String>())
        .collect::<Vec<_>>()
        .join(" ")
}

/// Randomly perturbs a value string the way heterogeneous sources do:
/// identity, typo, abbreviation, case change, or token reorder
/// (the "similar tables with different unit measurements" noise of §3).
pub fn perturb_value(s: &str, strength: f64, rng: &mut StdRng) -> String {
    if rng.gen::<f64>() >= strength {
        return s.to_string();
    }
    match rng.gen_range(0..4u8) {
        0 => typo(s, rng),
        1 => abbreviate(s, 4),
        2 => s.to_uppercase(),
        _ => {
            let mut toks: Vec<&str> = s.split_whitespace().collect();
            if toks.len() > 1 {
                toks.reverse();
            }
            toks.join(" ")
        }
    }
}

/// Character n-grams of a string (with boundary padding), the FastText-style
/// subword units consumed by the hash encoders.
pub fn char_ngrams(s: &str, n: usize) -> Vec<String> {
    let padded: Vec<char> = std::iter::once('<')
        .chain(s.chars().flat_map(|c| c.to_lowercase()))
        .chain(std::iter::once('>'))
        .collect();
    if padded.len() < n {
        return vec![padded.iter().collect()];
    }
    padded.windows(n).map(|w| w.iter().collect()).collect()
}

/// FNV-1a hash of a string — the stable bucket hash for the encoders.
pub fn fnv1a(s: &str) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for b in s.as_bytes() {
        hash ^= u64::from(*b);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::random::rng;

    #[test]
    fn pseudo_words_are_plausible() {
        let mut r = rng(1);
        let w = pseudo_word(3, &mut r);
        assert_eq!(w.len(), 6);
        assert!(w.chars().all(|c| c.is_ascii_lowercase()));
    }

    #[test]
    fn typo_changes_string_slightly() {
        let mut r = rng(2);
        let original = "manchester";
        let mutated = typo(original, &mut r);
        assert_ne!(mutated, "");
        let len_diff = (mutated.len() as i64 - original.len() as i64).abs();
        assert!(len_diff <= 1);
    }

    #[test]
    fn abbreviate_keeps_prefixes() {
        assert_eq!(abbreviate("united kingdom", 4), "unit king");
        assert_eq!(abbreviate("uk", 4), "uk");
    }

    #[test]
    fn perturb_with_zero_strength_is_identity() {
        let mut r = rng(3);
        assert_eq!(perturb_value("hello world", 0.0, &mut r), "hello world");
    }

    #[test]
    fn ngrams_cover_string() {
        let grams = char_ngrams("ab", 3);
        assert_eq!(grams, vec!["<ab", "ab>"]);
        let short = char_ngrams("a", 5);
        assert_eq!(short, vec!["<a>"]);
    }

    #[test]
    fn fnv_is_stable_and_spreads() {
        assert_eq!(fnv1a("abc"), fnv1a("abc"));
        assert_ne!(fnv1a("abc"), fnv1a("abd"));
    }
}
