//! Synthetic tabular corpora for the three data-integration tasks.
//!
//! Each generator produces raw *textual* objects (tables, records, or
//! columns) with ground-truth cluster structure, mirroring the benchmark
//! datasets of Table 1:
//!
//! * **Schema inference** — tables drawn from latent schema *types*; tables
//!   of the same type share (noisy subsets of) attribute names, as in web
//!   tables / TUS.
//! * **Entity resolution** — entity records duplicated across 2–5 sources
//!   with typos/abbreviations/reorderings, as in MusicBrainz / GeoSet.
//! * **Domain discovery** — columns whose values are drawn from latent
//!   semantic *domains* with heterogeneous headers, as in Di2KG
//!   Camera / Monitor.

use rand::rngs::StdRng;
use rand::Rng;

use crate::mixture::SizeDistribution;
use crate::text::{perturb_value, pseudo_phrase, pseudo_word};

/// A textual object to be embedded, with its ground-truth cluster.
#[derive(Debug, Clone)]
pub struct TextItem {
    /// Concatenated text of the object (headers, values, …).
    pub text: String,
    /// Ground-truth cluster (schema type / entity id / domain id).
    pub label: usize,
}

/// A corpus of text items for one task.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// The items, in generation order.
    pub items: Vec<TextItem>,
    /// Number of ground-truth clusters.
    pub k: usize,
}

impl Corpus {
    /// Ground-truth labels in item order.
    pub fn labels(&self) -> Vec<usize> {
        self.items.iter().map(|i| i.label).collect()
    }

    /// Item texts in order.
    pub fn texts(&self) -> Vec<&str> {
        self.items.iter().map(|i| i.text.as_str()).collect()
    }
}

/// Configuration for a schema-inference corpus.
#[derive(Debug, Clone)]
pub struct SchemaCorpusConfig {
    /// Number of tables.
    pub n_tables: usize,
    /// Number of latent schema types (= clusters).
    pub n_types: usize,
    /// Attributes per schema type.
    pub attrs_per_type: usize,
    /// Fraction of a type's attributes a table actually exhibits.
    pub attr_coverage: f64,
    /// Fraction of attribute names shared *across* types (the ambiguous
    /// `rank, title, year` overlap of §4.4 observation iv).
    pub shared_attr_fraction: f64,
    /// Whether to append sampled instance values to the table text
    /// (instance-level representations, marked `*` in Table 2).
    pub include_instances: bool,
    /// Cluster-size skew (web-table corpora are Zipf-ish).
    pub sizes: SizeDistribution,
}

impl Default for SchemaCorpusConfig {
    fn default() -> Self {
        Self {
            n_tables: 200,
            n_types: 10,
            attrs_per_type: 6,
            attr_coverage: 0.8,
            shared_attr_fraction: 0.3,
            include_instances: false,
            sizes: SizeDistribution::Zipf(1.1),
        }
    }
}

/// Generates a schema-inference corpus: each item is one table's header
/// text (optionally with instance rows).
pub fn schema_corpus(cfg: &SchemaCorpusConfig, rng: &mut StdRng) -> Corpus {
    // A global pool of attribute names, some shared across types.
    let shared_pool: Vec<String> =
        (0..cfg.attrs_per_type * 2).map(|_| pseudo_phrase(1, rng)).collect();
    // Per-type attribute lists.
    let type_attrs: Vec<Vec<String>> = (0..cfg.n_types)
        .map(|_| {
            (0..cfg.attrs_per_type)
                .map(|_| {
                    if rng.gen::<f64>() < cfg.shared_attr_fraction {
                        shared_pool[rng.gen_range(0..shared_pool.len())].clone()
                    } else {
                        pseudo_phrase(1, rng)
                    }
                })
                .collect()
        })
        .collect();
    // Per-type instance vocabularies (for instance-level text).
    let type_vocab: Vec<Vec<String>> = (0..cfg.n_types)
        .map(|_| (0..20).map(|_| pseudo_word(rng.gen_range(2..4), rng)).collect())
        .collect();

    let sizes = super::mixture::draw_sizes(
        &crate::mixture::MixtureConfig {
            n: cfg.n_tables,
            k: cfg.n_types,
            sizes: cfg.sizes,
            ..Default::default()
        },
        rng,
    );

    let mut items = Vec::new();
    for (ty, &count) in sizes.iter().enumerate() {
        for _ in 0..count {
            let mut parts: Vec<String> = Vec::new();
            for attr in &type_attrs[ty] {
                if rng.gen::<f64>() < cfg.attr_coverage {
                    parts.push(perturb_value(attr, 0.2, rng));
                }
            }
            if parts.is_empty() {
                parts.push(type_attrs[ty][0].clone());
            }
            if cfg.include_instances {
                for _ in 0..5 {
                    let vocab = &type_vocab[ty];
                    parts.push(vocab[rng.gen_range(0..vocab.len())].clone());
                }
            }
            items.push(TextItem { text: parts.join(" "), label: ty });
        }
    }
    Corpus { items, k: cfg.n_types }
}

/// Configuration for an entity-resolution corpus.
#[derive(Debug, Clone)]
pub struct EntityCorpusConfig {
    /// Number of distinct real-world entities (= clusters).
    pub n_entities: usize,
    /// Duplicate records per entity: uniform in this range (MusicBrainz
    /// spreads records over 2–5 sources, §4.1.1).
    pub dups: (usize, usize),
    /// Perturbation strength applied per duplicated field.
    pub noise: f64,
    /// Number of textual attributes per record.
    pub n_attrs: usize,
}

impl Default for EntityCorpusConfig {
    fn default() -> Self {
        Self { n_entities: 100, dups: (2, 5), noise: 0.5, n_attrs: 4 }
    }
}

/// Generates an entity-resolution corpus: each item is one record's
/// attribute text; records of the same entity are noisy copies.
pub fn entity_corpus(cfg: &EntityCorpusConfig, rng: &mut StdRng) -> Corpus {
    let mut items = Vec::new();
    for e in 0..cfg.n_entities {
        // Canonical record: a name phrase plus attribute values.
        let canonical: Vec<String> = (0..cfg.n_attrs)
            .map(|a| if a == 0 { pseudo_phrase(2, rng) } else { pseudo_phrase(1, rng) })
            .collect();
        let n_dups = rng.gen_range(cfg.dups.0..=cfg.dups.1);
        for _ in 0..n_dups {
            let fields: Vec<String> =
                canonical.iter().map(|f| perturb_value(f, cfg.noise, rng)).collect();
            items.push(TextItem { text: fields.join(" "), label: e });
        }
    }
    Corpus { items, k: cfg.n_entities }
}

/// Configuration for a domain-discovery corpus.
#[derive(Debug, Clone)]
pub struct DomainCorpusConfig {
    /// Number of columns.
    pub n_columns: usize,
    /// Number of latent semantic domains (= clusters).
    pub n_domains: usize,
    /// Vocabulary size per domain.
    pub vocab_size: usize,
    /// Values sampled per column (column lengths vary in Di2KG, §4.6 iv).
    pub values_per_column: (usize, usize),
    /// Whether to prepend a (heterogeneous) header to the column text.
    pub include_headers: bool,
    /// Fraction of vocabulary shared between domains (`lcd display` vs
    /// `monitor` style overlap).
    pub vocab_overlap: f64,
}

impl Default for DomainCorpusConfig {
    fn default() -> Self {
        Self {
            n_columns: 300,
            n_domains: 12,
            vocab_size: 30,
            values_per_column: (3, 12),
            include_headers: false,
            vocab_overlap: 0.2,
        }
    }
}

/// Generates a domain-discovery corpus: each item is one column's sampled
/// values (optionally with a header token).
pub fn domain_corpus(cfg: &DomainCorpusConfig, rng: &mut StdRng) -> Corpus {
    let shared: Vec<String> =
        (0..cfg.vocab_size).map(|_| pseudo_word(rng.gen_range(2..4), rng)).collect();
    let domains: Vec<(String, Vec<String>)> = (0..cfg.n_domains)
        .map(|_| {
            let header = pseudo_phrase(rng.gen_range(1..=2), rng);
            let vocab: Vec<String> = (0..cfg.vocab_size)
                .map(|_| {
                    if rng.gen::<f64>() < cfg.vocab_overlap {
                        shared[rng.gen_range(0..shared.len())].clone()
                    } else {
                        pseudo_word(rng.gen_range(2..4), rng)
                    }
                })
                .collect();
            (header, vocab)
        })
        .collect();

    let mut items = Vec::new();
    for c in 0..cfg.n_columns {
        let d = c % cfg.n_domains;
        let (header, vocab) = &domains[d];
        let n_vals = rng.gen_range(cfg.values_per_column.0..=cfg.values_per_column.1);
        let mut parts: Vec<String> = Vec::new();
        if cfg.include_headers {
            // Headers are syntactically heterogeneous across sources.
            parts.push(perturb_value(header, 0.4, rng));
        }
        for _ in 0..n_vals {
            parts.push(perturb_value(&vocab[rng.gen_range(0..vocab.len())], 0.2, rng));
        }
        items.push(TextItem { text: parts.join(" "), label: d });
    }
    Corpus { items, k: cfg.n_domains }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::random::rng;

    #[test]
    fn schema_corpus_has_expected_counts() {
        let cfg = SchemaCorpusConfig { n_tables: 50, n_types: 5, ..Default::default() };
        let c = schema_corpus(&cfg, &mut rng(1));
        assert_eq!(c.items.len(), 50);
        assert_eq!(c.k, 5);
        assert!(c.labels().iter().all(|&l| l < 5));
        assert!(c.items.iter().all(|i| !i.text.is_empty()));
    }

    #[test]
    fn same_type_tables_share_vocabulary() {
        let cfg = SchemaCorpusConfig {
            n_tables: 40,
            n_types: 4,
            shared_attr_fraction: 0.0,
            attr_coverage: 1.0,
            ..Default::default()
        };
        let c = schema_corpus(&cfg, &mut rng(2));
        // Token overlap within a type should exceed overlap across types.
        let token_set = |s: &str| -> std::collections::HashSet<String> {
            s.split_whitespace().map(str::to_string).collect()
        };
        let mut within = Vec::new();
        let mut across = Vec::new();
        for i in 0..c.items.len() {
            for j in (i + 1)..c.items.len() {
                let a = token_set(&c.items[i].text);
                let b = token_set(&c.items[j].text);
                let inter = a.intersection(&b).count() as f64;
                let union = a.union(&b).count() as f64;
                let jac = inter / union;
                if c.items[i].label == c.items[j].label {
                    within.push(jac);
                } else {
                    across.push(jac);
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&within) > mean(&across) + 0.2);
    }

    #[test]
    fn entity_corpus_duplicate_counts_in_range() {
        let cfg = EntityCorpusConfig { n_entities: 30, dups: (2, 5), ..Default::default() };
        let c = entity_corpus(&cfg, &mut rng(3));
        let mut counts = vec![0usize; 30];
        for &l in &c.labels() {
            counts[l] += 1;
        }
        assert!(counts.iter().all(|&n| (2..=5).contains(&n)));
        assert_eq!(c.k, 30);
    }

    #[test]
    fn entity_duplicates_resemble_each_other() {
        let cfg = EntityCorpusConfig { n_entities: 10, noise: 0.3, ..Default::default() };
        let c = entity_corpus(&cfg, &mut rng(4));
        // Duplicates of entity 0 share a long common prefix structure more
        // often than records of different entities share tokens.
        let zero: Vec<&TextItem> = c.items.iter().filter(|i| i.label == 0).collect();
        assert!(zero.len() >= 2);
        let a = &zero[0].text;
        let b = &zero[1].text;
        let common = a.split_whitespace().filter(|t| b.contains(*t)).count();
        assert!(common >= 1, "duplicates should share tokens: {a:?} vs {b:?}");
    }

    #[test]
    fn domain_corpus_labels_cycle_over_domains() {
        let cfg = DomainCorpusConfig { n_columns: 24, n_domains: 6, ..Default::default() };
        let c = domain_corpus(&cfg, &mut rng(5));
        assert_eq!(c.items.len(), 24);
        let mut counts = vec![0usize; 6];
        for &l in &c.labels() {
            counts[l] += 1;
        }
        assert!(counts.iter().all(|&n| n == 4));
    }

    #[test]
    fn corpora_are_deterministic_under_seed() {
        let cfg = DomainCorpusConfig::default();
        let a = domain_corpus(&cfg, &mut rng(9));
        let b = domain_corpus(&cfg, &mut rng(9));
        assert_eq!(a.items.len(), b.items.len());
        assert!(a.items.iter().zip(&b.items).all(|(x, y)| x.text == y.text));
    }
}
