//! The six benchmark dataset profiles of Table 1, as synthetic workloads.
//!
//! | Group   | Dataset      | Instances | Clusters |
//! |---------|--------------|-----------|----------|
//! | Tables  | web tables   | 429       | 26       |
//! | Tables  | TUS          | 4248      | 37       |
//! | Rows    | MusicBrainz  | 2002      | 684      |
//! | Rows    | GeoSet       | 3021      | 786      |
//! | Columns | Camera       | 19036     | 56       |
//! | Columns | Monitor      | 34481     | 81       |
//!
//! Each profile generates a synthetic corpus with the same instance/cluster
//! statistics and task-appropriate structure, then embeds it with a
//! simulated embedding model. `Scale::Scaled` shrinks the workload for
//! CPU-friendly experiment runs while preserving the shape (cluster-count
//! ratios, duplicate-group sizes); `Scale::Paper` reproduces Table 1
//! exactly.

use rand::rngs::StdRng;
use rand::SeedableRng;
use tensor::Matrix;

use crate::corpus::{
    domain_corpus, entity_corpus, schema_corpus, Corpus, DomainCorpusConfig, EntityCorpusConfig,
    SchemaCorpusConfig,
};
use crate::encoders::{embed_corpus, EmbeddingModel};
use crate::mixture::SizeDistribution;
use crate::text::fnv1a;

/// The three data-integration tasks (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Task {
    /// Cluster tables sharing a schema.
    SchemaInference,
    /// Cluster records of the same real-world entity.
    EntityResolution,
    /// Cluster columns drawing from the same domain.
    DomainDiscovery,
}

/// The six benchmark datasets (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Profile {
    /// T2D web tables (schema inference).
    WebTables,
    /// Table Union Search benchmark (schema inference).
    Tus,
    /// MusicBrainz songs (entity resolution).
    MusicBrainz,
    /// Geographic settlements (entity resolution).
    GeoSet,
    /// Di2KG Camera (domain discovery).
    Camera,
    /// Di2KG Monitor (domain discovery).
    Monitor,
}

/// Workload size selector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Scale {
    /// Table 1 sizes.
    Paper,
    /// CPU-friendly scaled-down sizes (default for the harness).
    Scaled,
}

impl Profile {
    /// All six profiles.
    pub const ALL: [Profile; 6] = [
        Profile::WebTables,
        Profile::Tus,
        Profile::MusicBrainz,
        Profile::GeoSet,
        Profile::Camera,
        Profile::Monitor,
    ];

    /// Dataset display name.
    pub fn name(self) -> &'static str {
        match self {
            Profile::WebTables => "web tables",
            Profile::Tus => "TUS",
            Profile::MusicBrainz => "Music Brainz",
            Profile::GeoSet => "GeoSet",
            Profile::Camera => "Camera",
            Profile::Monitor => "Monitor",
        }
    }

    /// The task the paper evaluates this dataset on.
    pub fn task(self) -> Task {
        match self {
            Profile::WebTables | Profile::Tus => Task::SchemaInference,
            Profile::MusicBrainz | Profile::GeoSet => Task::EntityResolution,
            Profile::Camera | Profile::Monitor => Task::DomainDiscovery,
        }
    }

    /// `(instances, clusters)` at the given scale. Paper values are
    /// Table 1; scaled values preserve cluster structure at lower n. For
    /// entity resolution, instance counts are approximate (duplicate group
    /// sizes are random) — they land within a few percent of the target.
    pub fn stats(self, scale: Scale) -> (usize, usize) {
        match (self, scale) {
            (Profile::WebTables, Scale::Paper) => (429, 26),
            (Profile::Tus, Scale::Paper) => (4248, 37),
            (Profile::MusicBrainz, Scale::Paper) => (2002, 684),
            (Profile::GeoSet, Scale::Paper) => (3021, 786),
            (Profile::Camera, Scale::Paper) => (19036, 56),
            (Profile::Monitor, Scale::Paper) => (34481, 81),
            (Profile::WebTables, Scale::Scaled) => (429, 26), // already small
            (Profile::Tus, Scale::Scaled) => (900, 37),
            (Profile::MusicBrainz, Scale::Scaled) => (440, 150),
            (Profile::GeoSet, Scale::Scaled) => (640, 165),
            (Profile::Camera, Scale::Scaled) => (1000, 56),
            (Profile::Monitor, Scale::Scaled) => (1000, 81),
        }
    }

    /// The embedding models the paper evaluates on this dataset
    /// (Tables 2–4 column groups).
    pub fn representations(self) -> &'static [EmbeddingModel] {
        match self.task() {
            Task::SchemaInference => {
                if matches!(self, Profile::Tus) {
                    &[
                        EmbeddingModel::Sbert,
                        EmbeddingModel::FastText,
                        EmbeddingModel::TabTransformer,
                        EmbeddingModel::SbertInstance,
                    ]
                } else {
                    &[
                        EmbeddingModel::Sbert,
                        EmbeddingModel::Use,
                        EmbeddingModel::TabTransformer,
                        EmbeddingModel::SbertInstance,
                    ]
                }
            }
            Task::EntityResolution => &[EmbeddingModel::Sbert, EmbeddingModel::EmbDi],
            Task::DomainDiscovery => {
                &[EmbeddingModel::Sbert, EmbeddingModel::SbertInstance, EmbeddingModel::T5]
            }
        }
    }

    /// Generates the raw textual corpus for this profile.
    pub fn corpus(self, scale: Scale, model: EmbeddingModel, seed: u64) -> Corpus {
        let (n, k) = self.stats(scale);
        let mut rng = StdRng::seed_from_u64(seed ^ fnv1a(self.name()));
        let instance_level =
            matches!(model, EmbeddingModel::SbertInstance | EmbeddingModel::TabTransformer | EmbeddingModel::T5);
        match self.task() {
            Task::SchemaInference => schema_corpus(
                &SchemaCorpusConfig {
                    n_tables: n,
                    n_types: k,
                    attrs_per_type: 6,
                    attr_coverage: 0.8,
                    shared_attr_fraction: 0.35,
                    include_instances: instance_level,
                    sizes: SizeDistribution::Zipf(1.1),
                },
                &mut rng,
            ),
            Task::EntityResolution => {
                // Duplicate ranges chosen so k groups total ≈ n records
                // (MusicBrainz ≈ 2.9 records/entity, GeoSet ≈ 3.8).
                let dups = if matches!(self, Profile::MusicBrainz) { (2, 4) } else { (2, 6) };
                entity_corpus(
                    &EntityCorpusConfig { n_entities: k, dups, noise: 0.5, n_attrs: 4 },
                    &mut rng,
                )
            }
            Task::DomainDiscovery => domain_corpus(
                &DomainCorpusConfig {
                    n_columns: n,
                    n_domains: k,
                    vocab_size: 30,
                    values_per_column: (3, 12),
                    include_headers: !instance_level,
                    vocab_overlap: 0.25,
                },
                &mut rng,
            ),
        }
    }

    /// Generates embeddings + ground truth for this profile under a model.
    pub fn dataset(self, model: EmbeddingModel, scale: Scale, seed: u64) -> Dataset {
        let corpus = self.corpus(scale, model, seed);
        let x = embed_corpus(&corpus, model, seed.wrapping_mul(0x9e3779b9).wrapping_add(1));
        Dataset {
            profile: self,
            model,
            labels: corpus.labels(),
            k: corpus.k,
            x,
        }
    }
}

/// A ready-to-cluster workload: embeddings, ground truth, provenance.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// The benchmark profile this simulates.
    pub profile: Profile,
    /// The simulated embedding model.
    pub model: EmbeddingModel,
    /// `n × d` embedding matrix.
    pub x: Matrix,
    /// Ground-truth cluster labels.
    pub labels: Vec<usize>,
    /// Number of ground-truth clusters.
    pub k: usize,
}

impl Dataset {
    /// Number of instances.
    pub fn n(&self) -> usize {
        self.x.rows()
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.x.cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_stats_match_table1() {
        assert_eq!(Profile::WebTables.stats(Scale::Paper), (429, 26));
        assert_eq!(Profile::Tus.stats(Scale::Paper), (4248, 37));
        assert_eq!(Profile::MusicBrainz.stats(Scale::Paper), (2002, 684));
        assert_eq!(Profile::GeoSet.stats(Scale::Paper), (3021, 786));
        assert_eq!(Profile::Camera.stats(Scale::Paper), (19036, 56));
        assert_eq!(Profile::Monitor.stats(Scale::Paper), (34481, 81));
    }

    #[test]
    fn tasks_match_paper_assignment() {
        assert_eq!(Profile::WebTables.task(), Task::SchemaInference);
        assert_eq!(Profile::MusicBrainz.task(), Task::EntityResolution);
        assert_eq!(Profile::Monitor.task(), Task::DomainDiscovery);
    }

    #[test]
    fn scaled_webtables_dataset_has_table1_shape() {
        let d = Profile::WebTables.dataset(EmbeddingModel::Sbert, Scale::Scaled, 1);
        assert_eq!(d.n(), 429);
        assert_eq!(d.k, 26);
        assert_eq!(d.labels.len(), 429);
        assert!(d.x.all_finite());
    }

    #[test]
    fn er_profile_instance_count_near_target() {
        let d = Profile::MusicBrainz.dataset(EmbeddingModel::Sbert, Scale::Scaled, 2);
        let (target_n, k) = Profile::MusicBrainz.stats(Scale::Scaled);
        assert_eq!(d.k, k);
        // Random duplicate counts: within 20% of the target.
        let n = d.n() as f64;
        assert!(
            (n - target_n as f64).abs() / target_n as f64 <= 0.2,
            "n = {n} vs target {target_n}"
        );
    }

    #[test]
    fn representations_match_paper_tables() {
        assert_eq!(Profile::Tus.representations().len(), 4);
        assert_eq!(Profile::GeoSet.representations(), &[EmbeddingModel::Sbert, EmbeddingModel::EmbDi]);
        assert_eq!(Profile::Camera.representations().len(), 3);
    }

    #[test]
    fn datasets_are_deterministic() {
        let a = Profile::Camera.dataset(EmbeddingModel::T5, Scale::Scaled, 9);
        let b = Profile::Camera.dataset(EmbeddingModel::T5, Scale::Scaled, 9);
        assert_eq!(a.x, b.x);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Profile::WebTables.dataset(EmbeddingModel::Sbert, Scale::Scaled, 1);
        let b = Profile::WebTables.dataset(EmbeddingModel::Sbert, Scale::Scaled, 2);
        assert_ne!(a.x, b.x);
    }
}
