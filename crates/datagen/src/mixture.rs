//! Gaussian-mixture latent generators with controlled geometry.
//!
//! The paper's central claim is that data-management embeddings are
//! *dense*, *feature-correlated*, and *cluster-overlapping* (§1, properties
//! i–iii). This module generates embedding matrices with those three knobs
//! exposed explicitly, so experiments can sweep them and the six dataset
//! profiles can dial in geometry matching each benchmark's behaviour.

use rand::rngs::StdRng;
use rand::Rng;
use tensor::random::{randn, randn_scalar};
use tensor::Matrix;

/// How cluster sizes are distributed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SizeDistribution {
    /// All clusters the same size (±1).
    Balanced,
    /// Zipf-like decay with the given exponent — schema-inference corpora
    /// have a few huge types and a long tail.
    Zipf(f64),
    /// Uniformly random sizes between the two bounds (inclusive) — the
    /// duplicate-group shape of entity resolution (2–5 records per entity
    /// in MusicBrainz, §4.1.1).
    UniformRange(usize, usize),
}

/// Configuration for a synthetic embedding mixture.
#[derive(Debug, Clone)]
pub struct MixtureConfig {
    /// Number of points (ignored when `sizes` is `UniformRange`; then the
    /// count follows from `clusters × range`).
    pub n: usize,
    /// Number of clusters.
    pub k: usize,
    /// Embedding dimension.
    pub dim: usize,
    /// Distance between cluster centers relative to within-cluster spread:
    /// `separation < ~2` produces heavy overlap, `> 4` clean separation.
    pub separation: f64,
    /// Fraction of the variance that is shared across *correlated* feature
    /// groups (0 = isotropic features, →1 = strongly correlated features).
    pub correlation: f64,
    /// Cluster-size distribution.
    pub sizes: SizeDistribution,
    /// Fraction of points replaced by uniform outliers (noise tolerance
    /// experiments).
    pub outlier_fraction: f64,
    /// If true, rows are L2-normalized onto the unit sphere afterwards —
    /// the geometry of sentence-encoder embeddings, which *increases*
    /// density.
    pub normalize: bool,
}

impl Default for MixtureConfig {
    fn default() -> Self {
        Self {
            n: 500,
            k: 10,
            dim: 32,
            separation: 3.0,
            correlation: 0.3,
            sizes: SizeDistribution::Balanced,
            outlier_fraction: 0.0,
            normalize: false,
        }
    }
}

/// A generated dataset: embeddings plus ground-truth cluster labels.
#[derive(Debug, Clone)]
pub struct Generated {
    /// `n × dim` embedding matrix.
    pub x: Matrix,
    /// Ground-truth cluster per row.
    pub labels: Vec<usize>,
}

impl Generated {
    /// Number of points.
    pub fn n(&self) -> usize {
        self.x.rows()
    }

    /// Number of distinct labels.
    pub fn k(&self) -> usize {
        self.labels.iter().copied().max().map_or(0, |m| m + 1)
    }
}

/// Draws cluster sizes according to the distribution, totalling close to
/// `n` (exact for `Balanced`/`Zipf`).
pub fn draw_sizes(cfg: &MixtureConfig, rng: &mut StdRng) -> Vec<usize> {
    match cfg.sizes {
        SizeDistribution::Balanced => {
            let base = cfg.n / cfg.k;
            let extra = cfg.n % cfg.k;
            (0..cfg.k).map(|i| base + usize::from(i < extra)).collect()
        }
        SizeDistribution::Zipf(s) => {
            let weights: Vec<f64> = (1..=cfg.k).map(|r| 1.0 / (r as f64).powf(s)).collect();
            let total: f64 = weights.iter().sum();
            let mut sizes: Vec<usize> =
                weights.iter().map(|w| ((w / total) * cfg.n as f64).round().max(1.0) as usize).collect();
            // Adjust the largest cluster so the total is exactly n.
            let sum: usize = sizes.iter().sum();
            if sum < cfg.n {
                sizes[0] += cfg.n - sum;
            } else {
                let mut over = sum - cfg.n;
                for s in sizes.iter_mut() {
                    let take = over.min(s.saturating_sub(1));
                    *s -= take;
                    over -= take;
                    if over == 0 {
                        break;
                    }
                }
            }
            sizes
        }
        SizeDistribution::UniformRange(lo, hi) => {
            assert!(lo >= 1 && hi >= lo, "UniformRange: bad bounds [{lo}, {hi}]");
            (0..cfg.k).map(|_| rng.gen_range(lo..=hi)).collect()
        }
    }
}

/// Generates a mixture according to `cfg`.
pub fn generate_mixture(cfg: &MixtureConfig, rng: &mut StdRng) -> Generated {
    assert!(cfg.k >= 1, "mixture: k must be >= 1");
    assert!(cfg.dim >= 1, "mixture: dim must be >= 1");
    assert!((0.0..=1.0).contains(&cfg.correlation), "correlation must be in [0,1]");
    assert!((0.0..1.0).contains(&cfg.outlier_fraction), "outlier_fraction must be in [0,1)");

    let sizes = draw_sizes(cfg, rng);
    let n: usize = sizes.iter().sum();

    // Cluster centers: coordinates ~ N(0, separation²). Within-cluster
    // noise below has per-coordinate std ≈ 1, so the expected
    // between-center distance is `separation × √(2·dim)` against a
    // within-cluster pair distance of `√(2·dim)` — `separation` is a
    // dimension-independent signal-to-noise ratio (≈1 → heavy overlap,
    // ≥4 → clean separation).
    let centers = {
        let mut c = randn(cfg.k, cfg.dim, rng);
        let scale = cfg.separation;
        c.map_inplace(|v| v * scale);
        c
    };

    // Correlated within-cluster noise: z = (1−ρ)·e + ρ·(shared per-group
    // factor), implemented with a handful of latent factors mixed into all
    // dimensions.
    let n_factors = (cfg.dim / 4).max(1);
    let mixing = randn(n_factors, cfg.dim, rng);

    let mut rows = Vec::with_capacity(n);
    let mut labels = Vec::with_capacity(n);
    for (ci, &size) in sizes.iter().enumerate() {
        for _ in 0..size {
            let iso = randn(1, cfg.dim, rng);
            let factors = randn(1, n_factors, rng);
            let shared = factors.matmul(&mixing);
            let mut row = Vec::with_capacity(cfg.dim);
            for j in 0..cfg.dim {
                let noise = (1.0 - cfg.correlation) * iso[(0, j)]
                    + cfg.correlation * shared[(0, j)] / (n_factors as f64).sqrt();
                row.push(centers[(ci, j)] + noise);
            }
            rows.push(row);
            labels.push(ci);
        }
    }

    // Outliers: overwrite a random subset with wide uniform noise.
    let n_out = ((n as f64) * cfg.outlier_fraction) as usize;
    for _ in 0..n_out {
        let i = rng.gen_range(0..n);
        for v in rows[i].iter_mut() {
            *v = randn_scalar(rng) * cfg.separation * 3.0;
        }
    }

    let mut x = Matrix::from_row_vecs(&rows);
    if cfg.normalize {
        x = x.normalize_rows();
    }
    Generated { x, labels }
}

/// The MusicBrainz-style scalability workload of Figure 3: `k` clusters of
/// 2–5 near-duplicate rows each, moderately overlapping, `dim`-dimensional.
pub fn scalability_workload(k: usize, dim: usize, rng: &mut StdRng) -> Generated {
    let cfg = MixtureConfig {
        n: 0, // determined by the range
        k,
        dim,
        separation: 3.0,
        correlation: 0.4,
        sizes: SizeDistribution::UniformRange(2, 5),
        outlier_fraction: 0.0,
        normalize: true,
    };
    generate_mixture(&cfg, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::random::rng;

    #[test]
    fn balanced_sizes_sum_to_n() {
        let cfg = MixtureConfig { n: 103, k: 10, ..Default::default() };
        let sizes = draw_sizes(&cfg, &mut rng(1));
        assert_eq!(sizes.iter().sum::<usize>(), 103);
        assert!(sizes.iter().all(|&s| s == 10 || s == 11));
    }

    #[test]
    fn zipf_sizes_are_skewed_and_sum_to_n() {
        let cfg = MixtureConfig { n: 429, k: 26, sizes: SizeDistribution::Zipf(1.2), ..Default::default() };
        let sizes = draw_sizes(&cfg, &mut rng(2));
        assert_eq!(sizes.iter().sum::<usize>(), 429);
        assert!(sizes[0] > sizes[25] * 3, "head {} vs tail {}", sizes[0], sizes[25]);
        assert!(sizes.iter().all(|&s| s >= 1));
    }

    #[test]
    fn uniform_range_respects_bounds() {
        let cfg = MixtureConfig {
            k: 100,
            sizes: SizeDistribution::UniformRange(2, 5),
            ..Default::default()
        };
        let sizes = draw_sizes(&cfg, &mut rng(3));
        assert!(sizes.iter().all(|&s| (2..=5).contains(&s)));
    }

    #[test]
    fn generated_shapes_and_labels() {
        let cfg = MixtureConfig { n: 60, k: 4, dim: 8, ..Default::default() };
        let g = generate_mixture(&cfg, &mut rng(4));
        assert_eq!(g.x.shape(), (60, 8));
        assert_eq!(g.labels.len(), 60);
        assert_eq!(g.k(), 4);
        assert!(g.x.all_finite());
    }

    #[test]
    fn separation_controls_cluster_distinctness() {
        // Well-separated data should have much higher between/within ratio
        // than overlapping data.
        let ratio = |sep: f64| {
            let cfg = MixtureConfig { n: 200, k: 4, dim: 8, separation: sep, ..Default::default() };
            let g = generate_mixture(&cfg, &mut rng(5));
            // Mean within-cluster pairwise dist vs global pairwise dist.
            let mut within = (0.0, 0usize);
            let mut between = (0.0, 0usize);
            for i in 0..g.n() {
                for j in (i + 1)..g.n() {
                    let d = tensor::distance::sq_euclidean(g.x.row(i), g.x.row(j));
                    if g.labels[i] == g.labels[j] {
                        within.0 += d;
                        within.1 += 1;
                    } else {
                        between.0 += d;
                        between.1 += 1;
                    }
                }
            }
            (between.0 / between.1 as f64) / (within.0 / within.1 as f64)
        };
        assert!(ratio(6.0) > ratio(0.5) * 1.5);
    }

    #[test]
    fn normalization_puts_rows_on_sphere() {
        let cfg = MixtureConfig { n: 30, k: 3, dim: 6, normalize: true, ..Default::default() };
        let g = generate_mixture(&cfg, &mut rng(6));
        for row in g.x.row_iter() {
            let norm: f64 = row.iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn scalability_workload_has_small_clusters() {
        let g = scalability_workload(50, 16, &mut rng(7));
        assert_eq!(g.k(), 50);
        let mut counts = vec![0usize; 50];
        for &l in &g.labels {
            counts[l] += 1;
        }
        assert!(counts.iter().all(|&c| (2..=5).contains(&c)));
    }

    #[test]
    fn seeded_generation_is_deterministic() {
        let cfg = MixtureConfig::default();
        let a = generate_mixture(&cfg, &mut rng(42));
        let b = generate_mixture(&cfg, &mut rng(42));
        assert_eq!(a.x, b.x);
        assert_eq!(a.labels, b.labels);
    }
}
