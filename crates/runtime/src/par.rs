//! Deterministic data-parallel primitives built on [`ThreadPool::scope`].
//!
//! ## The determinism contract
//!
//! Every primitive here produces **bit-identical results regardless of the
//! pool's thread count**, including `threads == 1`:
//!
//! - [`par_for_rows`] and [`par_for_blocks`] run pure per-block functions on
//!   disjoint slices — the computation per element is exactly the serial
//!   one, only the schedule changes.
//! - [`par_join`] runs two independent closures; their results are returned
//!   in a fixed order.
//! - [`par_reduce`] evaluates a caller-fixed chunking of `0..n` and combines
//!   the chunk results along a **fixed-shape binary tree** over the chunk
//!   sequence. The tree's shape depends only on `n` and `chunk` — never on
//!   the thread count or the completion order — so floating-point reductions
//!   are reproducible across machines and `TABLEDC_THREADS` settings.
//!
//! The serial (`threads == 1`) path executes the *same* chunking and the
//! same tree, so "parallel vs. serial" can be asserted with `==` on floats.

use crate::pool::ThreadPool;
use std::ops::Range;

/// Picks the number of rows per parallel block for a rows-sized job.
///
/// Blocks are a pure scheduling decision for the `par_for_*` maps (results
/// are per-row, so blocking never changes output bits); the policy aims at
/// ~4 blocks per thread for load balancing while keeping at least
/// `min_rows` rows per block so tiny matrices stay on one thread.
pub fn block_rows(rows: usize, threads: usize, min_rows: usize) -> usize {
    let target_blocks = threads.max(1) * 4;
    rows.div_ceil(target_blocks).max(min_rows).max(1)
}

/// Parallel map over the row-blocks of a dense row-major buffer.
///
/// `data` has `data.len() / row_width` rows of `row_width` elements;
/// `f(first_row, block)` is called for consecutive blocks of at most
/// `rows_per_block` rows, each receiving a disjoint `&mut` sub-slice.
/// Blocks run concurrently on the pool; output is bit-identical to the
/// serial loop for pure `f`.
///
/// # Panics
/// Panics if `row_width == 0` with a non-empty buffer, or if `data.len()`
/// is not a multiple of `row_width`.
pub fn par_for_rows<T, F>(pool: &ThreadPool, data: &mut [T], row_width: usize, rows_per_block: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if data.is_empty() {
        return;
    }
    assert!(row_width > 0, "par_for_rows: zero row width with non-empty data");
    assert_eq!(data.len() % row_width, 0, "par_for_rows: buffer not a whole number of rows");
    let rows = data.len() / row_width;
    let block = rows_per_block.max(1);
    if pool.is_serial() || rows <= block {
        // One thread or one block: run inline without touching the queues.
        let mut start = 0;
        for chunk in data.chunks_mut(block * row_width) {
            let rows_here = chunk.len() / row_width;
            f(start, chunk);
            start += rows_here;
        }
        return;
    }
    let f = &f;
    pool.scope(|s| {
        let mut start = 0;
        for chunk in data.chunks_mut(block * row_width) {
            let rows_here = chunk.len() / row_width;
            s.spawn(move || f(start, chunk));
            start += rows_here;
        }
    });
}

/// Read-only variant of [`par_for_rows`]: runs `f(range)` for consecutive
/// index ranges covering `0..n`, in parallel. `f` typically writes through
/// captured disjoint output (e.g. interior mutability per index) or pure
/// side channels; most callers want [`par_for_rows`] or [`par_reduce`]
/// instead.
pub fn par_for_blocks<F>(pool: &ThreadPool, n: usize, rows_per_block: usize, f: F)
where
    F: Fn(Range<usize>) + Sync,
{
    if n == 0 {
        return;
    }
    let block = rows_per_block.max(1);
    if pool.is_serial() || n <= block {
        let mut start = 0;
        while start < n {
            let end = (start + block).min(n);
            f(start..end);
            start = end;
        }
        return;
    }
    let f = &f;
    pool.scope(|s| {
        let mut start = 0;
        while start < n {
            let end = (start + block).min(n);
            s.spawn(move || f(start..end));
            start = end;
        }
    });
}

/// Runs two independent closures, potentially in parallel, and returns
/// `(a(), b())`. `b` always runs on the calling thread; `a` is offloaded
/// when the pool is parallel.
pub fn par_join<A, B, RA, RB>(pool: &ThreadPool, a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB,
    RA: Send,
{
    if pool.is_serial() {
        let ra = a();
        let rb = b();
        return (ra, rb);
    }
    let mut slot: Option<RA> = None;
    let rb = {
        let slot_ref = &mut slot;
        pool.scope(move |s| {
            s.spawn(move || *slot_ref = Some(a()));
            b()
        })
    };
    let ra = slot.expect("par_join: spawned closure did not run");
    (ra, rb)
}

/// Deterministic parallel reduction over `0..n`.
///
/// Splits `0..n` into consecutive chunks of `chunk` indices (the last chunk
/// may be short), evaluates `map(range)` for every chunk in parallel, then
/// folds the chunk results with `combine` along a fixed-shape binary tree:
/// adjacent pairs are combined level by level, an odd tail passing through
/// unchanged. Returns `None` when `n == 0`.
///
/// **Determinism:** the chunk boundaries and the tree shape are pure
/// functions of `(n, chunk)`, so for pure `map`/`combine` the result is
/// bit-identical for every thread count. Callers must pass a *fixed*
/// `chunk` (not derived from the thread count) to keep results stable
/// across machines.
///
/// # Panics
/// Panics if `chunk == 0` with `n > 0`.
pub fn par_reduce<T, M, C>(pool: &ThreadPool, n: usize, chunk: usize, map: M, combine: C) -> Option<T>
where
    T: Send,
    M: Fn(Range<usize>) -> T + Sync,
    C: Fn(T, T) -> T,
{
    if n == 0 {
        return None;
    }
    assert!(chunk > 0, "par_reduce: chunk must be positive");
    let n_chunks = n.div_ceil(chunk);
    let ranges = (0..n_chunks).map(|c| (c * chunk)..((c + 1) * chunk).min(n));

    let mut results: Vec<Option<T>> = if pool.is_serial() || n_chunks == 1 {
        ranges.map(|r| Some(map(r))).collect()
    } else {
        let mut slots: Vec<Option<T>> = (0..n_chunks).map(|_| None).collect();
        let map = &map;
        pool.scope(|s| {
            for (slot, r) in slots.iter_mut().zip(ranges) {
                s.spawn(move || *slot = Some(map(r)));
            }
        });
        slots
    };

    // Fixed-shape pairwise tree over the chunk sequence. The combine work is
    // O(n_chunks) small merges, so it runs serially (and deterministically).
    while results.len() > 1 {
        let mut next = Vec::with_capacity(results.len().div_ceil(2));
        let mut it = results.into_iter();
        while let Some(left) = it.next() {
            match it.next() {
                Some(right) => next.push(Some(combine(
                    left.expect("par_reduce: missing chunk result"),
                    right.expect("par_reduce: missing chunk result"),
                ))),
                None => next.push(left),
            }
        }
        results = next;
    }
    results.pop().flatten()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_for_rows_matches_serial_map() {
        for threads in [1, 2, 4, 8] {
            let pool = ThreadPool::new(threads);
            let mut data: Vec<f64> = (0..1000).map(|i| i as f64).collect();
            par_for_rows(&pool, &mut data, 10, 7, |first_row, block| {
                for (r, row) in block.chunks_mut(10).enumerate() {
                    for x in row.iter_mut() {
                        *x = x.sqrt() + (first_row + r) as f64;
                    }
                }
            });
            let expect: Vec<f64> =
                (0..1000).map(|i| (i as f64).sqrt() + (i / 10) as f64).collect();
            assert_eq!(data, expect, "threads = {threads}");
        }
    }

    #[test]
    fn par_for_rows_handles_empty_and_single_row() {
        let pool = ThreadPool::new(4);
        let mut empty: Vec<f64> = vec![];
        par_for_rows(&pool, &mut empty, 0, 4, |_, _| panic!("no rows"));
        let mut one = vec![1.0, 2.0, 3.0];
        par_for_rows(&pool, &mut one, 3, 4, |first, row| {
            assert_eq!(first, 0);
            row[0] = 9.0;
        });
        assert_eq!(one, vec![9.0, 2.0, 3.0]);
    }

    #[test]
    fn par_for_blocks_covers_exactly_once() {
        use std::sync::atomic::{AtomicU32, Ordering};
        for threads in [1, 3] {
            let pool = ThreadPool::new(threads);
            let hits: Vec<AtomicU32> = (0..97).map(|_| AtomicU32::new(0)).collect();
            par_for_blocks(&pool, 97, 10, |range| {
                for i in range {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn par_join_returns_both() {
        for threads in [1, 4] {
            let pool = ThreadPool::new(threads);
            let (a, b) = par_join(&pool, || 6 * 7, || "ok");
            assert_eq!((a, b), (42, "ok"));
        }
    }

    #[test]
    fn par_reduce_is_thread_count_invariant() {
        // Floating-point sum with values chosen so association matters:
        // different tree shapes give different bits, so equality across
        // thread counts is a real check of the fixed-shape guarantee.
        let values: Vec<f64> = (0..10_000)
            .map(|i| ((i * 2654435761u64 as usize) % 1000) as f64 * 1e-3 + 1e10 * ((i % 7) as f64))
            .collect();
        let reference = par_reduce(
            &ThreadPool::new(1),
            values.len(),
            64,
            |r| r.map(|i| values[i]).sum::<f64>(),
            |a, b| a + b,
        )
        .unwrap();
        for threads in [2, 4, 8] {
            let pool = ThreadPool::new(threads);
            let got = par_reduce(
                &pool,
                values.len(),
                64,
                |r| r.map(|i| values[i]).sum::<f64>(),
                |a, b| a + b,
            )
            .unwrap();
            assert_eq!(got.to_bits(), reference.to_bits(), "threads = {threads}");
        }
    }

    #[test]
    fn par_reduce_edge_shapes() {
        let pool = ThreadPool::new(4);
        assert_eq!(par_reduce(&pool, 0, 8, |_| 1u64, |a, b| a + b), None);
        // Single element, chunk larger than n, chunk of 1, non-divisible.
        for (n, chunk) in [(1usize, 8usize), (5, 8), (7, 1), (100, 33)] {
            let got = par_reduce(&pool, n, chunk, |r| r.sum::<usize>(), |a, b| a + b).unwrap();
            assert_eq!(got, n * (n - 1) / 2, "n={n} chunk={chunk}");
        }
    }

    #[test]
    fn par_reduce_tree_shape_is_chunk_count_function() {
        // Record the combine order as strings; must match across pools.
        let shape = |threads: usize| {
            let pool = ThreadPool::new(threads);
            par_reduce(
                &pool,
                10,
                3,
                |r| format!("[{}..{}]", r.start, r.end),
                |a, b| format!("({a}+{b})"),
            )
            .unwrap()
        };
        let reference = shape(1);
        assert_eq!(reference, "(([0..3]+[3..6])+([6..9]+[9..10]))");
        for threads in [2, 8] {
            assert_eq!(shape(threads), reference);
        }
    }
}
