//! The work-stealing thread pool and scoped task execution.
//!
//! ## Design
//!
//! Each pool owns `threads − 1` OS worker threads (a pool of `threads == 1`
//! owns none and runs everything inline on the caller). Every worker has a
//! private deque: it pushes and pops its own work LIFO (cache-warm), while
//! other workers steal FIFO from the opposite end — the classic
//! work-stealing discipline. Tasks submitted from outside the pool land in a
//! shared injector queue that all workers drain.
//!
//! Blocking waits are cooperative: a thread waiting for a [`Scope`] to drain
//! *helps*, executing queued tasks until the scope's latch opens. This makes
//! nested parallelism (a parallel kernel calling another parallel kernel)
//! deadlock-free with any thread count.
//!
//! ## Safety
//!
//! [`Scope::spawn`] accepts closures borrowing the caller's stack (`'env`
//! lifetime). The single `unsafe` block in this module erases that lifetime
//! so the job can sit in the pool's queues; soundness rests on the scope
//! invariant that [`ThreadPool::scope`] does not return — not even by
//! unwinding — until every spawned task has finished (enforced by a
//! drop-guard decrementing the latch even on panic).

use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Snapshot of a pool's lifetime counters — the first observability hook of
/// the runtime subsystem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Total parallelism (worker threads plus the helping caller).
    pub threads: usize,
    /// Tasks executed to completion across all threads.
    pub tasks_executed: u64,
    /// Tasks obtained by stealing from another worker's deque.
    pub steals: u64,
    /// Cumulative wall-clock time threads spent executing tasks.
    pub busy: Duration,
}

#[derive(Default)]
struct Counters {
    tasks: AtomicU64,
    steals: AtomicU64,
    busy_ns: AtomicU64,
}

/// State shared between the pool handle and its workers.
struct Shared {
    /// Unique id distinguishing pools for the thread-local worker marker.
    pool_id: usize,
    /// Per-worker deques: owner pops LIFO from the back, thieves pop FIFO
    /// from the front.
    locals: Vec<Mutex<VecDeque<Job>>>,
    /// Overflow queue for tasks submitted from non-worker threads.
    injector: Mutex<VecDeque<Job>>,
    /// Sleep generation: bumped on every push so parked workers never miss
    /// a wakeup (a worker only sleeps if the generation it read before its
    /// final queue scan is still current).
    sleep_gen: Mutex<u64>,
    wakeup: Condvar,
    shutdown: AtomicBool,
    counters: Counters,
}

impl Shared {
    /// Pops a job: own deque first (LIFO), then the injector, then steals
    /// from the other workers (FIFO).
    fn find_job(&self, me: Option<usize>) -> Option<Job> {
        if let Some(i) = me {
            if let Some(job) = self.locals[i].lock().unwrap().pop_back() {
                return Some(job);
            }
        }
        if let Some(job) = self.injector.lock().unwrap().pop_front() {
            return Some(job);
        }
        let n = self.locals.len();
        let start = me.map_or(0, |i| i + 1);
        for k in 0..n {
            let victim = (start + k) % n;
            if Some(victim) == me {
                continue;
            }
            if let Some(job) = self.locals[victim].lock().unwrap().pop_front() {
                self.counters.steals.fetch_add(1, Ordering::Relaxed);
                return Some(job);
            }
        }
        None
    }

    /// Runs a job. Worker threads must never unwind, so panics are
    /// swallowed here; scope tasks have already recorded the panic in their
    /// latch by this point. Busy-time/task counters are updated inside the
    /// job wrapper itself (see [`Scope::spawn`]) so they are visible before
    /// the scope's latch releases.
    fn run_job(&self, job: Job) {
        let _ = catch_unwind(AssertUnwindSafe(job));
    }

    fn push(&self, job: Job) {
        let me = current_worker(self.pool_id);
        match me {
            Some(i) => self.locals[i].lock().unwrap().push_back(job),
            None => self.injector.lock().unwrap().push_back(job),
        }
        // Bump the generation *then* notify, so any worker that scanned the
        // queues before this push refuses to sleep on the stale generation.
        *self.sleep_gen.lock().unwrap() += 1;
        self.wakeup.notify_all();
    }

    fn worker_loop(self: &Arc<Self>, index: usize) {
        WORKER.with(|w| w.set(Some((self.pool_id, index))));
        loop {
            let gen = *self.sleep_gen.lock().unwrap();
            if let Some(job) = self.find_job(Some(index)) {
                self.run_job(job);
                continue;
            }
            if self.shutdown.load(Ordering::Acquire) {
                break;
            }
            let guard = self.sleep_gen.lock().unwrap();
            if *guard == gen && !self.shutdown.load(Ordering::Acquire) {
                // Timed wait as a backstop; the generation protocol already
                // prevents lost wakeups.
                let _ = self.wakeup.wait_timeout(guard, Duration::from_millis(2)).unwrap();
            }
        }
    }
}

thread_local! {
    /// `(pool_id, worker_index)` when the current thread is a pool worker.
    static WORKER: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

fn current_worker(pool_id: usize) -> Option<usize> {
    WORKER.with(|w| w.get().and_then(|(p, i)| (p == pool_id).then_some(i)))
}

static NEXT_POOL_ID: AtomicUsize = AtomicUsize::new(0);

/// A std-only work-stealing thread pool with scoped execution.
///
/// See the [module docs](self) for the design. Construct explicit pools for
/// tests and tools; production kernels share the process-wide
/// [`global`](crate::global) pool.
pub struct ThreadPool {
    shared: Arc<Shared>,
    threads: usize,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Creates a pool with total parallelism `threads` (clamped to ≥ 1).
    ///
    /// `threads − 1` worker threads are spawned; the thread that blocks in
    /// [`ThreadPool::scope`] contributes the final unit of parallelism by
    /// helping. `threads == 1` spawns nothing and executes all work inline —
    /// the pure-serial debugging mode selected by `TABLEDC_THREADS=1`.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let n_workers = threads - 1;
        let shared = Arc::new(Shared {
            pool_id: NEXT_POOL_ID.fetch_add(1, Ordering::Relaxed),
            locals: (0..n_workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            sleep_gen: Mutex::new(0),
            wakeup: Condvar::new(),
            shutdown: AtomicBool::new(false),
            counters: Counters::default(),
        });
        let workers = (0..n_workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("tabledc-worker-{i}"))
                    .spawn(move || shared.worker_loop(i))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Self { shared, threads, workers }
    }

    /// Total parallelism of this pool.
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// True when this pool executes everything inline on the caller.
    #[inline]
    pub fn is_serial(&self) -> bool {
        self.threads == 1
    }

    /// Publishes this pool's lifetime counters into the [`obs`] registry as
    /// `pool.*` gauges (threads, tasks executed, steals, busy milliseconds,
    /// and the derived steal ratio), so they appear in [`obs::summary`].
    /// Called automatically at every scope exit while tracing is enabled;
    /// call it directly before rendering a summary in untraced runs.
    pub fn record_stats(&self) {
        let stats = self.stats();
        let registry = obs::registry();
        registry.gauge("pool.threads").set(stats.threads as f64);
        registry.gauge("pool.tasks_executed").set(stats.tasks_executed as f64);
        registry.gauge("pool.steals").set(stats.steals as f64);
        registry.gauge("pool.busy_ms").set(stats.busy.as_secs_f64() * 1e3);
        let steal_ratio = if stats.tasks_executed > 0 {
            stats.steals as f64 / stats.tasks_executed as f64
        } else {
            0.0
        };
        registry.gauge("pool.steal_ratio").set(steal_ratio);
    }

    /// Snapshot of the lifetime counters.
    pub fn stats(&self) -> PoolStats {
        let c = &self.shared.counters;
        PoolStats {
            threads: self.threads,
            tasks_executed: c.tasks.load(Ordering::Relaxed),
            steals: c.steals.load(Ordering::Relaxed),
            busy: Duration::from_nanos(c.busy_ns.load(Ordering::Relaxed)),
        }
    }

    /// Runs `f` with a [`Scope`] on which tasks borrowing the surrounding
    /// stack frame can be spawned; returns only after every spawned task has
    /// completed. Panics from tasks are re-raised here after the scope has
    /// fully drained.
    ///
    /// On a serial pool, spawned tasks execute immediately inline, giving a
    /// sequential schedule with zero synchronization.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'_, 'env>) -> R + 'env,
    {
        let scope = Scope {
            pool: self,
            latch: Arc::new(Latch::default()),
            _env: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        self.wait(&scope.latch);
        // Publish pool counters while a trace sink is active, so the
        // end-of-run summary always reflects the last completed scope.
        // Outside the reduction trees and after the latch has drained, so
        // it cannot perturb task scheduling or numeric results.
        if obs::enabled() {
            self.record_stats();
        }
        let task_panicked = scope.latch.panicked.swap(false, Ordering::AcqRel);
        match result {
            Err(payload) => resume_unwind(payload),
            Ok(value) => {
                assert!(!task_panicked, "a task spawned in a runtime scope panicked");
                value
            }
        }
    }

    /// Blocks until `latch` opens, executing queued tasks while waiting so
    /// that nested scopes cannot deadlock and the caller contributes a full
    /// unit of parallelism.
    fn wait(&self, latch: &Latch) {
        if latch.pending.load(Ordering::Acquire) == 0 {
            return;
        }
        let me = current_worker(self.shared.pool_id);
        loop {
            if latch.pending.load(Ordering::Acquire) == 0 {
                return;
            }
            if let Some(job) = self.shared.find_job(me) {
                self.shared.run_job(job);
                continue;
            }
            let guard = latch.mutex.lock().unwrap();
            if latch.pending.load(Ordering::Acquire) == 0 {
                return;
            }
            // Short timeout: completions notify the latch condvar, but a
            // *new stealable job* does not, so re-scan periodically.
            let _ = latch.cvar.wait_timeout(guard, Duration::from_micros(500)).unwrap();
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        *self.shared.sleep_gen.lock().unwrap() += 1;
        self.shared.wakeup.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Completion latch for one scope: a pending-task count plus the condvar
/// waiters park on.
#[derive(Default)]
struct Latch {
    pending: AtomicUsize,
    panicked: AtomicBool,
    mutex: Mutex<()>,
    cvar: Condvar,
}

/// Drop-guard that counts a task as finished even if it unwinds.
struct CompletionGuard {
    latch: Arc<Latch>,
    completed: bool,
}

impl Drop for CompletionGuard {
    fn drop(&mut self) {
        if !self.completed {
            self.latch.panicked.store(true, Ordering::Release);
        }
        if self.latch.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last task out: take the lock so a waiter between its pending
            // check and its wait cannot miss this notification.
            drop(self.latch.mutex.lock().unwrap());
            self.latch.cvar.notify_all();
        }
    }
}

/// Handle for spawning tasks that may borrow data with lifetime `'env`.
pub struct Scope<'pool, 'env> {
    pool: &'pool ThreadPool,
    latch: Arc<Latch>,
    /// Invariant over `'env` so the borrow checker cannot shrink the
    /// spawned closures' lifetime requirement.
    _env: PhantomData<*mut &'env ()>,
}

impl<'pool, 'env> Scope<'pool, 'env> {
    /// Spawns `f` onto the pool. On a serial pool, runs `f` inline
    /// immediately (sequential program order).
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        if self.pool.is_serial() {
            f();
            return;
        }
        self.latch.pending.fetch_add(1, Ordering::AcqRel);
        let latch = Arc::clone(&self.latch);
        let shared = Arc::clone(&self.pool.shared);
        // Capture the spawner's innermost span so spans created inside the
        // task nest under their logical parent in the profile tree instead
        // of appearing as orphan roots on the worker thread.
        let ctx = obs::profile::current_context();
        let job: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            // `guard` is declared first so it drops *last*: the counters
            // below must be published before the latch releases, or a
            // caller could read `stats()` missing this task.
            let mut guard = CompletionGuard { latch, completed: false };
            let _ctx = obs::profile::enter_context(ctx);
            let started = Instant::now();
            f();
            shared.counters.busy_ns.fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
            shared.counters.tasks.fetch_add(1, Ordering::Relaxed);
            guard.completed = true;
        });
        // SAFETY: `ThreadPool::scope` blocks until `latch.pending` reaches
        // zero before returning (on success *and* on unwind), so the job —
        // and everything it borrows with lifetime `'env` — outlives its
        // execution. The lifetime is erased only so the job can be stored
        // in the pool's queues.
        let job: Job = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'env>, Job>(job)
        };
        self.pool.shared.push(job);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn serial_pool_runs_inline_in_order() {
        let pool = ThreadPool::new(1);
        let order = Mutex::new(Vec::new());
        pool.scope(|s| {
            let order = &order;
            s.spawn(move || order.lock().unwrap().push(1));
            s.spawn(move || order.lock().unwrap().push(2));
        });
        assert_eq!(*order.lock().unwrap(), vec![1, 2]);
        assert_eq!(pool.stats().tasks_executed, 0, "inline tasks bypass queues");
    }

    #[test]
    fn parallel_scope_completes_all_tasks() {
        let pool = ThreadPool::new(4);
        let counter = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..100 {
                let counter = &counter;
                s.spawn(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(pool.stats().tasks_executed, 100);
    }

    #[test]
    fn scope_tasks_borrow_and_mutate_disjoint_chunks() {
        let pool = ThreadPool::new(3);
        let mut data = vec![0u64; 64];
        pool.scope(|s| {
            for (b, chunk) in data.chunks_mut(16).enumerate() {
                s.spawn(move || {
                    for (i, x) in chunk.iter_mut().enumerate() {
                        *x = (b * 16 + i) as u64;
                    }
                });
            }
        });
        assert!(data.iter().enumerate().all(|(i, &x)| x == i as u64));
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        let pool = ThreadPool::new(2);
        let total = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..4 {
                let total = &total;
                let pool = &pool;
                s.spawn(move || {
                    pool.scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(move || {
                                total.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn task_panic_propagates_after_drain() {
        let pool = ThreadPool::new(2);
        let finished = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("boom"));
                for _ in 0..8 {
                    let finished = &finished;
                    s.spawn(move || {
                        finished.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(result.is_err(), "panic must propagate out of scope");
        assert_eq!(finished.load(Ordering::Relaxed), 8, "scope drains before unwinding");
        // Pool stays usable after a panicked scope.
        let ok = AtomicUsize::new(0);
        pool.scope(|s| {
            let ok = &ok;
            s.spawn(move || {
                ok.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(ok.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn stats_track_busy_time_and_threads() {
        let pool = ThreadPool::new(2);
        pool.scope(|s| {
            for _ in 0..4 {
                s.spawn(|| std::thread::sleep(Duration::from_millis(2)));
            }
        });
        let stats = pool.stats();
        assert_eq!(stats.threads, 2);
        assert_eq!(stats.tasks_executed, 4);
        assert!(stats.busy >= Duration::from_millis(8), "busy = {:?}", stats.busy);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = ThreadPool::new(4);
        pool.scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {});
            }
        });
        drop(pool); // must not hang
    }
}
