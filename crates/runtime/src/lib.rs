//! # runtime — std-only parallel execution for the TableDC stack
//!
//! A work-stealing thread pool ([`ThreadPool`]) with scoped execution and
//! deterministic data-parallel primitives ([`par_for_rows`], [`par_join`],
//! [`par_reduce`]), built entirely on `std` — the build environment has no
//! registry access, so no external crates (rayon, crossbeam) are available.
//!
//! Every dense hot path in the workspace — `Matrix::matmul`, the pairwise
//! distance kernels, k-means assignment, KNN graph construction, and TableDC
//! batch inference — runs through this crate's [`global`] pool.
//!
//! ## Configuration
//!
//! The global pool is lazily initialized on first use and sized from
//! [`std::thread::available_parallelism`]. The `TABLEDC_THREADS` environment
//! variable overrides the size; `TABLEDC_THREADS=1` selects pure serial
//! inline execution (no worker threads, no queues) for debugging.
//!
//! ## Determinism
//!
//! All primitives return bit-identical results for every thread count; see
//! the [`par`] module docs for the contract. In particular parallel kernels
//! can be validated against `TABLEDC_THREADS=1` with exact float equality.
//!
//! ## Observability
//!
//! Each pool keeps lifetime counters — tasks executed, steals, cumulative
//! busy time — exposed via [`ThreadPool::stats`] as [`PoolStats`].

mod par;
mod pool;

pub use par::{block_rows, par_for_blocks, par_for_rows, par_join, par_reduce};
pub use pool::{PoolStats, Scope, ThreadPool};

use std::sync::OnceLock;

/// Name of the environment variable overriding the global pool size.
pub const THREADS_ENV: &str = "TABLEDC_THREADS";

/// Computes the thread count the global pool will use: `TABLEDC_THREADS` if
/// set to a positive integer, otherwise the machine's available parallelism.
pub fn configured_threads() -> usize {
    match std::env::var(THREADS_ENV) {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!(
                    "runtime: ignoring invalid {THREADS_ENV}={v:?} (want a positive integer)"
                );
                default_threads()
            }
        },
        Err(_) => default_threads(),
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The lazily-initialized process-wide pool used by all parallel kernels.
///
/// Sized by [`configured_threads`] on first use; the environment variable is
/// read once, so set `TABLEDC_THREADS` before the first parallel operation.
pub fn global() -> &'static ThreadPool {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    GLOBAL.get_or_init(|| ThreadPool::new(configured_threads()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_pool_is_initialized_once_and_usable() {
        let a = global() as *const ThreadPool;
        let b = global() as *const ThreadPool;
        assert_eq!(a, b);
        let (x, y) = par_join(global(), || 1, || 2);
        assert_eq!(x + y, 3);
        assert!(global().threads() >= 1);
    }

    #[test]
    fn configured_threads_is_positive() {
        assert!(configured_threads() >= 1);
    }

    /// Instrumentation is outside the reduction trees, so enabling the
    /// trace sink, the span tree, *and* allocation tracking — profiling
    /// fully on — must not change a single output bit for any thread
    /// count: the determinism contract survives observability.
    #[test]
    fn tracing_on_is_bit_identical_and_publishes_pool_gauges() {
        let values: Vec<f64> = (0..1553).map(|i| (i as f64 * 0.37).sin() * 1e3).collect();
        let reduce = |pool: &ThreadPool| {
            par_reduce(pool, values.len(), 29, |r| r.map(|i| values[i]).sum::<f64>(), |a, b| {
                a + b
            })
            .unwrap()
        };
        let untraced = obs::test_support::with_sink_disabled(|| reduce(&ThreadPool::new(1)));
        let (traced, _lines) = obs::test_support::with_memory_sink(|| {
            obs::profile::set_alloc_tracking(true);
            let results = [1usize, 2, 4, 8].map(|threads| {
                let _span = obs::span!("runtime.test_reduce");
                reduce(&ThreadPool::new(threads))
            });
            obs::profile::set_alloc_tracking(false);
            results
        });
        for (threads, got) in [1usize, 2, 4, 8].into_iter().zip(traced) {
            assert!(
                got.to_bits() == untraced.to_bits(),
                "threads={threads}: {got} != {untraced}"
            );
        }
    }

    #[test]
    fn record_stats_publishes_gauges() {
        let pool = ThreadPool::new(2);
        pool.scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {});
            }
        });
        // The sink-control lock also serializes against the traced test
        // above, whose scope exits write the same pool.* gauges.
        let (threads, tasks, ratio) = obs::test_support::with_sink_disabled(|| {
            pool.record_stats();
            let registry = obs::registry();
            (
                registry.gauge("pool.threads").get(),
                registry.gauge("pool.tasks_executed").get(),
                registry.gauge("pool.steal_ratio").get(),
            )
        });
        assert_eq!(threads, 2.0);
        assert!(tasks >= 8.0);
        assert!(ratio >= 0.0);
    }
}

#[cfg(test)]
mod proptests {
    use crate::{par_for_rows, par_reduce, ThreadPool};
    use proptest::prelude::*;

    proptest! {
        /// par_reduce over arbitrary float data, chunk sizes, and thread
        /// counts is bit-identical to the 1-thread evaluation.
        #[test]
        fn par_reduce_bit_identical_across_threads(
            values in proptest::collection::vec(-1e6..1e6f64, 257),
            chunk in 1..64usize,
        ) {
            let serial = par_reduce(
                &ThreadPool::new(1),
                values.len(),
                chunk,
                |r| r.map(|i| values[i]).sum::<f64>(),
                |a, b| a + b,
            ).unwrap();
            for threads in [2usize, 4, 8] {
                let pool = ThreadPool::new(threads);
                let got = par_reduce(
                    &pool,
                    values.len(),
                    chunk,
                    |r| r.map(|i| values[i]).sum::<f64>(),
                    |a, b| a + b,
                ).unwrap();
                prop_assert!(got.to_bits() == serial.to_bits(),
                    "threads={threads} chunk={chunk}: {got} != {serial}");
            }
        }

        /// Row maps are exact for non-divisible block sizes and any threads.
        #[test]
        fn par_for_rows_exact_for_adversarial_blocks(
            rows in 0..40usize,
            cols in 1..9usize,
            block in 1..13usize,
        ) {
            let base: Vec<f64> = (0..rows * cols).map(|i| i as f64 * 0.5).collect();
            let mut serial = base.clone();
            par_for_rows(&ThreadPool::new(1), &mut serial, cols, block, |first, b| {
                for (r, row) in b.chunks_mut(cols).enumerate() {
                    for x in row.iter_mut() { *x = x.exp().ln_1p() + (first + r) as f64; }
                }
            });
            for threads in [2usize, 4, 8] {
                let mut data = base.clone();
                par_for_rows(&ThreadPool::new(threads), &mut data, cols, block, |first, b| {
                    for (r, row) in b.chunks_mut(cols).enumerate() {
                        for x in row.iter_mut() { *x = x.exp().ln_1p() + (first + r) as f64; }
                    }
                });
                prop_assert!(data == serial, "threads={threads}");
            }
        }
    }
}
