//! Similarity kernels mapping squared distances to soft assignments
//! (paper Eq. 7 and the Table 5 ablation).

use autograd::{Tape, Var};

/// Kernel turning an `n×k` squared-distance matrix into unnormalized soft
/// assignments `q` (larger = more similar).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Kernel {
    /// Heavy-tailed Cauchy kernel `q = 1 / (1 + D²/γ²)` — TableDC's choice
    /// (Eq. 7): its undefined mean/variance makes it "robust to outliers,
    /// as its shape is unaffected by them".
    Cauchy {
        /// Scale hyper-parameter γ.
        gamma: f64,
    },
    /// Student's-t kernel `q = (1 + D²/ν)^(−(ν+1)/2)` — the DEC/SDCN
    /// default; approaches a Gaussian for large ν (less outlier-tolerant).
    StudentT {
        /// Degrees of freedom ν.
        nu: f64,
    },
    /// Gaussian kernel `q = exp(−D²/(2σ²))` — standard normal decay.
    Normal {
        /// Bandwidth σ.
        sigma: f64,
    },
}

impl Kernel {
    /// TableDC's default kernel: Cauchy with γ = 1.
    pub const PAPER: Kernel = Kernel::Cauchy { gamma: 1.0 };

    /// Applies the kernel to squared distances on the tape.
    pub fn apply(self, t: &Tape, sq_dist: Var) -> Var {
        match self {
            Kernel::Cauchy { gamma } => {
                assert!(gamma > 0.0, "Cauchy kernel: gamma must be positive");
                let scaled = t.scale(sq_dist, 1.0 / (gamma * gamma));
                t.pow_scalar(t.add_scalar(scaled, 1.0), -1.0)
            }
            Kernel::StudentT { nu } => {
                assert!(nu > 0.0, "Student-t kernel: nu must be positive");
                let scaled = t.scale(sq_dist, 1.0 / nu);
                t.pow_scalar(t.add_scalar(scaled, 1.0), -(nu + 1.0) / 2.0)
            }
            Kernel::Normal { sigma } => {
                assert!(sigma > 0.0, "Normal kernel: sigma must be positive");
                t.exp(t.scale(sq_dist, -1.0 / (2.0 * sigma * sigma)))
            }
        }
    }

    /// Display name for experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Cauchy { .. } => "Cauchy",
            Kernel::StudentT { .. } => "Student's t",
            Kernel::Normal { .. } => "Normal",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use autograd::check::assert_grad_close;
    use tensor::random::{randn, rng};
    use tensor::Matrix;

    fn apply_to(k: Kernel, d2: &Matrix) -> Matrix {
        let t = Tape::new();
        let v = t.constant(d2.clone());
        t.value(k.apply(&t, v))
    }

    #[test]
    fn kernels_are_one_at_zero_distance() {
        let d2 = Matrix::zeros(1, 3);
        for k in [Kernel::PAPER, Kernel::StudentT { nu: 1.0 }, Kernel::Normal { sigma: 1.0 }] {
            let q = apply_to(k, &d2);
            assert!(q.as_slice().iter().all(|&v| (v - 1.0).abs() < 1e-12), "{k:?}");
        }
    }

    #[test]
    fn kernels_decrease_with_distance() {
        let d2 = Matrix::from_rows(&[&[0.0, 1.0, 4.0, 100.0]]);
        for k in [Kernel::PAPER, Kernel::StudentT { nu: 2.0 }, Kernel::Normal { sigma: 1.0 }] {
            let q = apply_to(k, &d2);
            for w in q.as_slice().windows(2) {
                assert!(w[0] > w[1], "{k:?} not monotone: {:?}", q.as_slice());
            }
            assert!(q.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn cauchy_has_heavier_tail_than_normal() {
        // The paper's outlier-tolerance argument: at large distances the
        // Cauchy similarity stays well above the Gaussian one.
        let d2 = Matrix::from_rows(&[&[25.0]]);
        let cauchy = apply_to(Kernel::Cauchy { gamma: 1.0 }, &d2)[(0, 0)];
        let normal = apply_to(Kernel::Normal { sigma: 1.0 }, &d2)[(0, 0)];
        assert!(cauchy > normal * 100.0, "cauchy {cauchy} vs normal {normal}");
    }

    #[test]
    fn student_t_with_nu1_matches_cauchy_gamma1() {
        // t-distribution with ν=1 *is* the Cauchy distribution.
        let d2 = Matrix::from_rows(&[&[0.3, 2.0, 9.0]]);
        let c = apply_to(Kernel::Cauchy { gamma: 1.0 }, &d2);
        let s = apply_to(Kernel::StudentT { nu: 1.0 }, &d2);
        assert!(c.max_abs_diff(&s) < 1e-12);
    }

    #[test]
    fn gamma_controls_kernel_width() {
        let d2 = Matrix::from_rows(&[&[1.0]]);
        let narrow = apply_to(Kernel::Cauchy { gamma: 0.5 }, &d2)[(0, 0)];
        let wide = apply_to(Kernel::Cauchy { gamma: 2.0 }, &d2)[(0, 0)];
        assert!(wide > narrow);
    }

    #[test]
    fn kernel_gradients_check_out() {
        let mut d2 = randn(3, 4, &mut rng(1));
        d2.map_inplace(|v| v * v + 0.1); // positive distances
        for k in [
            Kernel::Cauchy { gamma: 1.3 },
            Kernel::StudentT { nu: 1.0 },
            Kernel::Normal { sigma: 0.8 },
        ] {
            assert_grad_close(&d2, |t, v| t.mean(k.apply(t, v)), 1e-5, 1e-4);
        }
    }
}
