//! The TableDC model: autoencoder + Mahalanobis/Cauchy self-supervised
//! clustering head, trained per Algorithm 1.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

use autograd::Tape;
use clustering::metrics::num_clusters;
use nn::loss::{kl_div, kl_div_value, mse};
use nn::{Adam, Autoencoder, Optimizer, ParamId, Params};
use obs::health::{HealthMonitor, HealthReport, Policy, Verdict};
use rand::rngs::StdRng;
use tensor::Matrix;

use crate::diagnostics::{self, ConvergenceVerdict, DiagnosticsTracker, VerdictRules};
use crate::distance::Distance;
use crate::init::Init;
use crate::kernel::Kernel;

/// Configuration of a TableDC run. Defaults follow §3 and §4.3 of the
/// paper; the distance/kernel/init fields expose the Table 5 and Figure 4
/// ablations.
#[derive(Debug, Clone)]
pub struct TableDcConfig {
    /// Number of clusters 𝕂.
    pub k: usize,
    /// Latent dimension (paper: 100; scaled default: 32).
    pub latent_dim: usize,
    /// Encoder layer widths, input first, latent last. `None` selects the
    /// compact default `[d, 128, 64, latent]`; the paper-scale layout is
    /// available via [`TableDcConfig::paper_architecture`].
    pub encoder_dims: Option<Vec<usize>>,
    /// Clustering-loss weight α (Eq. 13; paper: 0.9).
    pub alpha: f64,
    /// Distance measure in the self-supervised module (paper: Mahalanobis
    /// with Σ = 0.01·I).
    pub distance: Distance,
    /// Similarity kernel (paper: Cauchy).
    pub kernel: Kernel,
    /// Cluster-center initializer (paper: Birch).
    pub init: Init,
    /// Autoencoder pretraining epochs (paper: 30, or 100 for entity
    /// resolution).
    pub pretrain_epochs: usize,
    /// Joint training epochs (paper: 200 schema inference / 100 domain
    /// discovery / 50 entity resolution).
    pub epochs: usize,
    /// Adam learning rate.
    pub lr: f64,
    /// Division-by-zero guard ε of Eq. 8.
    pub eps: f64,
    /// Training-health monitoring: NaN/Inf policy, diagnostic-dump
    /// location, and fault injection for tests.
    pub health: HealthConfig,
}

/// Health-monitoring knobs of a TableDC run.
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// Explicit policy override; `None` reads `TABLEDC_HEALTH`
    /// (off/warn/strict, defaulting to warn).
    pub policy: Option<Policy>,
    /// Directory diagnostic dumps are written to on a strict-policy abort.
    pub dump_dir: String,
    /// The run's base RNG seed, recorded in dumps so an abort is
    /// reproducible. Metadata only — it never feeds the RNG.
    pub run_seed: Option<u64>,
    /// Fault injection: at the start of this epoch, poison the first
    /// cluster-center entry with NaN. In [`TableDc::fit_best_of`] only the
    /// *first* restart is poisoned, so best-of-N recovery is testable.
    pub nan_epoch: Option<usize>,
}

impl Default for HealthConfig {
    fn default() -> Self {
        Self { policy: None, dump_dir: "results/dumps".to_string(), run_seed: None, nan_epoch: None }
    }
}

impl TableDcConfig {
    /// Scaled-down defaults suitable for CPU experiments.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            latent_dim: 32,
            encoder_dims: None,
            alpha: 0.9,
            distance: Distance::PAPER,
            kernel: Kernel::PAPER,
            init: Init::Birch,
            pretrain_epochs: 30,
            epochs: 100,
            lr: 1e-3,
            eps: 1e-10,
            health: HealthConfig::default(),
        }
    }

    /// The paper-scale architecture: latent 100, encoder
    /// `d → 500 → 500 → 2000 → 100` (§4.3).
    pub fn paper_architecture(mut self, input_dim: usize) -> Self {
        self.latent_dim = 100;
        self.encoder_dims = Some(vec![input_dim, 500, 500, 2000, 100]);
        self
    }
}

/// Per-epoch training history — the raw series behind Figure 5.
#[derive(Debug, Clone, Default)]
pub struct History {
    /// Reconstruction loss `re_loss` per epoch (Eq. 12).
    pub re_loss: Vec<f64>,
    /// Clustering loss `KL(p‖m)` per epoch (Eq. 10).
    pub ce_loss: Vec<f64>,
    /// Reported divergence `KL(p‖q)` per epoch (the quantity plotted in
    /// Figure 5's right panel).
    pub kl_pq: Vec<f64>,
    /// Wall-clock milliseconds per joint-training epoch. Always recorded
    /// (a monotonic-clock read per epoch), independent of whether the
    /// `TABLEDC_TRACE` event sink is active.
    pub epoch_ms: Vec<f64>,
    /// Global gradient L2 norm per epoch (across all parameters).
    pub grad_norm: Vec<f64>,
    /// Update-to-parameter-norm ratio `‖Δθ‖/‖θ‖` per epoch.
    pub update_ratio: Vec<f64>,
    /// Normalized entropy of the hard-label cluster shares per epoch
    /// (see [`crate::diagnostics::EpochDiagnostics::share_entropy`]).
    pub share_entropy: Vec<f64>,
    /// Smallest cluster share per epoch.
    pub min_share: Vec<f64>,
    /// Largest cluster share per epoch (collapse detector).
    pub max_share: Vec<f64>,
    /// Fraction of rows whose hard label changed vs the previous epoch.
    pub delta_label_frac: Vec<f64>,
    /// Mean `top1 − top2` assignment margin per epoch.
    pub mean_margin: Vec<f64>,
    /// Mean L2 centroid step vs the previous epoch.
    pub centroid_drift: Vec<f64>,
}

impl History {
    /// Pushes one epoch of structural diagnostics (the loss/gradient
    /// series are pushed individually by the training loop).
    pub fn push_diagnostics(&mut self, d: &diagnostics::EpochDiagnostics) {
        self.share_entropy.push(d.share_entropy);
        self.min_share.push(d.min_share);
        self.max_share.push(d.max_share);
        self.delta_label_frac.push(d.delta_label_frac);
        self.mean_margin.push(d.mean_margin);
        self.centroid_drift.push(d.centroid_drift);
    }
}

/// A fitted TableDC model.
pub struct TableDc {
    config: TableDcConfig,
    params: Params,
    ae: Autoencoder,
    centers: ParamId,
}

/// Result of fitting TableDC to a dataset.
pub struct TableDcFit {
    /// Hard cluster labels (argmax of the soft assignments).
    pub labels: Vec<usize>,
    /// Final normalized soft assignments `q` (Eq. 8).
    pub q: Matrix,
    /// Final clustering probabilities `m` (Eq. 9, Algorithm 1's output).
    pub m: Matrix,
    /// Training history.
    pub history: History,
    /// Number of distinct clusters actually used in `labels`.
    pub clusters_used: usize,
    /// Numerical-health verdict of the training run. When the policy is
    /// `strict` and a NaN/Inf was detected, `health.verdict` is
    /// [`Verdict::Aborted`], training stopped at that epoch, and
    /// `health.dump_path` names the diagnostic dump.
    pub health: HealthReport,
    /// Structural convergence verdict (converged / oscillating / stalled /
    /// collapsed) with the deciding epoch and rule.
    pub convergence: ConvergenceVerdict,
}

impl TableDc {
    /// Trains TableDC on the rows of `x` following Algorithm 1:
    /// AE pretraining, Birch center initialization, then joint optimization
    /// of `α·KL(p‖m) + re_loss` with Adam.
    ///
    /// # Panics
    /// Panics if `k` is 0 or exceeds the number of rows.
    pub fn fit(config: TableDcConfig, x: &Matrix, rng: &mut StdRng) -> (TableDc, TableDcFit) {
        let _fit_timer = obs::span!("tabledc.fit");
        assert!(config.k >= 1, "TableDC: k must be >= 1");
        assert!(config.k <= x.rows(), "TableDC: k = {} > n = {}", config.k, x.rows());

        // Standardize features in front of the encoder (part of the deep
        // model's preprocessing; the raw matrix is what SC baselines see).
        let x = &x.standardize_cols();

        // Line 1: pretrain the autoencoder.
        let mut params = Params::new();
        let ae = match &config.encoder_dims {
            Some(dims) => Autoencoder::new(&mut params, dims, rng),
            None => Autoencoder::compact(&mut params, x.cols(), config.latent_dim, rng),
        };
        ae.pretrain(&mut params, x, config.pretrain_epochs, config.lr);

        // Line 2: initialize cluster centers with Birch (or an ablation
        // initializer) on the pretrained latent space.
        let z0 = ae.embed(&params, x);
        let c0 = config.init.centers(&z0, config.k, rng);
        let centers = params.register_named("centers", c0);

        let mut model = TableDc { config, params, ae, centers };
        let fit = model.train(x);
        (model, fit)
    }

    /// Runs [`TableDc::fit`] `restarts` times and keeps the run whose hard
    /// labels score the best **silhouette** in its own latent space — an
    /// unsupervised model-selection criterion, mirroring §4.3's protocol of
    /// initializing the K-means-based methods 20 times and keeping the
    /// best solution. Deep fits are expensive, so 3–5 restarts is typical.
    ///
    /// # Panics
    /// Panics if `restarts == 0` (and propagates [`TableDc::fit`] panics).
    pub fn fit_best_of(
        config: TableDcConfig,
        x: &Matrix,
        restarts: usize,
        rng: &mut StdRng,
    ) -> (TableDc, TableDcFit) {
        assert!(restarts >= 1, "fit_best_of: need at least one restart");
        let mut best: Option<(f64, usize, TableDc, TableDcFit)> = None;
        let mut last_aborted: Option<(TableDc, TableDcFit)> = None;
        for restart in 0..restarts {
            let mut cfg = config.clone();
            if restart > 0 {
                // Fault injection targets only the first restart (see
                // [`HealthConfig::nan_epoch`]) so recovery is observable.
                cfg.health.nan_epoch = None;
            }
            let (model, fit) = TableDc::fit(cfg, x, rng);
            if fit.health.verdict == Verdict::Aborted {
                // A poisoned restart never competes for the best model.
                obs::event("tabledc.restart_skipped")
                    .u64("restart", restart as u64)
                    .str("verdict", fit.health.verdict.as_str())
                    .emit();
                last_aborted = Some((model, fit));
                continue;
            }
            let z = model.embed(x);
            let score = clustering::internal::silhouette_score(&z, &fit.labels);
            obs::event("tabledc.restart")
                .u64("restart", restart as u64)
                .f64("silhouette", score)
                .u64("clusters_used", fit.clusters_used as u64)
                .emit();
            if best.as_ref().is_none_or(|(b, _, _, _)| score > *b) {
                best = Some((score, restart, model, fit));
            }
        }
        match best {
            Some((score, winner, model, fit)) => {
                obs::event("tabledc.restart_winner")
                    .u64("restart", winner as u64)
                    .u64("restarts", restarts as u64)
                    .f64("silhouette", score)
                    .emit();
                (model, fit)
            }
            // Every restart aborted: hand back the last one so callers can
            // inspect `fit.health` (verdict, dump path) instead of panicking.
            None => last_aborted.expect("at least one restart ran"),
        }
    }

    /// Lines 3–12 of Algorithm 1: the joint optimization loop.
    fn train(&mut self, x: &Matrix) -> TableDcFit {
        let _train_timer = obs::span!("tabledc.train");
        let cfg = self.config.clone();
        let mut adam = Adam::new(cfg.lr);
        let mut history = History::default();
        let mut final_q = Matrix::zeros(x.rows(), cfg.k);
        let mut final_m = Matrix::zeros(x.rows(), cfg.k);
        let mut tracker = DiagnosticsTracker::new();
        let fit_id = diagnostics::next_fit_id();
        let epoch_hist = obs::registry().histogram("tabledc.epoch_ms");
        let re_series = obs::registry().series("tabledc.re_loss");
        let kl_series = obs::registry().series("tabledc.kl_pq");
        let grad_series = obs::registry().series("tabledc.grad_norm");
        let mut monitor = match cfg.health.policy {
            Some(p) => HealthMonitor::new(p),
            None => HealthMonitor::from_env(),
        };

        for epoch in 0..cfg.epochs {
            let epoch_start = std::time::Instant::now();
            if cfg.health.nan_epoch == Some(epoch) {
                // Fault injection (tests/diagnostics): poison one center
                // entry; the NaN propagates through d², q, and the losses
                // exactly like a real divergence would.
                self.params.get_mut(self.centers)[(0, 0)] = f64::NAN;
            }
            let tape = Tape::new();
            let bound = self.params.bind(&tape);
            let xv = tape.constant(x.clone());

            // Line 4: latent representation z.
            let z = self.ae.encode(&bound, xv);
            let recon = self.ae.decode(&bound, z);

            // Lines 5–6: Mahalanobis distances between z and c.
            let c = bound.var(self.centers);
            let d2 = cfg
                .distance
                .sq_cdist(&tape, z, c)
                .expect("distance computation failed (non-SPD covariance)");

            // Line 7: Cauchy soft assignments (Eq. 7).
            let q_raw = cfg.kernel.apply(&tape, d2);

            // Line 8a: normalize q (Eq. 8).
            let sums = tape.add_scalar(tape.row_sums(q_raw), cfg.eps);
            let q = tape.div_col_broadcast(q_raw, sums);

            // Line 8b: softmax → predicted probabilities m (Eq. 9).
            let m = tape.softmax_rows(q);

            // Line 9: target distribution p from q (Eq. 11).
            let q_val = tape.value(q);
            let p = target_distribution(&q_val);

            // Line 10: losses (Eq. 10, 12, 13).
            let ce = kl_div(&tape, &p, m);
            let re = mse(&tape, xv, recon);
            let loss = tape.add(tape.scale(ce, cfg.alpha), re);

            let ce_val = tape.value(ce)[(0, 0)];
            let re_val = tape.value(re)[(0, 0)];
            let kl_pq_val = kl_div_value(&p, &q_val);

            // Health checks run before the history pushes and the update so
            // a strict-policy abort leaves neither a poisoned history entry
            // nor a poisoned optimizer state behind.
            let mut abort_tensor: Option<String> = None;
            for (name, v) in [("re_loss", re_val), ("ce_loss", ce_val), ("kl_pq", kl_pq_val)] {
                if monitor.check_scalar(name, v, epoch as u64).should_abort() {
                    abort_tensor = Some(name.to_string());
                    break;
                }
            }
            if abort_tensor.is_none()
                && monitor.check_slice("q", q_val.as_slice(), epoch as u64).should_abort()
            {
                abort_tensor = Some("q".to_string());
            }
            if let Some(tensor) = abort_tensor {
                self.abort_epoch(&mut monitor, &history, &tensor, epoch);
                break;
            }

            // Line 11: backprop and update, instrumented with gradient and
            // update-norm telemetry.
            let grads = tape.backward(loss);
            let stats = adam.step_from_tape_instrumented(&mut self.params, &bound, &grads);
            if let Some(id) = stats.nonfinite_grad {
                let tensor = format!("grad.{}", self.params.name(id));
                let norm = stats
                    .grad_norms
                    .iter()
                    .find(|(i, _)| *i == id)
                    .map_or(f64::NAN, |&(_, n)| n);
                if monitor.check_scalar(&tensor, norm, epoch as u64).should_abort() {
                    self.abort_epoch(&mut monitor, &history, &tensor, epoch);
                    break;
                }
            }
            stats.record(&self.params);
            stats.emit_event(epoch as u64);

            history.ce_loss.push(ce_val);
            history.re_loss.push(re_val);
            history.kl_pq.push(kl_pq_val);
            history.grad_norm.push(stats.global_grad_norm);
            history.update_ratio.push(stats.update_ratio());

            // Per-epoch telemetry: the convergence signal behind Figure 5
            // plus the structural diagnostics (cluster shares, churn,
            // margin, centroid drift). Pure observation — nothing here
            // feeds back into training.
            let diag = tracker.observe(&q_val, Some(self.params.get(self.centers)));
            history.push_diagnostics(&diag);
            re_series.record(re_val);
            kl_series.record(kl_pq_val);
            grad_series.record(stats.global_grad_norm);
            diagnostics::record_series("tabledc.diag", &diag);

            let epoch_ms = epoch_start.elapsed().as_secs_f64() * 1e3;
            history.epoch_ms.push(epoch_ms);
            epoch_hist.record(epoch_ms);
            obs::event("tabledc.epoch")
                .u64("fit", fit_id)
                .u64("epoch", epoch as u64)
                .f64("re_loss", re_val)
                .f64("ce_loss", ce_val)
                .f64("kl_pq", kl_pq_val)
                .f64("delta_label_frac", diag.delta_label_frac)
                .f64("grad_norm", stats.global_grad_norm)
                .f64("update_ratio", stats.update_ratio())
                .f64("epoch_ms", epoch_ms)
                .emit();
            diagnostics::emit_diag_event("tabledc.diag", None, fit_id, &diag);

            final_q = q_val;
            final_m = tape.value(m);
        }

        if cfg.epochs == 0 {
            // Still produce assignments from the initialized model.
            let (q, m) = self.soft_assignments(x);
            final_q = q;
            final_m = m;
        }

        let labels = final_q.argmax_rows();
        let clusters_used = num_clusters(&labels);
        let convergence = tracker.verdict(cfg.k, &VerdictRules::default());
        obs::event("tabledc.convergence")
            .u64("fit", fit_id)
            .str("status", convergence.status.as_str())
            .i64("epoch", convergence.epoch.map_or(-1, |e| e as i64))
            .str("rule", &convergence.rule)
            .emit();
        TableDcFit {
            labels,
            q: final_q,
            m: final_m,
            history,
            clusters_used,
            health: monitor.report(),
            convergence,
        }
    }

    /// Strict-policy abort path: writes the diagnostic dump, emits the
    /// `health.abort` event followed by the `health.dump` event naming the
    /// dump file (an invariant `trace_check` enforces), and marks the
    /// monitor aborted. The caller breaks out of the epoch loop.
    fn abort_epoch(&self, monitor: &mut HealthMonitor, history: &History, tensor: &str, epoch: usize) {
        let path = write_health_dump(&self.config, &self.params, monitor, history, tensor, epoch);
        if let Some(p) = &path {
            obs::event("health.abort")
                .str("tensor", tensor)
                .u64("epoch", epoch as u64)
                .str("policy", monitor.policy().as_str())
                .emit();
            obs::event("health.dump").str("path", p).emit();
        }
        monitor.mark_aborted(path);
    }

    /// Row-block size for batched inference. Fixed (never derived from the
    /// thread count) so the block boundaries — and therefore the outputs —
    /// are identical under `TABLEDC_THREADS=1` and parallel execution.
    const INFER_BATCH: usize = 512;

    /// Computes `(q, m)` for (possibly new) data without training.
    ///
    /// Standardization statistics are computed over the full matrix first;
    /// everything downstream is row-independent, so inference runs in
    /// parallel row blocks (each with its own local [`Tape`]) on the
    /// [`runtime::global`] pool with bit-identical results for every thread
    /// count.
    pub fn soft_assignments(&self, x: &Matrix) -> (Matrix, Matrix) {
        self.soft_assignments_std(&x.standardize_cols())
    }

    /// Batched `(q, m)` inference on an already-standardized matrix.
    fn soft_assignments_std(&self, x: &Matrix) -> (Matrix, Matrix) {
        let _infer_timer = obs::span!("tabledc.infer");
        let n = x.rows();
        if n <= Self::INFER_BATCH {
            return self.soft_assignments_block(x);
        }
        let num_blocks = n.div_ceil(Self::INFER_BATCH);
        let mut slots: Vec<Option<(Matrix, Matrix)>> = vec![None; num_blocks];
        runtime::par_for_rows(runtime::global(), &mut slots, 1, 1, |b, slot| {
            let start = b * Self::INFER_BATCH;
            let end = (start + Self::INFER_BATCH).min(n);
            let rows: Vec<usize> = (start..end).collect();
            slot[0] = Some(self.soft_assignments_block(&x.select_rows(&rows)));
        });
        let mut it = slots.into_iter().map(|s| s.expect("every block filled"));
        let (mut q, mut m) = it.next().expect("at least one block");
        for (qb, mb) in it {
            q = q.vcat(&qb);
            m = m.vcat(&mb);
        }
        (q, m)
    }

    /// `(q, m)` for one row block on a fresh local tape.
    fn soft_assignments_block(&self, x: &Matrix) -> (Matrix, Matrix) {
        let tape = Tape::new();
        let bound = self.params.bind(&tape);
        let xv = tape.constant(x.clone());
        let z = self.ae.encode(&bound, xv);
        let c = bound.var(self.centers);
        let d2 = self
            .config
            .distance
            .sq_cdist(&tape, z, c)
            .expect("distance computation failed");
        let q_raw = self.config.kernel.apply(&tape, d2);
        let sums = tape.add_scalar(tape.row_sums(q_raw), self.config.eps);
        let q = tape.div_col_broadcast(q_raw, sums);
        let m = tape.softmax_rows(q);
        (tape.value(q), tape.value(m))
    }

    /// Hard cluster assignment for (possibly new) data.
    pub fn predict(&self, x: &Matrix) -> Vec<usize> {
        self.soft_assignments(x).0.argmax_rows()
    }

    /// The latent embedding of `x` under the trained encoder.
    pub fn embed(&self, x: &Matrix) -> Matrix {
        self.ae.embed(&self.params, &x.standardize_cols())
    }

    /// The learned cluster centers (`k × latent_dim`).
    pub fn centers(&self) -> Matrix {
        self.params.get(self.centers).clone()
    }

    /// The configuration this model was trained with.
    pub fn config(&self) -> &TableDcConfig {
        &self.config
    }
}

/// Monotone counter making dump filenames unique within a process even
/// when two aborts land in the same millisecond.
static DUMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Writes a strict-abort diagnostic dump: offending tensor, policy, seed,
/// config summary, recorded violations, per-parameter L2 norms, and the
/// last 8 epochs of metric history. Returns the path, or `None` if neither
/// the configured dump dir nor the system temp dir is writable.
fn write_health_dump(
    config: &TableDcConfig,
    params: &Params,
    monitor: &HealthMonitor,
    history: &History,
    tensor: &str,
    epoch: usize,
) -> Option<String> {
    let mut out = String::with_capacity(1024);
    out.push_str("{\n  \"tensor\": ");
    obs::json::escape_into(&mut out, tensor);
    let _ = write!(out, ",\n  \"epoch\": {epoch},\n  \"policy\": ");
    obs::json::escape_into(&mut out, monitor.policy().as_str());
    out.push_str(",\n  \"seed\": ");
    match config.health.run_seed {
        Some(s) => {
            let _ = write!(out, "{s}");
        }
        None => out.push_str("null"),
    }
    let _ = write!(
        out,
        ",\n  \"config\": {{\"k\": {}, \"latent_dim\": {}, \"alpha\": ",
        config.k, config.latent_dim
    );
    obs::json::number_into(&mut out, config.alpha);
    out.push_str(", \"lr\": ");
    obs::json::number_into(&mut out, config.lr);
    let _ = write!(
        out,
        ", \"pretrain_epochs\": {}, \"epochs\": {}}},\n  \"violations\": [",
        config.pretrain_epochs, config.epochs
    );
    for (i, v) in monitor.violations().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str("\n    {\"tensor\": ");
        obs::json::escape_into(&mut out, &v.tensor);
        out.push_str(", \"kind\": ");
        obs::json::escape_into(&mut out, v.kind);
        let _ = write!(out, ", \"index\": {}, \"epoch\": {}}}", v.index, v.epoch);
    }
    out.push_str("\n  ],\n  \"param_norms\": {");
    for (i, id) in params.ids().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str("\n    ");
        obs::json::escape_into(&mut out, params.name(id));
        out.push_str(": ");
        obs::json::number_into(&mut out, params.get(id).frobenius_sq().sqrt());
    }
    out.push_str("\n  },\n  \"recent\": {");
    let series: [(&str, &[f64]); 5] = [
        ("re_loss", &history.re_loss),
        ("ce_loss", &history.ce_loss),
        ("kl_pq", &history.kl_pq),
        ("grad_norm", &history.grad_norm),
        ("update_ratio", &history.update_ratio),
    ];
    for (i, (name, values)) in series.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str("\n    ");
        obs::json::escape_into(&mut out, name);
        out.push_str(": [");
        let tail = &values[values.len().saturating_sub(8)..];
        for (j, v) in tail.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            obs::json::number_into(&mut out, *v);
        }
        out.push(']');
    }
    out.push_str("\n  }\n}\n");

    let ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_millis() as u64);
    let seq = DUMP_COUNTER.fetch_add(1, Ordering::Relaxed);
    let file = format!("dump-{ms}-{seq}.json");
    for dir in [std::path::PathBuf::from(&config.health.dump_dir), std::env::temp_dir()] {
        if std::fs::create_dir_all(&dir).is_err() {
            continue;
        }
        let path = dir.join(&file);
        if std::fs::write(&path, &out).is_ok() {
            return Some(path.to_string_lossy().into_owned());
        }
    }
    None
}

/// The target distribution `p` (Eq. 11 with the standard DEC row
/// normalization): `p_ij ∝ q_ij² / f_j` where `f_j = Σ_i q_ij` are the soft
/// cluster frequencies; rows are normalized to sum to 1 so `p` is a valid
/// distribution. Squaring emphasizes confident assignments; dividing by
/// `f_j` prevents large clusters from dominating (§2.1).
pub fn target_distribution(q: &Matrix) -> Matrix {
    let (n, k) = q.shape();
    let f = q.col_sums();
    let mut p = Matrix::zeros(n, k);
    for i in 0..n {
        let mut row_sum = 0.0;
        for j in 0..k {
            let v = if f[j] > 0.0 { q[(i, j)] * q[(i, j)] / f[j] } else { 0.0 };
            p[(i, j)] = v;
            row_sum += v;
        }
        if row_sum > 0.0 {
            for j in 0..k {
                p[(i, j)] /= row_sum;
            }
        }
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use clustering::metrics::{accuracy, adjusted_rand_index};
    use datagen::{generate_mixture, MixtureConfig};
    use tensor::random::rng;

    fn small_config(k: usize) -> TableDcConfig {
        TableDcConfig {
            latent_dim: 8,
            encoder_dims: Some(vec![16, 24, 8]),
            pretrain_epochs: 15,
            epochs: 30,
            ..TableDcConfig::new(k)
        }
    }

    fn workload(seed: u64) -> (Matrix, Vec<usize>) {
        let cfg = MixtureConfig {
            n: 120,
            k: 4,
            dim: 16,
            separation: 3.0,
            correlation: 0.4,
            normalize: true,
            ..Default::default()
        };
        let g = generate_mixture(&cfg, &mut rng(seed));
        (g.x, g.labels)
    }

    #[test]
    fn target_distribution_rows_sum_to_one_and_sharpen() {
        let q = Matrix::from_rows(&[&[0.6, 0.4], &[0.3, 0.7]]);
        let p = target_distribution(&q);
        for i in 0..2 {
            let s: f64 = p.row(i).iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
        // Sharper: the max entry grows.
        assert!(p[(0, 0)] > 0.6);
        assert!(p[(1, 1)] > 0.7);
    }

    #[test]
    fn target_distribution_handles_empty_cluster() {
        let q = Matrix::from_rows(&[&[1.0, 0.0], &[1.0, 0.0]]);
        let p = target_distribution(&q);
        assert!(p.all_finite());
        assert_eq!(p[(0, 1)], 0.0);
    }

    #[test]
    fn fit_recovers_mixture_structure() {
        let (x, truth) = workload(1);
        let (_, fit) = TableDc::fit(small_config(4), &x, &mut rng(2));
        let ari = adjusted_rand_index(&fit.labels, &truth);
        assert!(ari > 0.5, "ARI = {ari}");
        assert!(accuracy(&fit.labels, &truth) > 0.6);
    }

    #[test]
    fn soft_assignments_are_valid_distributions() {
        let (x, _) = workload(3);
        let (model, fit) = TableDc::fit(small_config(4), &x, &mut rng(4));
        for i in 0..fit.q.rows() {
            let qs: f64 = fit.q.row(i).iter().sum();
            let ms: f64 = fit.m.row(i).iter().sum();
            assert!((qs - 1.0).abs() < 1e-6, "q row {i} sums to {qs}");
            assert!((ms - 1.0).abs() < 1e-9, "m row {i} sums to {ms}");
        }
        // predict() agrees with the fit labels on the training data.
        assert_eq!(model.predict(&x), fit.labels);
    }

    #[test]
    fn reconstruction_loss_decreases() {
        let (x, _) = workload(5);
        let (_, fit) = TableDc::fit(small_config(4), &x, &mut rng(6));
        let first = fit.history.re_loss[0];
        let last = *fit.history.re_loss.last().expect("non-empty");
        assert!(
            last <= first,
            "re_loss should not increase: {first} → {last}"
        );
    }

    #[test]
    fn history_lengths_match_epochs() {
        let (x, _) = workload(7);
        let cfg = small_config(4);
        let epochs = cfg.epochs;
        let (_, fit) = TableDc::fit(cfg, &x, &mut rng(8));
        assert_eq!(fit.history.re_loss.len(), epochs);
        assert_eq!(fit.history.ce_loss.len(), epochs);
        assert_eq!(fit.history.kl_pq.len(), epochs);
        assert_eq!(fit.history.epoch_ms.len(), epochs);
        assert_eq!(fit.history.grad_norm.len(), epochs);
        assert_eq!(fit.history.update_ratio.len(), epochs);
        assert_eq!(fit.history.share_entropy.len(), epochs);
        assert_eq!(fit.history.min_share.len(), epochs);
        assert_eq!(fit.history.max_share.len(), epochs);
        assert_eq!(fit.history.delta_label_frac.len(), epochs);
        assert_eq!(fit.history.mean_margin.len(), epochs);
        assert_eq!(fit.history.centroid_drift.len(), epochs);
        assert!(fit.history.grad_norm.iter().all(|v| v.is_finite() && *v >= 0.0));
        assert!(fit.history.update_ratio.iter().all(|v| v.is_finite() && *v >= 0.0));
        for (lo, hi) in fit.history.min_share.iter().zip(&fit.history.max_share) {
            assert!((0.0..=1.0).contains(lo) && (0.0..=1.0).contains(hi) && lo <= hi);
        }
        assert!(fit.history.delta_label_frac.iter().all(|v| (0.0..=1.0).contains(v)));
        assert_eq!(fit.health.verdict, Verdict::Healthy);
        assert_eq!(fit.health.total_violations, 0);
        // A healthy full-length fit always carries a decided verdict.
        assert_ne!(fit.convergence.status, crate::ConvergenceStatus::Unknown);
        assert!(!fit.convergence.rule.is_empty());
    }

    #[test]
    fn untraced_fit_emits_no_events_but_still_times_epochs() {
        let (x, _) = workload(15);
        let cfg = small_config(4);
        let epochs = cfg.epochs;
        let fit = obs::test_support::with_sink_disabled(|| {
            assert!(!obs::enabled());
            let (_, fit) = TableDc::fit(cfg, &x, &mut rng(16));
            fit
        });
        assert_eq!(fit.history.epoch_ms.len(), epochs);
        assert!(
            fit.history.epoch_ms.iter().all(|&ms| ms >= 0.0 && ms.is_finite()),
            "epoch timings must be finite and nonnegative"
        );
        // Cumulative epoch time is monotone nonnegative by construction.
        let mut cumulative = 0.0;
        for &ms in &fit.history.epoch_ms {
            let next = cumulative + ms;
            assert!(next >= cumulative);
            cumulative = next;
        }
    }

    #[test]
    fn tracing_on_does_not_perturb_training() {
        let (x, _) = workload(17);
        let untraced =
            obs::test_support::with_sink_disabled(|| TableDc::fit(small_config(4), &x, &mut rng(18)));
        let (traced, lines) = obs::test_support::with_memory_sink(|| {
            TableDc::fit(small_config(4), &x, &mut rng(18))
        });
        assert_eq!(untraced.1.labels, traced.1.labels);
        assert_eq!(untraced.1.history.re_loss, traced.1.history.re_loss);
        assert_eq!(untraced.1.history.kl_pq, traced.1.history.kl_pq);
        // Every epoch produced a parseable event with the documented keys.
        let epoch_lines: Vec<&String> =
            lines.iter().filter(|l| l.contains("\"tabledc.epoch\"")).collect();
        assert_eq!(epoch_lines.len(), traced.1.history.re_loss.len());
        for line in epoch_lines {
            let v = obs::json::parse(line).expect("valid JSON line");
            for key in [
                "ts_ms",
                "fit",
                "epoch",
                "re_loss",
                "ce_loss",
                "kl_pq",
                "delta_label_frac",
                "grad_norm",
                "update_ratio",
                "epoch_ms",
            ] {
                assert!(v.get(key).is_some(), "missing {key} in {line}");
            }
            let delta = v.get("delta_label_frac").unwrap().as_f64().unwrap();
            assert!((0.0..=1.0).contains(&delta));
        }
        // Every epoch also carries a tabledc.diag event with the full
        // structural metric set, on the same fit id.
        let diag_lines: Vec<&String> =
            lines.iter().filter(|l| l.contains("\"tabledc.diag\"")).collect();
        assert_eq!(diag_lines.len(), traced.1.history.re_loss.len());
        for line in diag_lines {
            let v = obs::json::parse(line).expect("valid JSON line");
            for key in [
                "fit",
                "epoch",
                "share_entropy",
                "min_share",
                "max_share",
                "delta_label_frac",
                "mean_margin",
                "centroid_drift",
            ] {
                assert!(v.get(key).is_some(), "missing {key} in {line}");
            }
        }
        // And exactly one convergence event closes the fit.
        assert_eq!(lines.iter().filter(|l| l.contains("\"tabledc.convergence\"")).count(), 1);
        // Diagnostics are observability-only: the traced and untraced fits
        // reached the same verdict through identical structural series.
        assert_eq!(untraced.1.convergence, traced.1.convergence);
        assert_eq!(untraced.1.history.delta_label_frac, traced.1.history.delta_label_frac);
        assert_eq!(untraced.1.history.centroid_drift, traced.1.history.centroid_drift);
    }

    #[test]
    fn fit_best_of_logs_each_restart_and_the_winner() {
        let (x, _) = workload(19);
        let cfg = TableDcConfig { pretrain_epochs: 3, epochs: 5, ..small_config(4) };
        let (_, lines) = obs::test_support::with_memory_sink(|| {
            TableDc::fit_best_of(cfg, &x, 3, &mut rng(20))
        });
        let restarts: Vec<_> =
            lines.iter().filter(|l| l.contains("\"tabledc.restart\"")).collect();
        assert_eq!(restarts.len(), 3, "one event per restart");
        let winners: Vec<_> =
            lines.iter().filter(|l| l.contains("\"tabledc.restart_winner\"")).collect();
        assert_eq!(winners.len(), 1);
        let winner = obs::json::parse(winners[0]).expect("valid JSON");
        let winner_idx = winner.get("restart").unwrap().as_f64().unwrap();
        assert!((0.0..3.0).contains(&winner_idx));
        // The winner's silhouette is the max of the per-restart scores.
        let scores: Vec<f64> = restarts
            .iter()
            .map(|l| obs::json::parse(l).unwrap().get("silhouette").unwrap().as_f64().unwrap())
            .collect();
        let best = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(winner.get("silhouette").unwrap().as_f64().unwrap(), best);
    }

    fn strict_health(dir: &std::path::Path, nan_epoch: usize) -> HealthConfig {
        HealthConfig {
            policy: Some(Policy::Strict),
            dump_dir: dir.to_string_lossy().into_owned(),
            run_seed: Some(99),
            nan_epoch: Some(nan_epoch),
        }
    }

    fn temp_dump_dir(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("tabledc-dumps-{tag}-{}", std::process::id()))
    }

    #[test]
    fn strict_policy_aborts_on_injected_nan_and_writes_dump() {
        let (x, _) = workload(21);
        let dir = temp_dump_dir("abort");
        let nan_epoch = 10;
        let mut cfg = small_config(4);
        cfg.health = strict_health(&dir, nan_epoch);
        let ((_, fit), lines) = obs::test_support::with_memory_sink(|| {
            TableDc::fit(cfg, &x, &mut rng(22))
        });

        // Aborted within the poisoned epoch: only the healthy epochs before
        // it are in the history, and the verdict says so.
        assert_eq!(fit.health.verdict, Verdict::Aborted);
        assert_eq!(fit.history.re_loss.len(), nan_epoch);
        assert_eq!(fit.history.grad_norm.len(), nan_epoch);
        assert!(fit.health.total_violations >= 1);
        let first = &fit.health.violations[0];
        assert_eq!(first.epoch, nan_epoch as u64);

        // The dump exists, is valid JSON, and names the offending tensor.
        let dump = fit.health.dump_path.clone().expect("dump written on strict abort");
        let text = std::fs::read_to_string(&dump).expect("dump file readable");
        let v = obs::json::parse(&text).expect("dump is valid JSON");
        assert_eq!(v.get("tensor").unwrap().as_str().unwrap(), first.tensor);
        assert_eq!(v.get("epoch").unwrap().as_f64().unwrap(), nan_epoch as f64);
        assert_eq!(v.get("policy").unwrap().as_str().unwrap(), "strict");
        assert_eq!(v.get("seed").unwrap().as_f64().unwrap(), 99.0);
        assert!(v.get("param_norms").unwrap().get("centers").is_some());

        // Trace invariant: health.abort is followed by health.dump.
        let abort_idx = lines.iter().position(|l| l.contains("\"health.abort\""));
        let dump_idx = lines.iter().position(|l| l.contains("\"health.dump\""));
        assert!(abort_idx.is_some() && dump_idx.is_some());
        assert!(abort_idx < dump_idx, "health.abort must precede health.dump");

        std::fs::remove_file(&dump).ok();
    }

    #[test]
    fn warn_policy_records_violations_but_completes() {
        let (x, _) = workload(25);
        let mut cfg = TableDcConfig { pretrain_epochs: 3, epochs: 8, ..small_config(4) };
        cfg.health = HealthConfig {
            policy: Some(Policy::Warn),
            nan_epoch: Some(2),
            ..HealthConfig::default()
        };
        let epochs = cfg.epochs;
        let (_, fit) = TableDc::fit(cfg, &x, &mut rng(26));
        assert_eq!(fit.health.verdict, Verdict::Warned);
        assert!(fit.health.total_violations >= 1);
        assert!(fit.health.dump_path.is_none(), "warn policy never dumps");
        // The run completed all epochs despite the poison.
        assert_eq!(fit.history.re_loss.len(), epochs);
    }

    #[test]
    fn fit_best_of_skips_poisoned_restart_and_returns_healthy_winner() {
        let (x, _) = workload(27);
        let dir = temp_dump_dir("bestof");
        let mut cfg = TableDcConfig { pretrain_epochs: 3, epochs: 5, ..small_config(4) };
        cfg.health = strict_health(&dir, 0);
        let ((_, fit), lines) = obs::test_support::with_memory_sink(|| {
            TableDc::fit_best_of(cfg, &x, 3, &mut rng(28))
        });
        // Restart 0 was poisoned and skipped; the winner is healthy.
        assert_eq!(fit.health.verdict, Verdict::Healthy);
        let skipped: Vec<_> =
            lines.iter().filter(|l| l.contains("\"tabledc.restart_skipped\"")).collect();
        assert_eq!(skipped.len(), 1);
        let healthy: Vec<_> =
            lines.iter().filter(|l| l.contains("\"tabledc.restart\"")).collect();
        assert_eq!(healthy.len(), 2, "two healthy restarts compete");
        assert_eq!(
            lines.iter().filter(|l| l.contains("\"tabledc.restart_winner\"")).count(),
            1
        );
        if let Some(p) = lines
            .iter()
            .find(|l| l.contains("\"health.dump\""))
            .and_then(|l| obs::json::parse(l).ok())
            .and_then(|v| v.get("path").and_then(|p| p.as_str().map(String::from)))
        {
            std::fs::remove_file(p).ok();
        }
    }

    #[test]
    fn zero_epochs_still_assigns_from_init() {
        let (x, _) = workload(9);
        let cfg = TableDcConfig { epochs: 0, ..small_config(4) };
        let (_, fit) = TableDc::fit(cfg, &x, &mut rng(10));
        assert_eq!(fit.labels.len(), x.rows());
        assert!(fit.clusters_used >= 1);
    }

    #[test]
    fn deterministic_under_seed() {
        let (x, _) = workload(11);
        let (_, a) = TableDc::fit(small_config(4), &x, &mut rng(12));
        let (_, b) = TableDc::fit(small_config(4), &x, &mut rng(12));
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn batched_inference_bit_identical_to_unblocked() {
        // n > INFER_BATCH exercises the parallel row-blocked inference path;
        // its stitched output must be bit-identical to one monolithic tape
        // pass over the same standardized matrix.
        let cfg = MixtureConfig {
            n: TableDc::INFER_BATCH * 2 + 77,
            k: 3,
            dim: 16,
            separation: 3.0,
            ..Default::default()
        };
        let g = generate_mixture(&cfg, &mut rng(20));
        let tcfg = TableDcConfig { pretrain_epochs: 2, epochs: 2, ..small_config(3) };
        let (model, _) = TableDc::fit(tcfg, &g.x, &mut rng(21));
        let xs = g.x.standardize_cols();
        let (q_blocked, m_blocked) = model.soft_assignments_std(&xs);
        let (q_ref, m_ref) = model.soft_assignments_block(&xs);
        assert!(q_blocked == q_ref, "blocked q differs from single-tape q");
        assert!(m_blocked == m_ref, "blocked m differs from single-tape m");
        assert_eq!(q_blocked.shape(), (cfg.n, 3));
    }

    #[test]
    fn centers_shape_matches_config() {
        let (x, _) = workload(13);
        let (model, _) = TableDc::fit(small_config(4), &x, &mut rng(14));
        assert_eq!(model.centers().shape(), (4, 8));
        assert_eq!(model.embed(&x).shape(), (x.rows(), 8));
    }
}
