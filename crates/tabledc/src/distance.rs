//! Distance measures between latent points and cluster centers, on the
//! autograd tape (paper §3, Eq. 3–6, and the Table 5 ablation).

use autograd::{Tape, Var};
use tensor::linalg::{cholesky, empirical_covariance, solve_lower, LinalgError};
use tensor::Matrix;

/// Covariance model for the Mahalanobis distance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Covariance {
    /// `Σ = δ·I` — the paper's default with δ = 0.01 (Eq. 3). The scaled
    /// identity "adjusts the strictness of distance between data points"
    /// and sidesteps singular empirical covariances.
    ScaledIdentity(f64),
    /// Empirical covariance of the current latent batch with shrinkage
    /// `λ` towards the scaled identity — the full covariance-aware variant,
    /// kept as an ablation (DESIGN.md §5). Recomputed (and detached) each
    /// epoch.
    Empirical {
        /// Shrinkage intensity in [0, 1].
        shrinkage: f64,
    },
}

impl Covariance {
    /// The paper's default: δ = 0.01.
    pub const PAPER: Covariance = Covariance::ScaledIdentity(0.01);
}

/// Distance measure used by the self-supervised module (Table 5, top half).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Distance {
    /// Squared Euclidean — the SDCN-style choice.
    Euclidean,
    /// Cosine distance `1 − cos` (squared for kernel input).
    Cosine,
    /// Squared Mahalanobis with the given covariance model — TableDC's
    /// choice (Eq. 6).
    Mahalanobis(Covariance),
}

impl Distance {
    /// TableDC's default distance (Mahalanobis, Σ = 0.01·I).
    pub const PAPER: Distance = Distance::Mahalanobis(Covariance::PAPER);

    /// Computes the `n×k` matrix of **squared** distances between the rows
    /// of `z` and the rows of `c`, differentiable w.r.t. both.
    ///
    /// For the empirical-covariance variant, Σ is estimated from the
    /// *current values* of `z` and enters the graph as a constant whitening
    /// transform (gradients do not flow through Σ itself, matching how such
    /// losses are trained in practice).
    ///
    /// # Errors
    /// [`LinalgError`] if an empirical covariance is not positive definite
    /// even after shrinkage.
    pub fn sq_cdist(self, t: &Tape, z: Var, c: Var) -> Result<Var, LinalgError> {
        match self {
            Distance::Euclidean => Ok(t.sq_dist_cdist(z, c)),
            Distance::Cosine => {
                // 1 − ẑ·ĉᵀ, squared: normalize rows on-tape so gradients
                // account for the normalization.
                let zn = normalize_rows_on_tape(t, z);
                let cn = normalize_rows_on_tape(t, c);
                let sim = t.matmul(zn, t.transpose(cn));
                let dist = t.add_scalar(t.neg(sim), 1.0);
                Ok(t.square(dist))
            }
            Distance::Mahalanobis(cov) => match cov {
                Covariance::ScaledIdentity(delta) => {
                    assert!(delta > 0.0, "Mahalanobis: delta must be positive, got {delta}");
                    // (z−c)ᵀ(δI)⁻¹(z−c) = ‖z−c‖²/δ.
                    Ok(t.scale(t.sq_dist_cdist(z, c), 1.0 / delta))
                }
                Covariance::Empirical { shrinkage } => {
                    // Estimate Σ from current z, factor Σ = L·Lᵀ (Eq. 4),
                    // and whiten with W = L⁻ᵀ so that
                    // ‖(z−c)·W‖² = (z−c)ᵀ·Σ⁻¹·(z−c) (Eq. 5–6).
                    let sigma = t.with_value(z, |zv| empirical_covariance(zv, shrinkage));
                    let l = cholesky(&sigma)?;
                    let d = sigma.rows();
                    // L⁻¹ via forward solve against I; W = (L⁻¹)ᵀ.
                    let l_inv = solve_lower(&l, &Matrix::identity(d))?;
                    let w = t.constant(l_inv.transpose());
                    let zw = t.matmul(z, w);
                    let cw = t.matmul(c, w);
                    Ok(t.sq_dist_cdist(zw, cw))
                }
            },
        }
    }

    /// Display name for experiment tables.
    pub fn name(self) -> &'static str {
        match self {
            Distance::Euclidean => "Euclidean",
            Distance::Cosine => "Cosine",
            Distance::Mahalanobis(_) => "Mahalanobis",
        }
    }
}

/// L2-normalizes each row of `v` on the tape: `v / sqrt(rowsum(v²) + ε)`.
fn normalize_rows_on_tape(t: &Tape, v: Var) -> Var {
    let norms = t.sqrt(t.add_scalar(t.row_sums(t.square(v)), 1e-12));
    t.div_col_broadcast(v, norms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use autograd::check::assert_grad_close;
    use tensor::distance::{sq_euclidean_cdist, sq_mahalanobis_cdist};
    use tensor::random::{randn, rng};

    #[test]
    fn euclidean_matches_tensor_cdist() {
        let t = Tape::new();
        let z = t.leaf(randn(5, 3, &mut rng(1)));
        let c = t.leaf(randn(2, 3, &mut rng(2)));
        let d = Distance::Euclidean.sq_cdist(&t, z, c).unwrap();
        let expect = sq_euclidean_cdist(&t.value(z), &t.value(c));
        assert!(t.value(d).max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn scaled_identity_is_scaled_euclidean() {
        let t = Tape::new();
        let z = t.leaf(randn(4, 3, &mut rng(3)));
        let c = t.leaf(randn(2, 3, &mut rng(4)));
        let m = Distance::Mahalanobis(Covariance::ScaledIdentity(0.01))
            .sq_cdist(&t, z, c)
            .unwrap();
        let e = Distance::Euclidean.sq_cdist(&t, z, c).unwrap();
        let scaled = &t.value(e) * 100.0;
        assert!(t.value(m).max_abs_diff(&scaled) < 1e-9);
    }

    #[test]
    fn empirical_matches_tensor_mahalanobis() {
        let mut r = rng(5);
        let zv = randn(20, 4, &mut r);
        let cv = randn(3, 4, &mut r);
        let shrinkage = 0.2;
        let t = Tape::new();
        let z = t.leaf(zv.clone());
        let c = t.leaf(cv.clone());
        let d = Distance::Mahalanobis(Covariance::Empirical { shrinkage })
            .sq_cdist(&t, z, c)
            .unwrap();
        let sigma = tensor::linalg::empirical_covariance(&zv, shrinkage);
        let expect = sq_mahalanobis_cdist(&zv, &cv, &sigma).unwrap();
        assert!(t.value(d).max_abs_diff(&expect) < 1e-8);
    }

    #[test]
    fn cosine_distance_range_and_identity() {
        let t = Tape::new();
        let z = t.leaf(Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 2.0]]));
        let d = Distance::Cosine.sq_cdist(&t, z, z).unwrap();
        let v = t.value(d);
        assert!(v[(0, 0)] < 1e-9); // self-distance ≈ 0
        assert!((v[(0, 1)] - 1.0).abs() < 1e-9); // orthogonal → (1−0)² = 1
    }

    #[test]
    fn gradients_flow_through_all_distances() {
        let zv = randn(4, 3, &mut rng(6));
        let cv = randn(2, 3, &mut rng(7));
        for dist in [
            Distance::Euclidean,
            Distance::Cosine,
            Distance::Mahalanobis(Covariance::ScaledIdentity(0.05)),
        ] {
            assert_grad_close(
                &zv,
                |t, z| {
                    let c = t.constant(cv.clone());
                    let d = dist.sq_cdist(t, z, c).unwrap();
                    t.mean(d)
                },
                1e-5,
                1e-4,
            );
        }
    }

    #[test]
    fn mahalanobis_grad_wrt_centers() {
        let zv = randn(6, 3, &mut rng(8));
        let cv = randn(2, 3, &mut rng(9));
        assert_grad_close(
            &cv,
            |t, c| {
                let z = t.constant(zv.clone());
                let d = Distance::PAPER.sq_cdist(t, z, c).unwrap();
                t.mean(d)
            },
            1e-5,
            1e-4,
        );
    }
}
