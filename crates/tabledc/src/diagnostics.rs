//! Cluster-structure diagnostics: per-epoch structural metrics computed
//! from the soft-assignment matrix `Q` (and optionally the cluster
//! centers), plus an end-of-run convergence verdict.
//!
//! Scalar losses miss the ways self-supervised clustering actually fails —
//! cluster collapse, label oscillation, one-cluster dominance (Rauf et
//! al.; Samad & Abrar). The [`DiagnosticsTracker`] observes the quantities
//! that surface those failures:
//!
//! * **cluster shares** of the hard labels (`argmax Q`): their normalized
//!   entropy, minimum, and maximum — a share of ~1 on one cluster is the
//!   collapse signature;
//! * **assignment churn** (`delta_label_frac`): fraction of rows whose
//!   hard label changed since the previous epoch — the δ-label quantity
//!   DEC-style stopping rules threshold (paper §4);
//! * **mean assignment margin**: mean over rows of `top1(Q) − top2(Q)` —
//!   how decided the soft assignments are;
//! * **centroid drift**: mean L2 step of each center since the previous
//!   epoch.
//!
//! Everything here is *pure observation*: nothing feeds back into
//! training, so diagnostics on/off cannot perturb labels or metrics.
//!
//! The same tracker serves TableDC's training loop and the deep baselines
//! (via `baselines::common`); both stamp their per-epoch trace events with
//! a process-wide **fit id** ([`next_fit_id`]) so `trace_check` can verify
//! per-fit epoch monotonicity even when one process runs many fits
//! (restarts, benchmark sweeps).

use std::sync::atomic::{AtomicU64, Ordering};

use tensor::Matrix;

/// Structural metrics for one training epoch.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochDiagnostics {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Normalized entropy of the hard-label cluster shares: 1 = perfectly
    /// balanced, 0 = everything in one cluster. Defined as 1 when `k == 1`.
    pub share_entropy: f64,
    /// Smallest cluster share (0 when a cluster is empty).
    pub min_share: f64,
    /// Largest cluster share (→ 1 under collapse).
    pub max_share: f64,
    /// Fraction of rows whose hard label changed vs the previous epoch
    /// (1 on the first observed epoch).
    pub delta_label_frac: f64,
    /// Mean over rows of `top1(Q) − top2(Q)` (top2 taken as 0 if `k == 1`).
    pub mean_margin: f64,
    /// Mean L2 step of the cluster centers vs the previous epoch (0 on the
    /// first observed epoch, or when centers are not supplied).
    pub centroid_drift: f64,
}

/// How a run ended, structurally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConvergenceStatus {
    /// Assignment churn stayed at or below the δ threshold for the whole
    /// trailing window.
    Converged,
    /// Churn stayed high to the end — labels kept flipping.
    Oscillating,
    /// Neither converged nor oscillating: movement died down without
    /// meeting the δ rule.
    Stalled,
    /// One cluster absorbed (nearly) everything.
    Collapsed,
    /// No epochs observed.
    Unknown,
}

impl ConvergenceStatus {
    /// Stable lowercase name (manifest / trace vocabulary).
    pub fn as_str(&self) -> &'static str {
        match self {
            ConvergenceStatus::Converged => "converged",
            ConvergenceStatus::Oscillating => "oscillating",
            ConvergenceStatus::Stalled => "stalled",
            ConvergenceStatus::Collapsed => "collapsed",
            ConvergenceStatus::Unknown => "unknown",
        }
    }

    /// Inverse of [`ConvergenceStatus::as_str`].
    pub fn from_str(s: &str) -> Option<Self> {
        Some(match s {
            "converged" => ConvergenceStatus::Converged,
            "oscillating" => ConvergenceStatus::Oscillating,
            "stalled" => ConvergenceStatus::Stalled,
            "collapsed" => ConvergenceStatus::Collapsed,
            "unknown" => ConvergenceStatus::Unknown,
            _ => return None,
        })
    }
}

/// The verdict plus the evidence: which epoch decided it and which rule
/// fired, human-readable.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceVerdict {
    /// The structural outcome.
    pub status: ConvergenceStatus,
    /// The deciding epoch (start of the terminal streak for
    /// converged/collapsed; the last epoch otherwise). `None` for
    /// [`ConvergenceStatus::Unknown`].
    pub epoch: Option<usize>,
    /// The rule that fired, e.g. `"delta_label_frac <= 0.010 for 10 epochs"`.
    pub rule: String,
}

impl Default for ConvergenceVerdict {
    fn default() -> Self {
        ConvergenceVerdict {
            status: ConvergenceStatus::Unknown,
            epoch: None,
            rule: "no epochs observed".to_string(),
        }
    }
}

/// Thresholds for the convergence verdict. Checked in severity order:
/// collapsed → converged → oscillating → stalled.
#[derive(Debug, Clone, Copy)]
pub struct VerdictRules {
    /// δ: churn at or below this counts as "settled" (DEC uses 0.001–0.01).
    pub delta: f64,
    /// Number of trailing epochs the δ rule must hold for.
    pub window: usize,
    /// A terminal `max_share` at or above this is a collapse (`k > 1` only).
    pub collapse_max_share: f64,
    /// A trailing mean churn at or above this is oscillation.
    pub osc_churn: f64,
}

impl Default for VerdictRules {
    fn default() -> Self {
        VerdictRules { delta: 0.01, window: 10, collapse_max_share: 0.9, osc_churn: 0.05 }
    }
}

/// Observes one fit epoch-by-epoch and renders the verdict at the end.
#[derive(Debug, Default)]
pub struct DiagnosticsTracker {
    prev_labels: Option<Vec<usize>>,
    prev_centers: Option<Matrix>,
    epochs: Vec<EpochDiagnostics>,
}

impl DiagnosticsTracker {
    /// A fresh tracker (one per fit).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one epoch from the normalized soft-assignment matrix `q`
    /// (`n × k`) and, when available, the current cluster centers
    /// (`k × d`). Returns the metrics for this epoch.
    pub fn observe(&mut self, q: &Matrix, centers: Option<&Matrix>) -> EpochDiagnostics {
        let epoch = self.epochs.len();
        let (n, k) = q.shape();
        let labels = q.argmax_rows();

        // Cluster shares over all k slots (empty clusters count as 0).
        let mut counts = vec![0usize; k];
        for &l in &labels {
            counts[l] += 1;
        }
        let denom = n.max(1) as f64;
        let mut min_share = f64::INFINITY;
        let mut max_share = 0.0f64;
        let mut entropy = 0.0;
        for &c in &counts {
            let share = c as f64 / denom;
            min_share = min_share.min(share);
            max_share = max_share.max(share);
            if share > 0.0 {
                entropy -= share * share.ln();
            }
        }
        let share_entropy = if k <= 1 { 1.0 } else { entropy / (k as f64).ln() };

        let delta_label_frac = match &self.prev_labels {
            Some(prev) => {
                let changed = prev.iter().zip(&labels).filter(|(a, b)| a != b).count();
                changed as f64 / labels.len().max(1) as f64
            }
            None => 1.0,
        };

        // Mean top1 − top2 margin of each Q row.
        let mut margin_sum = 0.0;
        for i in 0..n {
            let row = q.row(i);
            let mut top1 = f64::NEG_INFINITY;
            let mut top2 = f64::NEG_INFINITY;
            for &v in row {
                if v > top1 {
                    top2 = top1;
                    top1 = v;
                } else if v > top2 {
                    top2 = v;
                }
            }
            if k <= 1 {
                top2 = 0.0;
            }
            margin_sum += top1 - top2;
        }
        let mean_margin = margin_sum / denom;

        let centroid_drift = match (centers, &self.prev_centers) {
            (Some(now), Some(prev)) if now.shape() == prev.shape() => {
                let (kk, d) = now.shape();
                let mut total = 0.0;
                for j in 0..kk {
                    let mut sq = 0.0;
                    for t in 0..d {
                        let diff = now[(j, t)] - prev[(j, t)];
                        sq += diff * diff;
                    }
                    total += sq.sqrt();
                }
                total / kk.max(1) as f64
            }
            _ => 0.0,
        };

        self.prev_labels = Some(labels);
        if let Some(c) = centers {
            self.prev_centers = Some(c.clone());
        }

        let diag = EpochDiagnostics {
            epoch,
            share_entropy,
            min_share,
            max_share,
            delta_label_frac,
            mean_margin,
            centroid_drift,
        };
        self.epochs.push(diag);
        diag
    }

    /// Every epoch observed so far, in order.
    pub fn epochs(&self) -> &[EpochDiagnostics] {
        &self.epochs
    }

    /// Renders the convergence verdict for the epochs observed so far.
    /// `k` is the configured cluster count (collapse is meaningless for
    /// `k == 1`).
    pub fn verdict(&self, k: usize, rules: &VerdictRules) -> ConvergenceVerdict {
        let eps = &self.epochs;
        let Some(last) = eps.last() else {
            return ConvergenceVerdict::default();
        };

        // Collapsed: the run *ended* dominated by one cluster. Deciding
        // epoch = start of the terminal dominated streak.
        if k > 1 && last.max_share >= rules.collapse_max_share {
            let mut start = eps.len() - 1;
            while start > 0 && eps[start - 1].max_share >= rules.collapse_max_share {
                start -= 1;
            }
            return ConvergenceVerdict {
                status: ConvergenceStatus::Collapsed,
                epoch: Some(eps[start].epoch),
                rule: format!(
                    "max_share {:.3} >= {:.3} from epoch {}",
                    last.max_share, rules.collapse_max_share, eps[start].epoch
                ),
            };
        }

        // Converged: churn ≤ δ over the whole trailing window.
        let window = rules.window.max(1);
        if eps.len() >= window
            && eps[eps.len() - window..].iter().all(|e| e.delta_label_frac <= rules.delta)
        {
            let mut start = eps.len() - 1;
            while start > 0 && eps[start - 1].delta_label_frac <= rules.delta {
                start -= 1;
            }
            return ConvergenceVerdict {
                status: ConvergenceStatus::Converged,
                epoch: Some(eps[start].epoch),
                rule: format!(
                    "delta_label_frac <= {:.3} for {} epochs (settled at epoch {})",
                    rules.delta,
                    eps.len() - start,
                    eps[start].epoch
                ),
            };
        }

        // Oscillating: labels still churning hard at the end.
        let tail = &eps[eps.len().saturating_sub(window)..];
        let mean_tail_churn =
            tail.iter().map(|e| e.delta_label_frac).sum::<f64>() / tail.len() as f64;
        if mean_tail_churn >= rules.osc_churn {
            return ConvergenceVerdict {
                status: ConvergenceStatus::Oscillating,
                epoch: Some(last.epoch),
                rule: format!(
                    "mean trailing delta_label_frac {:.3} >= {:.3}",
                    mean_tail_churn, rules.osc_churn
                ),
            };
        }

        ConvergenceVerdict {
            status: ConvergenceStatus::Stalled,
            epoch: Some(last.epoch),
            rule: format!(
                "mean trailing delta_label_frac {:.3} in ({:.3}, {:.3}) without a {}-epoch settled window",
                mean_tail_churn, rules.delta, rules.osc_churn, window
            ),
        }
    }
}

/// Hands out process-unique fit ids. Stamped as `fit` on per-epoch trace
/// events (`tabledc.epoch`, `tabledc.diag`, `baseline.epoch`,
/// `baseline.diag`) so epochs are monotone *per fit* even when one process
/// runs many fits (restarts, sweeps).
pub fn next_fit_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// Emits one `tabledc.diag`-shaped trace event carrying the full metric
/// set. `method` is stamped for baseline fits so one trace can hold many
/// methods. No-op when tracing is disabled.
pub fn emit_diag_event(event_name: &str, method: Option<&str>, fit_id: u64, d: &EpochDiagnostics) {
    let mut ev = obs::event(event_name);
    if let Some(m) = method {
        ev = ev.str("method", m);
    }
    ev.u64("fit", fit_id)
        .u64("epoch", d.epoch as u64)
        .f64("share_entropy", d.share_entropy)
        .f64("min_share", d.min_share)
        .f64("max_share", d.max_share)
        .f64("delta_label_frac", d.delta_label_frac)
        .f64("mean_margin", d.mean_margin)
        .f64("centroid_drift", d.centroid_drift)
        .emit();
}

/// Records the epoch's diagnostics into the global `obs` series registry
/// under `<prefix>.<metric>` names, so they show up in `obs::summary()`
/// and `obs::series::emit_all()`.
pub fn record_series(prefix: &str, d: &EpochDiagnostics) {
    let reg = obs::registry();
    reg.series(&format!("{prefix}.share_entropy")).record(d.share_entropy);
    reg.series(&format!("{prefix}.max_share")).record(d.max_share);
    reg.series(&format!("{prefix}.churn")).record(d.delta_label_frac);
    reg.series(&format!("{prefix}.mean_margin")).record(d.mean_margin);
    reg.series(&format!("{prefix}.centroid_drift")).record(d.centroid_drift);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hard 2-cluster Q: rows 0–2 → cluster 0, row 3 → cluster 1.
    fn toy_q() -> Matrix {
        Matrix::from_rows(&[&[0.9, 0.1], &[0.8, 0.2], &[0.7, 0.3], &[0.2, 0.8]])
    }

    #[test]
    fn toy_q_diagnostics_match_hand_computation() {
        let mut t = DiagnosticsTracker::new();
        let d = t.observe(&toy_q(), None);
        // Shares: 3/4 and 1/4.
        assert_eq!(d.min_share, 0.25);
        assert_eq!(d.max_share, 0.75);
        // Entropy: -(0.75 ln 0.75 + 0.25 ln 0.25) / ln 2.
        let expected_entropy = -(0.75f64 * 0.75f64.ln() + 0.25 * 0.25f64.ln()) / 2f64.ln();
        assert!((d.share_entropy - expected_entropy).abs() < 1e-12);
        // First epoch: full churn, zero drift.
        assert_eq!(d.delta_label_frac, 1.0);
        assert_eq!(d.centroid_drift, 0.0);
        // Margins: 0.8, 0.6, 0.4, 0.6 → mean 0.6.
        assert!((d.mean_margin - 0.6).abs() < 1e-12);
        assert_eq!(d.epoch, 0);
    }

    #[test]
    fn churn_counts_changed_labels_against_previous_epoch() {
        let mut t = DiagnosticsTracker::new();
        t.observe(&toy_q(), None);
        // Flip row 3 to cluster 0: one of four rows changed.
        let q2 = Matrix::from_rows(&[&[0.9, 0.1], &[0.8, 0.2], &[0.7, 0.3], &[0.6, 0.4]]);
        let d2 = t.observe(&q2, None);
        assert_eq!(d2.delta_label_frac, 0.25);
        assert_eq!(d2.max_share, 1.0);
        assert_eq!(d2.min_share, 0.0);
        assert_eq!(d2.share_entropy, 0.0);
        assert_eq!(d2.epoch, 1);
    }

    #[test]
    fn centroid_drift_is_mean_l2_step() {
        let mut t = DiagnosticsTracker::new();
        let c1 = Matrix::from_rows(&[&[0.0, 0.0], &[1.0, 1.0]]);
        t.observe(&toy_q(), Some(&c1));
        // Center 0 moves by (3, 4) → 5; center 1 stays → mean 2.5.
        let c2 = Matrix::from_rows(&[&[3.0, 4.0], &[1.0, 1.0]]);
        let d2 = t.observe(&toy_q(), Some(&c2));
        assert!((d2.centroid_drift - 2.5).abs() < 1e-12);
        // And the repeated Q has zero churn.
        assert_eq!(d2.delta_label_frac, 0.0);
    }

    #[test]
    fn single_cluster_edge_cases_are_defined() {
        let mut t = DiagnosticsTracker::new();
        let q = Matrix::from_rows(&[&[1.0], &[1.0]]);
        let d = t.observe(&q, None);
        assert_eq!(d.share_entropy, 1.0, "k = 1 counts as balanced");
        assert_eq!(d.min_share, 1.0);
        assert_eq!(d.max_share, 1.0);
        assert_eq!(d.mean_margin, 1.0, "top2 is 0 when k = 1");
        // k = 1 can never collapse.
        let v = t.verdict(1, &VerdictRules::default());
        assert_ne!(v.status, ConvergenceStatus::Collapsed);
    }

    fn settled(epochs: usize, churn: f64) -> DiagnosticsTracker {
        // Build a tracker whose churn series is 1.0 then `churn` forever,
        // by flipping labels only on the first observation.
        let mut t = DiagnosticsTracker::new();
        let balanced = Matrix::from_rows(&[&[0.9, 0.1], &[0.8, 0.2], &[0.3, 0.7], &[0.2, 0.8]]);
        for _ in 0..epochs {
            t.observe(&balanced, None);
        }
        // Overwrite the synthetic churn directly: verdict() only reads the
        // recorded series, so tests can shape it precisely.
        for (i, e) in t.epochs.iter_mut().enumerate() {
            e.delta_label_frac = if i == 0 { 1.0 } else { churn };
        }
        t
    }

    #[test]
    fn verdict_converged_with_deciding_epoch() {
        let t = settled(15, 0.0);
        let v = t.verdict(2, &VerdictRules::default());
        assert_eq!(v.status, ConvergenceStatus::Converged);
        assert_eq!(v.epoch, Some(1), "settled right after the first epoch");
        assert!(v.rule.contains("delta_label_frac"));
    }

    #[test]
    fn verdict_oscillating_when_churn_stays_high() {
        let t = settled(15, 0.3);
        let v = t.verdict(2, &VerdictRules::default());
        assert_eq!(v.status, ConvergenceStatus::Oscillating);
        assert_eq!(v.epoch, Some(14));
    }

    #[test]
    fn verdict_stalled_between_delta_and_oscillation() {
        let t = settled(15, 0.03);
        let v = t.verdict(2, &VerdictRules::default());
        assert_eq!(v.status, ConvergenceStatus::Stalled);
    }

    #[test]
    fn verdict_short_run_is_not_converged() {
        // Fewer epochs than the window: zero churn is not enough evidence.
        let t = settled(5, 0.0);
        let v = t.verdict(2, &VerdictRules::default());
        assert_ne!(v.status, ConvergenceStatus::Converged);
    }

    #[test]
    fn verdict_collapsed_on_terminal_dominance() {
        let mut t = DiagnosticsTracker::new();
        let balanced = Matrix::from_rows(&[&[0.9, 0.1], &[0.2, 0.8]]);
        let collapsed = Matrix::from_rows(&[&[0.9, 0.1], &[0.7, 0.3]]);
        for _ in 0..3 {
            t.observe(&balanced, None);
        }
        for _ in 0..4 {
            t.observe(&collapsed, None);
        }
        let v = t.verdict(2, &VerdictRules::default());
        assert_eq!(v.status, ConvergenceStatus::Collapsed);
        assert_eq!(v.epoch, Some(3), "collapse streak starts at epoch 3");
        assert!(v.rule.contains("max_share"));
        // Collapse outranks a converged tail (the labels stopped moving
        // *because* everything landed in one cluster).
        assert!(t.epochs()[6].delta_label_frac == 0.0);
    }

    #[test]
    fn verdict_unknown_without_epochs() {
        let t = DiagnosticsTracker::new();
        let v = t.verdict(4, &VerdictRules::default());
        assert_eq!(v.status, ConvergenceStatus::Unknown);
        assert_eq!(v.epoch, None);
    }

    #[test]
    fn status_round_trips_through_names() {
        for s in [
            ConvergenceStatus::Converged,
            ConvergenceStatus::Oscillating,
            ConvergenceStatus::Stalled,
            ConvergenceStatus::Collapsed,
            ConvergenceStatus::Unknown,
        ] {
            assert_eq!(ConvergenceStatus::from_str(s.as_str()), Some(s));
        }
        assert_eq!(ConvergenceStatus::from_str("nope"), None);
    }

    #[test]
    fn fit_ids_are_unique() {
        let a = next_fit_id();
        let b = next_fit_id();
        assert_ne!(a, b);
    }

    #[test]
    fn diag_event_carries_the_full_metric_set() {
        let mut t = DiagnosticsTracker::new();
        let d = t.observe(&toy_q(), None);
        let ((), lines) = obs::test_support::with_memory_sink(|| {
            emit_diag_event("tabledc.diag", None, 7, &d);
            emit_diag_event("baseline.diag", Some("sdcn"), 8, &d);
        });
        assert_eq!(lines.len(), 2);
        let v = obs::json::parse(&lines[0]).expect("valid JSON");
        for key in [
            "fit",
            "epoch",
            "share_entropy",
            "min_share",
            "max_share",
            "delta_label_frac",
            "mean_margin",
            "centroid_drift",
        ] {
            assert!(v.get(key).is_some(), "missing {key}");
        }
        assert_eq!(v.get("fit").unwrap().as_f64(), Some(7.0));
        let b = obs::json::parse(&lines[1]).expect("valid JSON");
        assert_eq!(b.get("method").unwrap().as_str(), Some("sdcn"));
    }
}
