//! # tabledc — Deep Clustering for Tabular Data
//!
//! A from-scratch Rust implementation of **TableDC** (Rauf, Freitas, Paton;
//! SIGMOD/PVLDB 2025): a deep clustering algorithm for data-management
//! workloads (schema inference, entity resolution, domain discovery) whose
//! embeddings are dense, feature-correlated, and cluster-overlapping.
//!
//! The model (paper §3, Algorithm 1):
//!
//! 1. an **autoencoder** learns latent representations `z` (Eq. 1–2),
//!    pretrained on reconstruction;
//! 2. cluster centers `c` are initialized with **Birch** (Algorithm 2) —
//!    not K-means — because CF-trees summarize dense, overlapping regions
//!    hierarchically (§3.2);
//! 3. soft assignments use the **Mahalanobis distance** with a scaled
//!    identity covariance `Σ = δ·I`, inverted via Cholesky (Eq. 3–6), under
//!    a heavy-tailed **Cauchy kernel** (Eq. 7), normalized and softmaxed
//!    into clustering probabilities `m` (Eq. 8–9);
//! 4. training minimizes `α·KL(p‖m) + re_loss` (Eq. 10–13) with Adam,
//!    where `p` is the self-sharpening target distribution (Eq. 11).
//!
//! ## Quick start
//!
//! ```
//! use tabledc::{TableDc, TableDcConfig};
//! use tensor::random::rng;
//!
//! // 60 points in 8-D around 3 latent concepts (toy data).
//! let data = datagen::generate_mixture(
//!     &datagen::MixtureConfig { n: 60, k: 3, dim: 8, ..Default::default() },
//!     &mut rng(0),
//! );
//! let config = TableDcConfig {
//!     latent_dim: 4,
//!     encoder_dims: Some(vec![8, 16, 4]),
//!     pretrain_epochs: 5,
//!     epochs: 10,
//!     ..TableDcConfig::new(3)
//! };
//! let (model, fit) = TableDc::fit(config, &data.x, &mut rng(1));
//! assert_eq!(fit.labels.len(), 60);
//! assert_eq!(model.centers().shape(), (3, 4));
//! ```
//!
//! The [`distance`], [`kernel`], and [`init`] modules expose the Table 5
//! and Figure 4 ablation axes; `crates/baselines` holds the methods TableDC
//! is compared against; `crates/bench` regenerates every table and figure.

pub mod diagnostics;
pub mod distance;
pub mod init;
pub mod kernel;
pub mod model;

pub use diagnostics::{
    ConvergenceStatus, ConvergenceVerdict, DiagnosticsTracker, EpochDiagnostics, VerdictRules,
};
pub use distance::{Covariance, Distance};
pub use init::Init;
pub use kernel::Kernel;
pub use model::{target_distribution, HealthConfig, History, TableDc, TableDcConfig, TableDcFit};

#[cfg(test)]
mod proptests {
    use proptest::prelude::*;
    use tensor::Matrix;

    use crate::model::target_distribution;

    proptest! {
        /// p is a valid, sharper-than-q distribution for any positive q.
        #[test]
        fn target_distribution_is_valid_simplex(
            raw in proptest::collection::vec(0.01..1.0f64, 4 * 3)
        ) {
            let mut q = Matrix::from_vec(4, 3, raw);
            // Row-normalize q first.
            for i in 0..4 {
                let s: f64 = q.row(i).iter().sum();
                for v in q.row_mut(i) { *v /= s; }
            }
            let p = target_distribution(&q);
            for i in 0..4 {
                let s: f64 = p.row(i).iter().sum();
                prop_assert!((s - 1.0).abs() < 1e-9);
                prop_assert!(p.row(i).iter().all(|&v| (0.0..=1.0).contains(&v)));
            }
        }
    }
}
