//! Cluster-center initialization strategies (paper §3.2, Algorithm 2, and
//! the Figure 4 ablation).

use clustering::agglomerative::{Agglomerative, Linkage};
use clustering::birch::Birch;
use clustering::kmeans::{centroids_from_labels, kmeans_pp_seeds, KMeans, KMeansInit};
use rand::rngs::StdRng;
use tensor::random::sample_without_replacement;
use tensor::Matrix;

/// Initializer for the cluster centers `c` in the latent space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Init {
    /// Birch CF-tree initialization — TableDC's choice (Algorithm 2):
    /// the CF-tree "avoids close proximity and high overlaps" in dense
    /// spaces and captures cluster granularities hierarchically.
    Birch,
    /// K-means (the choice of SDCN/DFCN/DCRN/EDESC).
    KMeans,
    /// K-means++ seeding followed by Lloyd refinement.
    KMeansPlusPlus,
    /// Random data points as centers.
    Random,
    /// Agglomerative (average-linkage) clustering.
    Agglomerative,
}

impl Init {
    /// All strategies, in the order plotted in Figure 4.
    pub const ALL: [Init; 5] =
        [Init::Birch, Init::KMeans, Init::KMeansPlusPlus, Init::Random, Init::Agglomerative];

    /// Computes `k` initial centers from the latent matrix `z`.
    pub fn centers(self, z: &Matrix, k: usize, rng: &mut StdRng) -> Matrix {
        assert!(k >= 1 && k <= z.rows(), "Init: bad k = {k} for n = {}", z.rows());
        match self {
            Init::Birch => Birch::new(k).fit(z, rng).centers,
            Init::KMeans => {
                KMeans { init: KMeansInit::Random, n_init: 1, ..KMeans::new(k) }.fit(z, rng).centroids
            }
            Init::KMeansPlusPlus => KMeans::new(k).fit(z, rng).centroids,
            Init::Random => {
                let idx = sample_without_replacement(z.rows(), k, rng);
                z.select_rows(&idx)
            }
            Init::Agglomerative => {
                let labels = Agglomerative::new(k, Linkage::Average).fit(z);
                let seeds = kmeans_pp_seeds(z, k, rng);
                centroids_from_labels(z, &labels, k, &seeds)
            }
        }
    }

    /// Display name for the Figure 4 ablation.
    pub fn name(self) -> &'static str {
        match self {
            Init::Birch => "Birch",
            Init::KMeans => "K-means",
            Init::KMeansPlusPlus => "K-means++",
            Init::Random => "Random",
            Init::Agglomerative => "Agglomerative",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::random::{randn, rng};

    fn blobs(seed: u64) -> Matrix {
        let mut r = rng(seed);
        let centers = [[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]];
        let mut rows = Vec::new();
        for c in &centers {
            for _ in 0..20 {
                let e = randn(1, 2, &mut r);
                rows.push(vec![c[0] + 0.5 * e[(0, 0)], c[1] + 0.5 * e[(0, 1)]]);
            }
        }
        Matrix::from_row_vecs(&rows)
    }

    #[test]
    fn all_initializers_produce_k_centers() {
        let z = blobs(1);
        for init in Init::ALL {
            let c = init.centers(&z, 3, &mut rng(2));
            assert_eq!(c.shape(), (3, 2), "{}", init.name());
            assert!(c.all_finite());
        }
    }

    #[test]
    fn structured_initializers_find_the_blobs() {
        let z = blobs(3);
        // Every non-random initializer should place one center near each
        // blob center.
        for init in [Init::Birch, Init::KMeansPlusPlus, Init::Agglomerative] {
            let c = init.centers(&z, 3, &mut rng(4));
            for blob in [[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]] {
                let closest = (0..3)
                    .map(|i| tensor::distance::sq_euclidean(c.row(i), &blob))
                    .fold(f64::INFINITY, f64::min);
                assert!(closest < 2.0, "{}: no center near {blob:?}", init.name());
            }
        }
    }

    #[test]
    fn random_init_picks_data_points() {
        let z = blobs(5);
        let c = Init::Random.centers(&z, 3, &mut rng(6));
        for i in 0..3 {
            let is_data_point = z
                .row_iter()
                .any(|row| row.iter().zip(c.row(i)).all(|(a, b)| (a - b).abs() < 1e-12));
            assert!(is_data_point);
        }
    }

    #[test]
    #[should_panic(expected = "bad k")]
    fn rejects_oversized_k() {
        let z = Matrix::zeros(2, 2);
        let _ = Init::Birch.centers(&z, 5, &mut rng(0));
    }
}
