//! KNN graph construction and GCN-style adjacency normalization.
//!
//! For non-graph data, SDCN and its relatives build a K-nearest-neighbour
//! graph over the input embeddings and feed the symmetrically normalized
//! adjacency `Â = D̃^{-1/2} (A + I) D̃^{-1/2}` into their GCN modules; this
//! module reproduces that preprocessing.

use tensor::distance::sq_euclidean_cdist;
use tensor::Matrix;

use crate::csr::Csr;

/// Builds a directed KNN adjacency over the rows of `x`: `A[i,j] = 1` when
/// `j` is one of the `k` nearest neighbours of `i` (excluding `i` itself).
///
/// Distances are Euclidean. Complexity is `O(n² d)` time and `O(n·k)`
/// memory; the n² distance pass is chunked so it never materializes more
/// than one row block, and the chunks run in parallel on the
/// [`runtime::global`] pool. Each chunk reuses one candidate-index scratch
/// buffer across its rows instead of allocating per row, and selection uses
/// [`f64::total_cmp`] so a NaN distance degrades deterministically (NaN
/// sorts above every real distance and is simply never picked as a
/// neighbour while real candidates remain) instead of panicking.
///
/// The neighbour set per row is independent of the thread count, so the
/// resulting graph is identical under `TABLEDC_THREADS=1` and parallel
/// execution.
///
/// # Panics
/// Panics if `k >= n` or `k == 0`.
pub fn knn_adjacency(x: &Matrix, k: usize) -> Csr {
    let n = x.rows();
    assert!(k > 0, "knn_adjacency: k must be positive");
    assert!(k < n, "knn_adjacency: k = {k} must be < n = {n}");
    let _build_timer = obs::span!("knn.build");
    let registry = obs::registry();
    registry.counter("knn.rows").add(n as u64);
    let block_hist = registry.histogram("knn.block_ms");
    const CHUNK: usize = 256;
    // One slot of k neighbour ids per row, filled by disjoint row chunks.
    let mut neighbors = vec![0usize; n * k];
    runtime::par_for_rows(runtime::global(), &mut neighbors, k, CHUNK, |start, slots| {
        // The block timer only observes wall time; the slot writes are
        // disjoint per chunk, so recording here cannot perturb the graph.
        let block_start = std::time::Instant::now();
        let rows = slots.len() / k;
        let end = start + rows;
        let block = x.select_rows(&(start..end).collect::<Vec<_>>());
        let d = sq_euclidean_cdist(&block, x);
        // Candidate list hoisted out of the row loop and reused.
        let mut idx: Vec<usize> = Vec::with_capacity(n - 1);
        for (bi, i) in (start..end).enumerate() {
            // Partial selection of the k smallest distances, skipping self.
            let row = d.row(bi);
            idx.clear();
            idx.extend((0..n).filter(|&j| j != i));
            idx.select_nth_unstable_by(k - 1, |&a, &b| row[a].total_cmp(&row[b]));
            slots[bi * k..(bi + 1) * k].copy_from_slice(&idx[..k]);
        }
        block_hist.record(block_start.elapsed().as_secs_f64() * 1e3);
    });
    let triplets: Vec<(usize, usize, f64)> =
        neighbors.iter().enumerate().map(|(s, &j)| (s / k, j, 1.0)).collect();
    Csr::from_triplets(n, n, &triplets)
}

/// Symmetrically normalized adjacency with self-loops:
/// `Â = D̃^{-1/2} (A + I) D̃^{-1/2}` where `D̃` is the degree matrix of
/// `A + I` (Kipf & Welling normalization, as used by SDCN/DFCN/DCRN).
pub fn normalize_adjacency(a: &Csr) -> Csr {
    assert_eq!(a.rows(), a.cols(), "normalize_adjacency: adjacency must be square");
    let n = a.rows();
    // A + I as triplets.
    let mut triplets: Vec<(usize, usize, f64)> = Vec::with_capacity(a.nnz() + n);
    for i in 0..n {
        for (j, v) in a.row_entries(i) {
            if i != j {
                triplets.push((i, j, v));
            }
        }
        triplets.push((i, i, 1.0));
    }
    let with_loops = Csr::from_triplets(n, n, &triplets);
    let deg = with_loops.row_sums();
    let inv_sqrt: Vec<f64> =
        deg.iter().map(|&d| if d > 0.0 { 1.0 / d.sqrt() } else { 0.0 }).collect();
    let normalized: Vec<(usize, usize, f64)> = (0..n)
        .flat_map(|i| {
            let inv = &inv_sqrt;
            with_loops.row_entries(i).map(move |(j, v)| (i, j, v * inv[i] * inv[j])).collect::<Vec<_>>()
        })
        .collect();
    Csr::from_triplets(n, n, &normalized)
}

/// Convenience: symmetrized, normalized KNN graph ready for a GCN.
pub fn gcn_adjacency(x: &Matrix, k: usize) -> Csr {
    normalize_adjacency(&knn_adjacency(x, k).symmetrize_max())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor::random::{randn, rng};

    #[test]
    fn knn_finds_true_neighbours() {
        // Three tight pairs far apart: each point's 1-NN is its partner.
        let x = Matrix::from_rows(&[
            &[0.0, 0.0],
            &[0.1, 0.0],
            &[10.0, 0.0],
            &[10.1, 0.0],
            &[0.0, 10.0],
            &[0.1, 10.0],
        ]);
        let a = knn_adjacency(&x, 1);
        for (i, j) in [(0, 1), (1, 0), (2, 3), (3, 2), (4, 5), (5, 4)] {
            assert_eq!(a.get(i, j), 1.0, "expected edge {i}→{j}");
        }
        assert_eq!(a.nnz(), 6);
    }

    #[test]
    fn knn_has_k_out_edges_and_no_self_loops() {
        let x = randn(40, 5, &mut rng(1));
        let k = 4;
        let a = knn_adjacency(&x, k);
        assert_eq!(a.nnz(), 40 * k);
        for i in 0..40 {
            assert_eq!(a.row_entries(i).count(), k);
            assert_eq!(a.get(i, i), 0.0);
        }
    }

    #[test]
    fn normalized_adjacency_rows_of_regular_graph_sum_to_one() {
        // A cycle: every node has degree 2 (+1 self-loop = 3). For a regular
        // graph the symmetric normalization makes all entries 1/deg, so row
        // sums are exactly 1.
        let n = 6;
        let mut trip = Vec::new();
        for i in 0..n {
            trip.push((i, (i + 1) % n, 1.0));
            trip.push(((i + 1) % n, i, 1.0));
        }
        let a = Csr::from_triplets(n, n, &trip);
        let norm = normalize_adjacency(&a);
        for s in norm.row_sums() {
            assert!((s - 1.0).abs() < 1e-12, "row sum {s}");
        }
    }

    #[test]
    fn normalized_adjacency_is_symmetric() {
        let x = randn(30, 4, &mut rng(2));
        let a = gcn_adjacency(&x, 3);
        let d = a.to_dense();
        assert!(d.max_abs_diff(&d.transpose()) < 1e-12);
    }

    #[test]
    fn normalization_preserves_constant_vector_on_regular_graphs() {
        // Â·1 = 1 for regular graphs; GCN smoothing leaves constants alone.
        let n = 8;
        let mut trip = Vec::new();
        for i in 0..n {
            trip.push((i, (i + 1) % n, 1.0));
            trip.push(((i + 1) % n, i, 1.0));
        }
        let norm = normalize_adjacency(&Csr::from_triplets(n, n, &trip));
        let ones = Matrix::ones(n, 1);
        assert!(norm.matmul_dense(&ones).max_abs_diff(&ones) < 1e-12);
    }

    #[test]
    #[should_panic(expected = "must be <")]
    fn knn_rejects_k_too_large() {
        let x = randn(3, 2, &mut rng(3));
        let _ = knn_adjacency(&x, 3);
    }
}
