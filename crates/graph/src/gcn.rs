//! A graph convolution layer on the autograd tape.

use std::rc::Rc;

use autograd::Var;
use nn::{Activation, BoundParams, ParamId, Params};
use rand::rngs::StdRng;
use tensor::random::xavier_uniform;
use tensor::Matrix;

use crate::csr::Csr;

/// One GCN layer: `H' = act(Â · H · W)` with the (constant, sparse)
/// normalized adjacency `Â` entering the tape as a linear operator.
#[derive(Clone)]
pub struct GcnLayer {
    w: ParamId,
    activation: Activation,
    fan_in: usize,
    fan_out: usize,
}

impl GcnLayer {
    /// Creates a layer with Xavier-initialized weights.
    pub fn new(
        params: &mut Params,
        fan_in: usize,
        fan_out: usize,
        activation: Activation,
        rng: &mut StdRng,
    ) -> Self {
        let w = params.register(xavier_uniform(fan_in, fan_out, rng));
        Self { w, activation, fan_in, fan_out }
    }

    /// Forward pass: `act(Â·(H·W))`.
    pub fn forward(&self, bound: &BoundParams<'_>, adj: &Rc<Csr>, h: Var) -> Var {
        let t = bound.tape();
        let hw = t.matmul(h, bound.var(self.w));
        let agg = t.apply_left(adj.clone() as Rc<dyn autograd::LinearOperator>, hw);
        self.activation.apply(t, agg)
    }

    /// Input dimension.
    pub fn fan_in(&self) -> usize {
        self.fan_in
    }

    /// Output dimension.
    pub fn fan_out(&self) -> usize {
        self.fan_out
    }
}

/// A stack of GCN layers sharing one adjacency.
#[derive(Clone, Default)]
pub struct Gcn {
    layers: Vec<GcnLayer>,
}

impl Gcn {
    /// Builds a GCN through `dims`, ReLU on hidden layers and `last` on the
    /// final layer.
    pub fn new(
        params: &mut Params,
        dims: &[usize],
        last: Activation,
        rng: &mut StdRng,
    ) -> Self {
        assert!(dims.len() >= 2, "Gcn::new: need at least input and output dims");
        let layers = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                let act = if i + 2 == dims.len() { last } else { Activation::Relu };
                GcnLayer::new(params, w[0], w[1], act, rng)
            })
            .collect();
        Self { layers }
    }

    /// Forward pass through all layers.
    pub fn forward(&self, bound: &BoundParams<'_>, adj: &Rc<Csr>, x: Var) -> Var {
        self.layers.iter().fold(x, |h, l| l.forward(bound, adj, h))
    }

    /// The layers.
    pub fn layers(&self) -> &[GcnLayer] {
        &self.layers
    }
}

/// Iterative label propagation on a (normalized) adjacency: starting from
/// one-hot `labels` rows (zero rows = unlabelled), repeatedly averages
/// neighbour label distributions. Used by the SHGP-style baseline to build
/// pseudo-labels (Att-LPA substitute).
///
/// Returns an `n×k` row-stochastic matrix after `iters` rounds.
pub fn label_propagation(adj: &Csr, labels: &Matrix, iters: usize) -> Matrix {
    assert_eq!(adj.rows(), labels.rows(), "label_propagation: size mismatch");
    let mut y = labels.clone();
    for _ in 0..iters {
        let mut next = adj.matmul_dense(&y);
        // Re-clamp known labels and renormalize rows.
        for i in 0..labels.rows() {
            let seed: f64 = labels.row(i).iter().sum();
            if seed > 0.0 {
                next.row_mut(i).copy_from_slice(labels.row(i));
            } else {
                let s: f64 = next.row(i).iter().sum();
                if s > 0.0 {
                    for v in next.row_mut(i) {
                        *v /= s;
                    }
                }
            }
        }
        y = next;
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use autograd::Tape;
    use tensor::random::rng;

    use crate::knn::gcn_adjacency;
    use tensor::random::randn;

    #[test]
    fn gcn_layer_shapes_and_finiteness() {
        let mut r = rng(1);
        let x = randn(20, 6, &mut r);
        let adj = Rc::new(gcn_adjacency(&x, 3));
        let mut params = Params::new();
        let gcn = Gcn::new(&mut params, &[6, 8, 4], Activation::Linear, &mut r);
        let tape = Tape::new();
        let bound = params.bind(&tape);
        let xv = tape.constant(x);
        let out = gcn.forward(&bound, &adj, xv);
        assert_eq!(tape.shape(out), (20, 4));
        assert!(tape.value(out).all_finite());
    }

    #[test]
    fn gcn_gradients_flow_to_weights() {
        let mut r = rng(2);
        let x = randn(15, 4, &mut r);
        let adj = Rc::new(gcn_adjacency(&x, 2));
        let mut params = Params::new();
        let gcn = Gcn::new(&mut params, &[4, 3], Activation::Linear, &mut r);
        let tape = Tape::new();
        let bound = params.bind(&tape);
        let out = gcn.forward(&bound, &adj, tape.constant(x));
        let loss = tape.mean(tape.square(out));
        let grads = tape.backward(loss);
        let (w, _) = (gcn.layers()[0].w, ());
        let g = grads.grad(bound.var(w));
        assert!(g.frobenius() > 0.0, "GCN weight gradient should be non-zero");
    }

    #[test]
    fn label_propagation_spreads_to_neighbours() {
        // Two clear blobs; seed one label in each; propagation labels all.
        let x = Matrix::from_rows(&[
            &[0.0, 0.0],
            &[0.2, 0.0],
            &[0.0, 0.2],
            &[10.0, 10.0],
            &[10.2, 10.0],
            &[10.0, 10.2],
        ]);
        let adj = gcn_adjacency(&x, 2);
        let mut seeds = Matrix::zeros(6, 2);
        seeds[(0, 0)] = 1.0;
        seeds[(3, 1)] = 1.0;
        let y = label_propagation(&adj, &seeds, 20);
        let labels = y.argmax_rows();
        assert_eq!(&labels[0..3], &[0, 0, 0]);
        assert_eq!(&labels[3..6], &[1, 1, 1]);
    }
}
