//! Compressed sparse row matrices.
//!
//! The GCN-based baselines (SDCN, DFCN, DCRN — §2.1/§4.8 of the paper)
//! multiply a normalized adjacency matrix into dense feature matrices every
//! layer. Those adjacencies come from KNN graphs and are extremely sparse
//! (k·n non-zeros), so a CSR representation keeps the per-layer cost at
//! `O(nnz · d)` instead of `O(n² · d)` — which is exactly the quadratic
//! scaling in the number of data points that Figure 3 measures against.

use std::rc::Rc;

use autograd::LinearOperator;
use tensor::Matrix;

/// A sparse matrix in compressed sparse row format.
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    rows: usize,
    cols: usize,
    /// Row pointer: `indptr[i]..indptr[i+1]` indexes row i's entries.
    indptr: Vec<usize>,
    /// Column index per stored entry.
    indices: Vec<usize>,
    /// Value per stored entry.
    values: Vec<f64>,
}

impl Csr {
    /// Builds a CSR matrix from (row, col, value) triplets. Duplicate
    /// coordinates are summed; zero values are kept (callers may prune).
    ///
    /// # Panics
    /// Panics if any coordinate is out of bounds.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        for &(r, c, _) in triplets {
            assert!(r < rows && c < cols, "triplet ({r},{c}) out of bounds for {rows}x{cols}");
        }
        let mut sorted: Vec<(usize, usize, f64)> = triplets.to_vec();
        sorted.sort_unstable_by_key(|&(r, c, _)| (r, c));
        // Merge duplicates.
        let mut merged: Vec<(usize, usize, f64)> = Vec::with_capacity(sorted.len());
        for (r, c, v) in sorted {
            match merged.last_mut() {
                Some(last) if last.0 == r && last.1 == c => last.2 += v,
                _ => merged.push((r, c, v)),
            }
        }
        let mut indptr = vec![0usize; rows + 1];
        for &(r, _, _) in &merged {
            indptr[r + 1] += 1;
        }
        for i in 0..rows {
            indptr[i + 1] += indptr[i];
        }
        let indices = merged.iter().map(|&(_, c, _)| c).collect();
        let values = merged.iter().map(|&(_, _, v)| v).collect();
        Self { rows, cols, indptr, indices, values }
    }

    /// The `n × n` identity as CSR.
    pub fn identity(n: usize) -> Self {
        Self {
            rows: n,
            cols: n,
            indptr: (0..=n).collect(),
            indices: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Iterates over the `(col, value)` entries of row `i`.
    pub fn row_entries(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let range = self.indptr[i]..self.indptr[i + 1];
        self.indices[range.clone()].iter().copied().zip(self.values[range].iter().copied())
    }

    /// Reads a single element (O(log nnz_row)).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        let range = self.indptr[i]..self.indptr[i + 1];
        match self.indices[range.clone()].binary_search(&j) {
            Ok(pos) => self.values[range.start + pos],
            Err(_) => 0.0,
        }
    }

    /// Dense `self · rhs` product: `O(nnz · rhs.cols())`.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn matmul_dense(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.cols, rhs.rows(), "csr matmul: {}x{} · {}x{}", self.rows, self.cols, rhs.rows(), rhs.cols());
        let m = rhs.cols();
        let mut out = Matrix::zeros(self.rows, m);
        for i in 0..self.rows {
            let out_row = out.row_mut(i);
            for (j, v) in self.row_entries(i) {
                let rhs_row = rhs.row(j);
                for (o, &r) in out_row.iter_mut().zip(rhs_row) {
                    *o += v * r;
                }
            }
        }
        out
    }

    /// Dense `selfᵀ · rhs` product without materializing the transpose.
    pub fn matmul_transpose_dense(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.rows, rhs.rows(), "csr matmul_t: dimension mismatch");
        let m = rhs.cols();
        let mut out = Matrix::zeros(self.cols, m);
        for i in 0..self.rows {
            let rhs_row = rhs.row(i);
            for (j, v) in self.row_entries(i) {
                let out_row = out.row_mut(j);
                for (o, &r) in out_row.iter_mut().zip(rhs_row) {
                    *o += v * r;
                }
            }
        }
        out
    }

    /// Materializes as a dense matrix (tests / tiny graphs only).
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for (j, v) in self.row_entries(i) {
                out[(i, j)] += v;
            }
        }
        out
    }

    /// Per-row sum of values (the degree vector for an adjacency matrix).
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows).map(|i| self.row_entries(i).map(|(_, v)| v).sum()).collect()
    }

    /// Returns a symmetrized copy `max(A, Aᵀ)` pattern-wise using value
    /// maximum — the usual way to make a KNN graph undirected.
    pub fn symmetrize_max(&self) -> Csr {
        assert_eq!(self.rows, self.cols, "symmetrize: matrix must be square");
        let mut trip: Vec<(usize, usize, f64)> = Vec::with_capacity(self.nnz() * 2);
        for i in 0..self.rows {
            for (j, v) in self.row_entries(i) {
                let vt = self.get(j, i);
                let m = v.max(vt);
                trip.push((i, j, m));
                trip.push((j, i, m));
            }
        }
        // from_triplets sums duplicates, so divide doubled entries by the
        // number of times they were pushed. Simpler: dedup first.
        trip.sort_unstable_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
        trip.dedup_by(|a, b| a.0 == b.0 && a.1 == b.1);
        Csr::from_triplets(self.rows, self.cols, &trip)
    }

    /// Wraps this matrix in an [`Rc`] for use as a constant operator inside
    /// the autograd graph.
    pub fn into_operator(self) -> Rc<Csr> {
        Rc::new(self)
    }
}

impl LinearOperator for Csr {
    fn out_rows(&self) -> usize {
        self.rows
    }

    fn apply(&self, rhs: &Matrix) -> Matrix {
        self.matmul_dense(rhs)
    }

    fn apply_transpose(&self, rhs: &Matrix) -> Matrix {
        self.matmul_transpose_dense(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triplets_round_trip_and_merge_duplicates() {
        let c = Csr::from_triplets(2, 3, &[(0, 1, 2.0), (1, 2, 3.0), (0, 1, 0.5)]);
        assert_eq!(c.nnz(), 2);
        assert_eq!(c.get(0, 1), 2.5);
        assert_eq!(c.get(1, 2), 3.0);
        assert_eq!(c.get(0, 0), 0.0);
    }

    #[test]
    fn matmul_matches_dense() {
        let c = Csr::from_triplets(3, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, -1.0), (2, 0, 0.5)]);
        let x = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let sparse = c.matmul_dense(&x);
        let dense = c.to_dense().matmul(&x);
        assert!(sparse.max_abs_diff(&dense) < 1e-12);
    }

    #[test]
    fn transpose_matmul_matches_dense() {
        let c = Csr::from_triplets(3, 2, &[(0, 0, 1.0), (1, 1, 2.0), (2, 0, 3.0)]);
        let x = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let got = c.matmul_transpose_dense(&x);
        let expect = c.to_dense().transpose().matmul(&x);
        assert!(got.max_abs_diff(&expect) < 1e-12);
    }

    #[test]
    fn identity_behaves() {
        let i = Csr::identity(4);
        let x = Matrix::from_fn(4, 2, |r, c| (r * 2 + c) as f64);
        assert!(i.matmul_dense(&x).max_abs_diff(&x) < 1e-15);
        assert_eq!(i.nnz(), 4);
    }

    #[test]
    fn symmetrize_makes_undirected() {
        let c = Csr::from_triplets(3, 3, &[(0, 1, 1.0), (1, 2, 2.0)]);
        let s = c.symmetrize_max();
        assert_eq!(s.get(1, 0), 1.0);
        assert_eq!(s.get(2, 1), 2.0);
        assert!(s.to_dense().max_abs_diff(&s.to_dense().transpose()) < 1e-15);
    }

    #[test]
    fn row_sums_are_degrees() {
        let c = Csr::from_triplets(2, 2, &[(0, 0, 1.0), (0, 1, 1.0), (1, 0, 1.0)]);
        assert_eq!(c.row_sums(), vec![2.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn rejects_out_of_bounds_triplets() {
        let _ = Csr::from_triplets(2, 2, &[(2, 0, 1.0)]);
    }
}
