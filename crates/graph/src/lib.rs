//! # graph — sparse matrices, KNN graphs, and GCN layers
//!
//! Substrate for the GCN-based deep-clustering baselines (SDCN, DFCN,
//! DCRN) and the SHGP label-propagation baseline: a CSR sparse matrix
//! ([`csr`]), KNN-graph construction with Kipf–Welling normalization
//! ([`knn`]), and tape-differentiable graph convolutions ([`gcn`]).
//!
//! TableDC itself deliberately *avoids* graph construction (paper §4.8) —
//! this crate exists to reproduce the baselines it is compared against and
//! the scalability gap of Figure 3.

pub mod csr;
pub mod gcn;
pub mod knn;

pub use csr::Csr;
pub use gcn::{label_propagation, Gcn, GcnLayer};
pub use knn::{gcn_adjacency, knn_adjacency, normalize_adjacency};
