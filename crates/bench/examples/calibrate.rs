//! Calibration helper: quick SC-method scores per profile×model, compared
//! against the paper's reported numbers (run before regenerating tables).

use bench::{Budget, Method};
use bench::Scores;
use datagen::{EmbeddingModel, Profile, Scale};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let seed_off: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0);
    let cases = [
        (Profile::WebTables, EmbeddingModel::Sbert, "paper: KM .27/.45 Birch .33/.49 DBSCAN .00/.29 TableDC .62/.65"),
        (Profile::Tus, EmbeddingModel::Sbert, "paper: KM .73/.79 Birch .22/.40 DBSCAN .17/.47 TableDC .88/.87"),
        (Profile::MusicBrainz, EmbeddingModel::Sbert, "paper: KM .40/.68 Birch .56/.76 TableDC .80/.88"),
        (Profile::Camera, EmbeddingModel::Sbert, "paper: KM .74/.70 Birch .76/.70 DBSCAN .73/.69 TableDC .80/.72"),
    ];
    for (profile, model, paper) in cases {
        let d = profile.dataset(model, Scale::Scaled, 42);
        let budget = Budget::for_task(profile.task()).scaled(1.0);
        print!("{:<12} {:<7}", profile.name(), model.name());
        for m in [Method::KMeans, Method::Birch, Method::Dbscan, Method::TableDc] {
            let mut rng = StdRng::seed_from_u64(7 + seed_off);
            let (labels, _) = m.run(&d.x, d.k, &budget, &mut rng);
            let s = Scores::evaluate(&labels, &d.labels);
            print!("  {} {:.2}/{:.2}", m.name(), s.ari, s.acc);
        }
        println!("\n             {paper}");
    }
}
