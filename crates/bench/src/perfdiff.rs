//! Comparison of two `BENCH_repro.json` reports — the library behind the
//! `perfdiff` binary and the perf-regression gate in `results/verify.sh`.
//!
//! Three sections of the report are compared, each keyed by name:
//!
//! * **experiments** — wall seconds per experiment (`status == "ok"` only);
//! * **methods** — wall seconds per `experiment · dataset · method` cell;
//! * **profile** — per-phase `self_ms` from the span tree.
//!
//! A candidate entry is a **regression** when it is both proportionally
//! slower than baseline (`cand > base × ratio`) *and* slower by more than
//! an absolute floor (`min_secs` / `min_ms`). The two-sided test keeps the
//! gate honest: the ratio alone would flag microsecond-scale noise on
//! near-zero phases, the floor alone would hide a 2× slowdown of a long
//! phase. Entries present on only one side are reported informationally,
//! never as regressions — experiments legitimately come and go between
//! runs.

use obs::json::{parse, Json};

/// Regression thresholds. `Default` is deliberately generous (1.5× plus
/// an absolute floor) so the gate catches order-of-magnitude regressions
//  without flaking on machine noise.
#[derive(Debug, Clone, Copy)]
pub struct Tolerance {
    /// Multiplicative slowdown that counts as a regression.
    pub ratio: f64,
    /// Absolute floor for experiment/method wall-time deltas, seconds.
    pub min_secs: f64,
    /// Absolute floor for per-phase self-time deltas, milliseconds.
    pub min_ms: f64,
}

impl Default for Tolerance {
    fn default() -> Self {
        Self { ratio: 1.5, min_secs: 0.25, min_ms: 50.0 }
    }
}

/// One compared entry that changed notably (either direction).
#[derive(Debug, Clone)]
pub struct Delta {
    /// Section the entry came from (`experiment`, `method`, `phase`).
    pub section: &'static str,
    /// Entry key (experiment name, method cell, or span name).
    pub name: String,
    /// Baseline value (secs or ms depending on section).
    pub base: f64,
    /// Candidate value.
    pub cand: f64,
}

impl Delta {
    /// `cand / base`, saturating when the baseline is zero.
    pub fn ratio(&self) -> f64 {
        if self.base > 0.0 {
            self.cand / self.base
        } else if self.cand > 0.0 {
            f64::INFINITY
        } else {
            1.0
        }
    }

    fn render(&self, unit: &str) -> String {
        format!(
            "{} {:<40} {:>10.3}{unit} -> {:>10.3}{unit}  ({:.2}x)",
            self.section,
            self.name,
            self.base,
            self.cand,
            self.ratio()
        )
    }
}

/// Outcome of comparing two reports.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Entries exceeding the tolerance — the gate fails when non-empty.
    pub regressions: Vec<Delta>,
    /// Entries faster than baseline by the same two-sided test
    /// (informational).
    pub improvements: Vec<Delta>,
    /// Entries present on only one side, or sections absent entirely.
    pub notes: Vec<String>,
    /// Entries compared across all sections.
    pub compared: usize,
}

impl DiffReport {
    /// True when the gate should fail.
    pub fn has_regressions(&self) -> bool {
        !self.regressions.is_empty()
    }

    /// Human-readable multi-line rendering.
    pub fn render(&self) -> String {
        self.render_as("perfdiff")
    }

    /// [`DiffReport::render`] with the reporting tool's name in the
    /// header/footer lines (`perfdiff`, `runs diff`).
    pub fn render_as(&self, tool: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("{tool}: {} entries compared\n", self.compared));
        if !self.regressions.is_empty() {
            out.push_str("REGRESSIONS:\n");
            for d in &self.regressions {
                let unit = match d.section {
                    "profile" => "ms",
                    "metric" | "health" => "",
                    _ => "s",
                };
                out.push_str(&format!("  {}\n", d.render(unit)));
            }
        }
        if !self.improvements.is_empty() {
            out.push_str("improvements:\n");
            for d in &self.improvements {
                let unit = match d.section {
                    "profile" => "ms",
                    "metric" | "health" => "",
                    _ => "s",
                };
                out.push_str(&format!("  {}\n", d.render(unit)));
            }
        }
        for n in &self.notes {
            out.push_str(&format!("  note: {n}\n"));
        }
        if self.regressions.is_empty() {
            out.push_str(&format!("{tool}: ok — no regressions beyond tolerance\n"));
        }
        out
    }
}

/// Named `(key, value)` rows extracted from one section of a report.
fn section_rows(report: &Json, section: &str) -> Vec<(String, f64)> {
    let Some(Json::Arr(items)) = report.get(section) else {
        return Vec::new();
    };
    let mut rows = Vec::new();
    for item in items {
        // Methods/experiments carry a status; skip non-ok entries — their
        // timings describe a failure path, not performance.
        if let Some(status) = item.get("status").and_then(Json::as_str) {
            if status != "ok" {
                continue;
            }
        }
        let key = match section {
            "experiments" => item.get("name").and_then(Json::as_str).map(str::to_string),
            "methods" => {
                match (
                    item.get("experiment").and_then(Json::as_str),
                    item.get("dataset").and_then(Json::as_str),
                    item.get("method").and_then(Json::as_str),
                ) {
                    (Some(e), Some(d), Some(m)) => Some(format!("{e} · {d} · {m}")),
                    _ => None,
                }
            }
            "profile" => item.get("name").and_then(Json::as_str).map(str::to_string),
            _ => None,
        };
        let value = match section {
            "profile" => item.get("self_ms").and_then(Json::as_f64),
            _ => item.get("secs").and_then(Json::as_f64),
        };
        if let (Some(key), Some(value)) = (key, value) {
            rows.push((key, value));
        }
    }
    rows
}

/// Which direction is "better" for a section's values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Better {
    /// Smaller is better — wall seconds, phase self-time, health rank.
    Lower,
    /// Larger is better — quality metrics (ACC/ARI/NMI in the run ledger).
    Higher,
}

/// Compares two keyed row sets under the two-sided test, appending to
/// `out`. A candidate row regresses when it is worse than baseline by both
/// the ratio *and* the absolute floor, with "worse" oriented by `better` —
/// the shared core behind the perf gate and the run-ledger `runs diff`.
pub fn compare_rows(
    out: &mut DiffReport,
    section: &'static str,
    base_rows: &[(String, f64)],
    cand_rows: &[(String, f64)],
    tol: &Tolerance,
    floor: f64,
    better: Better,
) {
    for (name, base) in base_rows {
        let Some((_, cand)) =
            cand_rows.iter().find(|(n, _)| n == name)
        else {
            out.notes.push(format!("{section} {name:?} missing from candidate"));
            continue;
        };
        out.compared += 1;
        let delta = Delta { section, name: name.clone(), base: *base, cand: *cand };
        let cand_worse = *cand > base * tol.ratio && cand - base > floor;
        let cand_better = *base > cand * tol.ratio && base - cand > floor;
        let (regressed, improved) = match better {
            Better::Lower => (cand_worse, cand_better),
            Better::Higher => (cand_better, cand_worse),
        };
        if regressed {
            out.regressions.push(delta);
        } else if improved {
            out.improvements.push(delta);
        }
    }
    for (name, _) in cand_rows {
        if !base_rows.iter().any(|(n, _)| n == name) {
            out.notes.push(format!("{section} {name:?} new in candidate"));
        }
    }
}

/// Compares two parsed reports.
pub fn diff(baseline: &Json, candidate: &Json, tol: &Tolerance) -> DiffReport {
    let mut out = DiffReport::default();
    let sections: [(&'static str, f64); 3] = [
        ("experiments", tol.min_secs),
        ("methods", tol.min_secs),
        ("profile", tol.min_ms),
    ];
    for (section, floor) in sections {
        let base_rows = section_rows(baseline, section);
        let cand_rows = section_rows(candidate, section);
        if base_rows.is_empty() && cand_rows.is_empty() {
            out.notes.push(format!("section {section:?} empty on both sides"));
            continue;
        }
        compare_rows(&mut out, section, &base_rows, &cand_rows, tol, floor, Better::Lower);
    }
    out
}

/// Reads and compares two report files. `Err` is a usage/parse failure
/// (exit 2 territory), distinct from a regression verdict.
pub fn diff_files(
    baseline_path: &str,
    candidate_path: &str,
    tol: &Tolerance,
) -> Result<DiffReport, String> {
    let read = |path: &str| -> Result<Json, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        parse(text.trim()).map_err(|e| format!("{path}: invalid JSON: {e}"))
    };
    let baseline = read(baseline_path)?;
    let candidate = read(candidate_path)?;
    if !matches!(baseline, Json::Obj(_)) || !matches!(candidate, Json::Obj(_)) {
        return Err("reports must be JSON objects".to_string());
    }
    Ok(diff(&baseline, &candidate, tol))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(table2_secs: f64, fit_self_ms: f64, kmeans_secs: f64) -> Json {
        parse(&format!(
            r#"{{"scale":"Scaled","seed":42,"epoch_factor":1.0,
                "experiments":[
                    {{"name":"table2","secs":{table2_secs},"status":"ok","error":null}},
                    {{"name":"fig2","secs":3.0,"status":"panicked","error":"boom"}}],
                "methods":[
                    {{"experiment":"table2","dataset":"tus/sbert","method":"K-means",
                      "status":"ok","ari":0.7,"acc":0.8,"secs":{kmeans_secs},"error":null}}],
                "profile":[
                    {{"name":"tabledc.fit","calls":4,"total_ms":900.0,
                      "self_ms":{fit_self_ms},"alloc_bytes":0}}]}}"#
        ))
        .expect("fixture parses")
    }

    #[test]
    fn identical_reports_have_no_regressions() {
        let base = report(10.0, 400.0, 2.0);
        let diffed = diff(&base, &base, &Tolerance::default());
        assert!(!diffed.has_regressions(), "{:?}", diffed.regressions);
        assert!(diffed.improvements.is_empty());
        assert_eq!(diffed.compared, 3, "experiment + method + phase");
    }

    #[test]
    fn doctored_regression_is_flagged() {
        let base = report(10.0, 400.0, 2.0);
        // 10x wall time on table2, 10x self time on tabledc.fit.
        let doctored = report(100.0, 4000.0, 2.0);
        let diffed = diff(&base, &doctored, &Tolerance::default());
        assert!(diffed.has_regressions());
        let names: Vec<&str> = diffed.regressions.iter().map(|d| d.name.as_str()).collect();
        assert!(names.contains(&"table2"), "{names:?}");
        assert!(names.contains(&"tabledc.fit"), "{names:?}");
        let rendered = diffed.render();
        assert!(rendered.contains("REGRESSIONS"));
    }

    #[test]
    fn small_absolute_deltas_never_flag_even_at_large_ratios() {
        // 10x ratio but only 90 ms absolute on the experiment (< min_secs)
        // and 9 ms on the phase (< min_ms): noise, not regression.
        let base = report(0.01, 1.0, 0.001);
        let cand = report(0.1, 10.0, 0.01);
        let diffed = diff(&base, &cand, &Tolerance::default());
        assert!(!diffed.has_regressions(), "{:?}", diffed.regressions);
    }

    #[test]
    fn large_ratio_threshold_tolerates_moderate_slowdown() {
        let base = report(10.0, 400.0, 2.0);
        let cand = report(13.0, 500.0, 2.5); // 1.3x — under the 1.5x gate
        assert!(!diff(&base, &cand, &Tolerance::default()).has_regressions());
        // A tighter tolerance flags the same delta.
        let tight = Tolerance { ratio: 1.1, ..Tolerance::default() };
        assert!(diff(&base, &cand, &tight).has_regressions());
    }

    #[test]
    fn improvements_and_missing_entries_are_informational() {
        let base = report(100.0, 4000.0, 20.0);
        let faster = report(10.0, 400.0, 2.0);
        let diffed = diff(&base, &faster, &Tolerance::default());
        assert!(!diffed.has_regressions());
        assert!(!diffed.improvements.is_empty());

        // Baseline without a profile section (older report format).
        let legacy = parse(
            r#"{"scale":"Scaled","seed":42,"epoch_factor":1.0,
                "experiments":[{"name":"table2","secs":10.0,"status":"ok","error":null}],
                "methods":[]}"#,
        )
        .expect("legacy fixture parses");
        let diffed = diff(&legacy, &faster, &Tolerance::default());
        assert!(!diffed.has_regressions());
        assert!(
            diffed.notes.iter().any(|n| n.contains("new in candidate")),
            "{:?}",
            diffed.notes
        );
    }

    #[test]
    fn panicked_entries_are_excluded_from_comparison() {
        // fig2 is "panicked" in the fixture; doctoring its secs must not
        // trip the gate because failed runs carry no perf signal.
        let base = report(10.0, 400.0, 2.0);
        let diffed = diff(&base, &base, &Tolerance::default());
        assert!(diffed.regressions.iter().all(|d| d.name != "fig2"));
        assert!(diffed.improvements.iter().all(|d| d.name != "fig2"));
    }

    #[test]
    fn diff_files_reports_io_and_parse_errors() {
        let err = diff_files("/nonexistent/a.json", "/nonexistent/b.json", &Tolerance::default());
        assert!(err.is_err());
    }
}
