//! # bench — the experiment harness regenerating every paper table/figure
//!
//! * [`methods`] — the uniform method registry (SC + DC + TableDC) with
//!   the §4.3 per-task training budgets;
//! * [`report`] — ARI/ACC scoring and table rendering;
//! * [`experiments`] — one function per paper table/figure (Tables 1–5,
//!   Figures 2–5) plus the extra ablations of DESIGN.md §5.
//!
//! The `repro` binary drives these (`cargo run --release -p bench --bin
//! repro -- all`); the criterion benches in `benches/` time representative
//! slices of each experiment.

pub mod experiments;
pub mod htmlreport;
pub mod ledger;
pub mod methods;
pub mod perfdiff;
pub mod report;

pub use experiments::RunOptions;
pub use methods::{Budget, Method};
pub use report::Scores;
