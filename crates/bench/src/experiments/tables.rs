//! Tables 1–5 of the paper.

use datagen::{EmbeddingModel, Profile, Scale};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tabledc::{Covariance, Distance, Kernel, TableDc, TableDcConfig};

use crate::methods::Method;
use crate::report::{panic_message, render_table, MethodRecord, Scores};

use super::RunOptions;

/// Table 1: dataset statistics.
pub fn table1(opts: RunOptions) -> String {
    let headers =
        vec!["Group".into(), "Dataset".into(), "Instances".into(), "Clusters".into()];
    let rows: Vec<Vec<String>> = Profile::ALL
        .iter()
        .map(|p| {
            let (n, k) = p.stats(opts.scale);
            let group = match p.task() {
                datagen::Task::SchemaInference => "Tables",
                datagen::Task::EntityResolution => "Rows",
                datagen::Task::DomainDiscovery => "Columns",
            };
            vec![group.into(), p.name().into(), n.to_string(), k.to_string()]
        })
        .collect();
    let label = match opts.scale {
        Scale::Paper => "Table 1: dataset statistics (paper scale)",
        Scale::Scaled => "Table 1: dataset statistics (scaled)",
    };
    render_table(label, &headers, &rows)
}

/// One (method × representation) comparison grid over a set of profiles —
/// the shared engine behind Tables 2, 3, and 4.
pub struct ComparisonResult {
    /// Experiment title.
    pub title: String,
    /// `(profile, model)` column order.
    pub columns: Vec<(Profile, EmbeddingModel)>,
    /// Methods in row order.
    pub methods: Vec<Method>,
    /// `scores[row][col]`; `None` = the method did not finish (its run
    /// panicked and was caught) — rendered as the paper's N/A entries.
    pub scores: Vec<Vec<Option<Scores>>>,
    /// `times[row][col]` wall-clock seconds, `None` when the run panicked.
    pub times: Vec<Vec<Option<f64>>>,
    /// `errors[row][col]` panic message, `Some` only for panicked runs.
    pub errors: Vec<Vec<Option<String>>>,
}

impl ComparisonResult {
    /// Renders paper-style, one `ARI ACC` pair per dataset×representation.
    pub fn render(&self) -> String {
        let mut headers = vec!["Method".to_string()];
        for (p, m) in &self.columns {
            headers.push(format!("{}/{} ARI ACC", p.name(), m.name()));
        }
        let rows: Vec<Vec<String>> = self
            .methods
            .iter()
            .zip(&self.scores)
            .map(|(method, row)| {
                let mut cells = vec![method.name().to_string()];
                cells.extend(row.iter().map(|s| match s {
                    Some(s) => s.cell(),
                    None => "  N/A".to_string(),
                }));
                cells
            })
            .collect();
        render_table(&self.title, &headers, &rows)
    }

    /// Score of one method/column (for assertions in tests).
    pub fn score(&self, method: Method, col: usize) -> Option<Scores> {
        let row = self.methods.iter().position(|&m| m == method)?;
        self.scores[row][col]
    }

    /// Mean ARI of a method across the columns where it ran.
    pub fn mean_ari(&self, method: Method) -> f64 {
        let row = self.methods.iter().position(|&m| m == method).expect("method present");
        let vals: Vec<f64> = self.scores[row].iter().flatten().map(|s| s.ari).collect();
        vals.iter().sum::<f64>() / vals.len().max(1) as f64
    }

    /// Flattens the grid into per-cell records for `BENCH_repro.json`.
    pub fn records(&self) -> Vec<MethodRecord> {
        let mut out = Vec::with_capacity(self.methods.len() * self.columns.len());
        for (ri, &method) in self.methods.iter().enumerate() {
            for (ci, (p, m)) in self.columns.iter().enumerate() {
                let score = self.scores[ri][ci];
                out.push(MethodRecord {
                    experiment: self.title.clone(),
                    dataset: format!("{}/{}", p.name(), m.name()),
                    method: method.name().to_string(),
                    status: if score.is_some() { "ok" } else { "panicked" }.to_string(),
                    ari: score.map(|s| s.ari),
                    acc: score.map(|s| s.acc),
                    secs: self.times[ri][ci],
                    error: self.errors[ri][ci].clone(),
                });
            }
        }
        out
    }
}

/// Runs the method grid for one group of profiles.
fn comparison(
    title: &str,
    profiles: &[Profile],
    methods: &[Method],
    opts: RunOptions,
) -> ComparisonResult {
    let mut columns = Vec::new();
    for &p in profiles {
        for &m in p.representations() {
            columns.push((p, m));
        }
    }
    let mut scores = vec![vec![None; columns.len()]; methods.len()];
    let mut times = vec![vec![None; columns.len()]; methods.len()];
    let mut errors = vec![vec![None; columns.len()]; methods.len()];
    for (ci, &(profile, model)) in columns.iter().enumerate() {
        let dataset = profile.dataset(model, opts.scale, opts.seed);
        let budget = opts.budget(profile.task());
        for (ri, &method) in methods.iter().enumerate() {
            // Each method runs under `catch_unwind` so one panicking
            // baseline degrades to an N/A cell instead of killing the
            // whole table (and the `repro` sweep around it).
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut rng = StdRng::seed_from_u64(opts.seed ^ (ri as u64) << 32 ^ ci as u64);
                method.run(&dataset.x, dataset.k, &budget, &mut rng)
            }));
            let mut event = obs::event("bench.method")
                .str("experiment", title)
                .str("dataset", profile.name())
                .str("model", model.name())
                .str("method", method.name());
            match outcome {
                Ok((labels, secs)) => {
                    let s = Scores::evaluate(&labels, &dataset.labels);
                    scores[ri][ci] = Some(s);
                    times[ri][ci] = Some(secs);
                    event = event
                        .str("status", "ok")
                        .f64("ari", s.ari)
                        .f64("acc", s.acc)
                        .f64("secs", secs);
                }
                Err(payload) => {
                    let msg = panic_message(payload.as_ref());
                    event = event.str("status", "panicked").str("error", &msg);
                    errors[ri][ci] = Some(msg);
                }
            }
            event.emit();
        }
    }
    ComparisonResult {
        title: title.to_string(),
        columns,
        methods: methods.to_vec(),
        scores,
        times,
        errors,
    }
}

/// Table 2: schema inference (TUS, web tables).
pub fn table2(opts: RunOptions) -> ComparisonResult {
    comparison(
        "Table 2: schema inference clustering results (ARI / ACC)",
        &[Profile::Tus, Profile::WebTables],
        &Method::ALL,
        opts,
    )
}

/// Table 3: entity resolution (MusicBrainz, GeoSet). The paper's Table 3
/// omits DCRN (it did not scale to the large cluster counts).
pub fn table3(opts: RunOptions) -> ComparisonResult {
    let methods: Vec<Method> =
        Method::ALL.into_iter().filter(|m| *m != Method::Dcrn).collect();
    comparison(
        "Table 3: entity resolution clustering results (ARI / ACC)",
        &[Profile::MusicBrainz, Profile::GeoSet],
        &methods,
        opts,
    )
}

/// Table 4: domain discovery (Camera, Monitor).
pub fn table4(opts: RunOptions) -> ComparisonResult {
    comparison(
        "Table 4: domain discovery clustering results (ARI / ACC)",
        &[Profile::Camera, Profile::Monitor],
        &Method::ALL,
        opts,
    )
}

/// Table 5: the distance × kernel ablation on the self-supervised module.
pub struct Table5Result {
    /// `(dataset label, distance rows, kernel rows)` — each row is
    /// `(name, Scores)`.
    pub sections: Vec<(String, Vec<(String, Scores)>, Vec<(String, Scores)>)>,
}

impl Table5Result {
    /// Renders both halves of Table 5.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (dataset, distances, kernels) in &self.sections {
            let headers =
                vec!["Axis".to_string(), "Variant".to_string(), "ARI".to_string(), "ACC".to_string()];
            let mut rows = Vec::new();
            for (name, s) in distances {
                rows.push(vec![
                    "Distance".into(),
                    name.clone(),
                    format!("{:.2}", s.ari),
                    format!("{:.2}", s.acc),
                ]);
            }
            for (name, s) in kernels {
                rows.push(vec![
                    "Kernel".into(),
                    name.clone(),
                    format!("{:.2}", s.ari),
                    format!("{:.2}", s.acc),
                ]);
            }
            out.push_str(&render_table(
                &format!("Table 5: self-supervision ablation on {dataset}"),
                &headers,
                &rows,
            ));
        }
        out
    }

    /// Looks up one score by dataset index / axis ("Distance"/"Kernel") /
    /// variant name.
    pub fn score(&self, section: usize, axis: &str, variant: &str) -> Option<Scores> {
        let (_, distances, kernels) = &self.sections[section];
        let rows = if axis == "Distance" { distances } else { kernels };
        rows.iter().find(|(n, _)| n == variant).map(|(_, s)| *s)
    }
}

/// Table 5 datasets: web tables (SBERT, schema only), MusicBrainz (SBERT),
/// Monitor (SBERT).
pub fn table5(opts: RunOptions) -> Table5Result {
    let cases = [
        (Profile::WebTables, EmbeddingModel::Sbert),
        (Profile::MusicBrainz, EmbeddingModel::Sbert),
        (Profile::Monitor, EmbeddingModel::Sbert),
    ];
    let mut sections = Vec::new();
    for (profile, model) in cases {
        let dataset = profile.dataset(model, opts.scale, opts.seed);
        let budget = opts.budget(profile.task());

        let run = |distance: Distance, kernel: Kernel, seed: u64| -> Scores {
            let mut rng = StdRng::seed_from_u64(seed);
            let config = TableDcConfig { distance, kernel, ..budget.tabledc_config(dataset.k) };
            let (_, fit) = TableDc::fit(config, &dataset.x, &mut rng);
            Scores::evaluate(&fit.labels, &dataset.labels)
        };

        // Vary the distance with the Cauchy kernel fixed.
        let distances = vec![
            ("Euclidean".to_string(), run(Distance::Euclidean, Kernel::PAPER, opts.seed + 1)),
            ("Cosine".to_string(), run(Distance::Cosine, Kernel::PAPER, opts.seed + 2)),
            (
                "Mahalanobis".to_string(),
                run(Distance::PAPER, Kernel::PAPER, opts.seed + 3),
            ),
        ];
        // Vary the kernel with the Mahalanobis distance fixed.
        let kernels = vec![
            (
                "Student's t".to_string(),
                run(Distance::PAPER, Kernel::StudentT { nu: 1.0 }, opts.seed + 4),
            ),
            (
                "Normal".to_string(),
                run(Distance::PAPER, Kernel::Normal { sigma: 1.0 }, opts.seed + 5),
            ),
            ("Cauchy".to_string(), run(Distance::PAPER, Kernel::PAPER, opts.seed + 6)),
        ];
        sections.push((format!("{} ({})", profile.name(), model.name()), distances, kernels));
    }
    let _ = Covariance::PAPER; // referenced for doc-link stability
    Table5Result { sections }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_all_six_datasets() {
        let t = table1(RunOptions::default());
        for p in Profile::ALL {
            assert!(t.contains(p.name()), "missing {}", p.name());
        }
        let paper = table1(RunOptions { scale: Scale::Paper, ..Default::default() });
        assert!(paper.contains("34481"));
        assert!(paper.contains("786"));
    }

    #[test]
    fn comparison_grid_shapes() {
        // One tiny profile with the cheap methods only.
        let opts = RunOptions::quick();
        let methods = [Method::KMeans, Method::Birch];
        let result = comparison("test", &[Profile::WebTables], &methods, opts);
        assert_eq!(result.columns.len(), Profile::WebTables.representations().len());
        assert_eq!(result.scores.len(), 2);
        assert!(result.score(Method::KMeans, 0).is_some());
        assert!(result.mean_ari(Method::Birch).is_finite());
        let rendered = result.render();
        assert!(rendered.contains("K-means"));
        // Successful runs carry wall-clock seconds and flatten to "ok"
        // records for BENCH_repro.json.
        assert!(result.times[0][0].is_some_and(|t| t >= 0.0));
        let records = result.records();
        assert_eq!(records.len(), 2 * result.columns.len());
        assert!(records.iter().all(|r| r.status == "ok" && r.error.is_none()));
    }

    #[test]
    fn panicked_cells_render_na_and_record_the_error() {
        let result = ComparisonResult {
            title: "test".into(),
            columns: vec![(Profile::WebTables, EmbeddingModel::Sbert)],
            methods: vec![Method::KMeans, Method::Sdcn],
            scores: vec![
                vec![Some(Scores { ari: 0.5, acc: 0.6 })],
                vec![None],
            ],
            times: vec![vec![Some(0.1)], vec![None]],
            errors: vec![vec![None], vec![Some("index out of bounds".into())]],
        };
        assert!(result.render().contains("N/A"));
        let records = result.records();
        assert_eq!(records[0].status, "ok");
        assert_eq!(records[1].status, "panicked");
        assert_eq!(records[1].error.as_deref(), Some("index out of bounds"));
        assert!(records[1].ari.is_none() && records[1].secs.is_none());
    }
}
