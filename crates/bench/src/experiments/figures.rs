//! Figures 2–5 of the paper.

use std::time::Instant;

use baselines::{D3l, D4, DeepConfig, Dfcn, Edesc, Jedai, JedaiMetric, Sdcn, Shgp, Starmie};
use datagen::{scalability_workload, EmbeddingModel, Profile};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tabledc::{TableDc, TableDcConfig};

use crate::report::{render_table, Scores};

use super::RunOptions;

/// Figure 2: TableDC vs the bespoke solutions, per task.
pub struct Fig2Result {
    /// `(panel title, rows of (system, dataset, Scores))`.
    pub panels: Vec<(String, Vec<(String, String, Scores)>)>,
}

impl Fig2Result {
    /// Renders the three panels.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (title, rows) in &self.panels {
            let headers =
                vec!["System".to_string(), "Dataset".to_string(), "ARI".to_string(), "ACC".to_string()];
            let cells: Vec<Vec<String>> = rows
                .iter()
                .map(|(s, d, sc)| {
                    vec![s.clone(), d.clone(), format!("{:.2}", sc.ari), format!("{:.2}", sc.acc)]
                })
                .collect();
            out.push_str(&render_table(title, &headers, &cells));
        }
        out
    }

    /// Scores of one system on one dataset.
    pub fn score(&self, panel: usize, system: &str, dataset: &str) -> Option<Scores> {
        self.panels[panel]
            .1
            .iter()
            .find(|(s, d, _)| s == system && d == dataset)
            .map(|(_, _, sc)| *sc)
    }
}

/// Runs Figure 2: panel (a) schema inference vs D3L/Starmie, panel (b)
/// entity resolution vs JedAI (Jaccard/Cosine/Dice), panel (c) domain
/// discovery vs D4/Starmie. TableDC uses SBERT in (a)/(b) and T5 in (c),
/// as in the paper.
pub fn fig2(opts: RunOptions) -> Fig2Result {
    let mut panels = Vec::new();

    // (a) Schema inference.
    let mut rows = Vec::new();
    for profile in [Profile::WebTables, Profile::Tus] {
        let corpus = profile.corpus(opts.scale, EmbeddingModel::Sbert, opts.seed);
        let texts = corpus.texts();
        let truth = corpus.labels();
        let mut rng = StdRng::seed_from_u64(opts.seed + 10);
        let d3l = D3l::default().fit(&texts, corpus.k, &mut rng);
        rows.push(("D3L".to_string(), profile.name().to_string(), Scores::evaluate(&d3l.labels, &truth)));
        let starmie = starmie_for(opts).fit(&texts, corpus.k, &mut rng);
        rows.push((
            "Starmie".to_string(),
            profile.name().to_string(),
            Scores::evaluate(&starmie.labels, &truth),
        ));
        rows.push((
            "TableDC".to_string(),
            profile.name().to_string(),
            tabledc_on(profile, EmbeddingModel::Sbert, opts),
        ));
    }
    panels.push(("Figure 2a: schema inference vs bespoke".to_string(), rows));

    // (b) Entity resolution.
    let mut rows = Vec::new();
    for profile in [Profile::MusicBrainz, Profile::GeoSet] {
        let corpus = profile.corpus(opts.scale, EmbeddingModel::Sbert, opts.seed);
        let texts = corpus.texts();
        let truth = corpus.labels();
        for metric in [JedaiMetric::Jaccard, JedaiMetric::Cosine, JedaiMetric::Dice] {
            let out = Jedai::new(metric, 0.5).fit(&texts);
            rows.push((
                format!("JedAI-{}", metric.name()),
                profile.name().to_string(),
                Scores::evaluate(&out.labels, &truth),
            ));
        }
        rows.push((
            "TableDC".to_string(),
            profile.name().to_string(),
            tabledc_on(profile, EmbeddingModel::Sbert, opts),
        ));
    }
    panels.push(("Figure 2b: entity resolution vs bespoke".to_string(), rows));

    // (c) Domain discovery.
    let mut rows = Vec::new();
    for profile in [Profile::Camera, Profile::Monitor] {
        let corpus = profile.corpus(opts.scale, EmbeddingModel::T5, opts.seed);
        let texts = corpus.texts();
        let truth = corpus.labels();
        let d4 = D4::default().fit(&texts);
        rows.push(("D4".to_string(), profile.name().to_string(), Scores::evaluate(&d4.labels, &truth)));
        let mut rng = StdRng::seed_from_u64(opts.seed + 11);
        let starmie = starmie_for(opts).fit(&texts, corpus.k, &mut rng);
        rows.push((
            "Starmie".to_string(),
            profile.name().to_string(),
            Scores::evaluate(&starmie.labels, &truth),
        ));
        rows.push((
            "TableDC".to_string(),
            profile.name().to_string(),
            tabledc_on(profile, EmbeddingModel::T5, opts),
        ));
    }
    panels.push(("Figure 2c: domain discovery vs bespoke".to_string(), rows));

    Fig2Result { panels }
}

fn starmie_for(opts: RunOptions) -> Starmie {
    Starmie { epochs: ((30.0 * opts.epoch_factor) as usize).max(3), ..Default::default() }
}

fn tabledc_on(profile: Profile, model: EmbeddingModel, opts: RunOptions) -> Scores {
    let dataset = profile.dataset(model, opts.scale, opts.seed);
    let budget = opts.budget(profile.task());
    let mut rng = StdRng::seed_from_u64(opts.seed + 12);
    let (_, fit) = TableDc::fit(budget.tabledc_config(dataset.k), &dataset.x, &mut rng);
    Scores::evaluate(&fit.labels, &dataset.labels)
}

/// Figure 3: runtime scaling with the number of clusters 𝕂.
pub struct Fig3Result {
    /// The 𝕂 values swept.
    pub ks: Vec<usize>,
    /// `(method name, seconds per 𝕂)`.
    pub series: Vec<(String, Vec<f64>)>,
}

impl Fig3Result {
    /// Renders the timing grid.
    pub fn render(&self) -> String {
        let mut headers = vec!["Method".to_string()];
        headers.extend(self.ks.iter().map(|k| format!("K={k}")));
        let rows: Vec<Vec<String>> = self
            .series
            .iter()
            .map(|(name, times)| {
                let mut cells = vec![name.clone()];
                cells.extend(times.iter().map(|t| format!("{t:.2}s")));
                cells
            })
            .collect();
        render_table(
            "Figure 3: scalability with the number of clusters (seconds)",
            &headers,
            &rows,
        )
    }

    /// Time of a method at the largest 𝕂 divided by its time at the
    /// smallest — the empirical growth factor used to check the paper's
    /// quasi-linear-vs-quadratic claim.
    pub fn growth_factor(&self, method: &str) -> f64 {
        let (_, times) = self
            .series
            .iter()
            .find(|(n, _)| n == method)
            .expect("method in series");
        times.last().expect("non-empty") / times.first().expect("non-empty").max(1e-9)
    }
}

/// Runs Figure 3 on MusicBrainz-style workloads scaled to each 𝕂 (paper:
/// up to 𝕂 = 2400 on an A100; the scaled default sweeps a smaller range).
/// Methods: TableDC, SDCN, EDESC, SHGP — DFCN and DCRN are excluded
/// exactly as in the paper ("we have not managed to run both ... with a
/// high number of clusters").
pub fn fig3(opts: RunOptions, ks: &[usize]) -> Fig3Result {
    // A small fixed epoch budget: Figure 3 measures *scaling*, not quality.
    let epochs = ((10.0 * opts.epoch_factor).ceil() as usize).max(2);
    let pretrain = 2;
    let dim = 32;
    let mut series: Vec<(String, Vec<f64>)> = vec![
        ("TableDC".into(), Vec::new()),
        ("SDCN".into(), Vec::new()),
        ("EDESC".into(), Vec::new()),
        ("SHGP".into(), Vec::new()),
    ];
    for &k in ks {
        let g = scalability_workload(k, dim, &mut StdRng::seed_from_u64(opts.seed + k as u64));
        let deep = DeepConfig {
            latent_dim: 16,
            pretrain_epochs: pretrain,
            epochs,
            lr: 1e-3,
            knn_k: 5,
        };
        let time = |f: &mut dyn FnMut() -> ()| -> f64 {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        };
        let mut rng = StdRng::seed_from_u64(opts.seed ^ 0xf16_3 ^ k as u64);
        let cfg = TableDcConfig {
            latent_dim: 16,
            pretrain_epochs: pretrain,
            epochs,
            ..TableDcConfig::new(k)
        };
        series[0].1.push(time(&mut || {
            let _ = TableDc::fit(cfg.clone(), &g.x, &mut rng);
        }));
        series[1].1.push(time(&mut || {
            let _ = Sdcn::new(deep.clone()).fit(&g.x, k, &mut rng);
        }));
        series[2].1.push(time(&mut || {
            let _ = Edesc::new(deep.clone()).fit(&g.x, k, &mut rng);
        }));
        series[3].1.push(time(&mut || {
            let _ = Shgp::new(deep.clone()).fit(&g.x, k, &mut rng);
        }));
    }
    Fig3Result { ks: ks.to_vec(), series }
}

/// Figure 4: impact of the cluster-center initializer on TableDC's ARI.
pub struct Fig4Result {
    /// `(dataset label, rows of (initializer, ARI))`.
    pub sections: Vec<(String, Vec<(String, f64)>)>,
}

impl Fig4Result {
    /// Renders the bar-chart data as a table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (dataset, rows) in &self.sections {
            let headers = vec!["Initializer".to_string(), "ARI".to_string()];
            let cells: Vec<Vec<String>> =
                rows.iter().map(|(n, a)| vec![n.clone(), format!("{a:.2}")]).collect();
            out.push_str(&render_table(
                &format!("Figure 4: initializer ablation on {dataset}"),
                &headers,
                &cells,
            ));
        }
        out
    }

    /// ARI of one initializer in one section.
    pub fn ari(&self, section: usize, init: &str) -> Option<f64> {
        self.sections[section].1.iter().find(|(n, _)| n == init).map(|(_, a)| *a)
    }
}

/// Runs Figure 4 on the paper's three cases: SBERT/web tables (schema
/// inference), EmbDi/GeoSet (entity resolution), SBERT/Camera (domain
/// discovery).
pub fn fig4(opts: RunOptions) -> Fig4Result {
    let cases = [
        (Profile::WebTables, EmbeddingModel::Sbert),
        (Profile::GeoSet, EmbeddingModel::EmbDi),
        (Profile::Camera, EmbeddingModel::Sbert),
    ];
    let mut sections = Vec::new();
    for (profile, model) in cases {
        let dataset = profile.dataset(model, opts.scale, opts.seed);
        let budget = opts.budget(profile.task());
        let mut rows = Vec::new();
        for init in tabledc::Init::ALL {
            let mut rng = StdRng::seed_from_u64(opts.seed + 77);
            let config = TableDcConfig { init, ..budget.tabledc_config(dataset.k) };
            let (_, fit) = TableDc::fit(config, &dataset.x, &mut rng);
            rows.push((
                init.name().to_string(),
                Scores::evaluate(&fit.labels, &dataset.labels).ari,
            ));
        }
        sections.push((format!("{} ({})", profile.name(), model.name()), rows));
    }
    Fig4Result { sections }
}

/// Figure 5: `re_loss` and `KL(p‖q)` training curves on web tables for
/// TableDC and the self-supervised benchmarks.
pub struct Fig5Result {
    /// `(method, re_loss per epoch, kl(p‖q) per epoch)`.
    pub curves: Vec<(String, Vec<f64>, Vec<f64>)>,
}

impl Fig5Result {
    /// Renders both panels, sampling every `stride` epochs.
    pub fn render(&self, stride: usize) -> String {
        let stride = stride.max(1);
        let epochs = self.curves.first().map_or(0, |(_, r, _)| r.len());
        let sampled: Vec<usize> = (0..epochs).step_by(stride).collect();
        let mut out = String::new();
        for (panel, idx) in [("re_loss", 1usize), ("KL(p||q)", 2)] {
            let mut headers = vec!["Method".to_string()];
            headers.extend(sampled.iter().map(|e| format!("ep{e}")));
            let rows: Vec<Vec<String>> = self
                .curves
                .iter()
                .map(|(name, re, kl)| {
                    let series = if idx == 1 { re } else { kl };
                    let mut cells = vec![name.clone()];
                    cells.extend(sampled.iter().map(|&e| format!("{:.3}", series[e])));
                    cells
                })
                .collect();
            out.push_str(&render_table(
                &format!("Figure 5: {panel} on web tables (SBERT)"),
                &headers,
                &rows,
            ));
        }
        out
    }

    /// The curve triple of one method.
    pub fn curve(&self, method: &str) -> Option<&(String, Vec<f64>, Vec<f64>)> {
        self.curves.iter().find(|(n, _, _)| n == method)
    }
}

/// Runs Figure 5: loss traces on SBERT/web tables for TableDC, SDCN, DFCN,
/// and EDESC (the benchmarks that share the p/q self-supervision).
pub fn fig5(opts: RunOptions) -> Fig5Result {
    let dataset = Profile::WebTables.dataset(EmbeddingModel::Sbert, opts.scale, opts.seed);
    let budget =
        opts.budget(datagen::Task::SchemaInference);
    let deep = budget.deep_config();
    let mut curves = Vec::new();

    let mut rng = StdRng::seed_from_u64(opts.seed + 5);
    let (_, fit) = TableDc::fit(budget.tabledc_config(dataset.k), &dataset.x, &mut rng);
    curves.push(("TableDC".to_string(), fit.history.re_loss, fit.history.kl_pq));

    let sdcn = Sdcn::new(deep.clone()).fit(&dataset.x, dataset.k, &mut rng);
    curves.push(("SDCN".to_string(), sdcn.re_loss, sdcn.kl_pq));
    let dfcn = Dfcn::new(deep.clone()).fit(&dataset.x, dataset.k, &mut rng);
    curves.push(("DFCN".to_string(), dfcn.re_loss, dfcn.kl_pq));
    let edesc = Edesc::new(deep).fit(&dataset.x, dataset.k, &mut rng);
    curves.push(("EDESC".to_string(), edesc.re_loss, edesc.kl_pq));

    Fig5Result { curves }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "experiment smoke test; run with --release")]
    fn fig3_runs_tiny_sweep() {
        let opts = RunOptions::quick();
        let result = fig3(opts, &[10, 20]);
        assert_eq!(result.ks, vec![10, 20]);
        for (name, times) in &result.series {
            assert_eq!(times.len(), 2, "{name}");
            assert!(times.iter().all(|&t| t > 0.0));
        }
        assert!(result.growth_factor("TableDC") > 0.0);
        assert!(result.render().contains("K=10"));
    }

    #[test]
    #[cfg_attr(debug_assertions, ignore = "experiment smoke test; run with --release")]
    fn fig4_sections_have_all_initializers() {
        // Use a single tiny case by reusing the public API at quick scale.
        let opts = RunOptions { epoch_factor: 0.05, ..RunOptions::quick() };
        let result = fig4(opts);
        assert_eq!(result.sections.len(), 3);
        for (_, rows) in &result.sections {
            assert_eq!(rows.len(), 5);
        }
        assert!(result.ari(0, "Birch").is_some());
    }
}
