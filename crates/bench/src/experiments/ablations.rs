//! Extra ablations beyond the paper's own (DESIGN.md §5): sweeps over
//! δ (covariance scale), γ (Cauchy width), α (loss weight), the Birch
//! threshold T, and empirical vs scaled-identity covariance.

use datagen::{EmbeddingModel, Profile};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tabledc::{Covariance, Distance, Kernel, TableDc, TableDcConfig};

use crate::report::{render_table, Scores};

use super::RunOptions;

/// A one-dimensional hyper-parameter sweep result.
pub struct SweepResult {
    /// Sweep title.
    pub title: String,
    /// `(parameter value label, Scores)`.
    pub rows: Vec<(String, Scores)>,
}

impl SweepResult {
    /// Renders the sweep.
    pub fn render(&self) -> String {
        let headers = vec!["Value".to_string(), "ARI".to_string(), "ACC".to_string()];
        let cells: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|(v, s)| vec![v.clone(), format!("{:.2}", s.ari), format!("{:.2}", s.acc)])
            .collect();
        render_table(&self.title, &headers, &cells)
    }

    /// The best ARI across the sweep.
    pub fn best_ari(&self) -> f64 {
        self.rows.iter().map(|(_, s)| s.ari).fold(f64::NEG_INFINITY, f64::max)
    }
}

fn sweep(
    title: &str,
    opts: RunOptions,
    values: &[(String, TableDcConfig)],
    dataset: &datagen::Dataset,
) -> SweepResult {
    let rows = values
        .iter()
        .map(|(label, config)| {
            let mut rng = StdRng::seed_from_u64(opts.seed + 21);
            let (_, fit) = TableDc::fit(config.clone(), &dataset.x, &mut rng);
            (label.clone(), Scores::evaluate(&fit.labels, &dataset.labels))
        })
        .collect();
    SweepResult { title: title.to_string(), rows }
}

fn base_config(opts: RunOptions, dataset: &datagen::Dataset) -> TableDcConfig {
    opts.budget(dataset.profile.task()).tabledc_config(dataset.k)
}

/// Sweeps the covariance scale δ of Eq. 3 on web tables (SBERT).
pub fn ablate_delta(opts: RunOptions) -> SweepResult {
    let dataset = Profile::WebTables.dataset(EmbeddingModel::Sbert, opts.scale, opts.seed);
    let base = base_config(opts, &dataset);
    let values: Vec<(String, TableDcConfig)> = [0.001, 0.01, 0.1, 1.0]
        .iter()
        .map(|&d| {
            (
                format!("delta={d}"),
                TableDcConfig {
                    distance: Distance::Mahalanobis(Covariance::ScaledIdentity(d)),
                    ..base.clone()
                },
            )
        })
        .collect();
    sweep("Ablation: covariance scale delta (Eq. 3)", opts, &values, &dataset)
}

/// Sweeps the Cauchy γ of Eq. 7 on web tables (SBERT).
pub fn ablate_gamma(opts: RunOptions) -> SweepResult {
    let dataset = Profile::WebTables.dataset(EmbeddingModel::Sbert, opts.scale, opts.seed);
    let base = base_config(opts, &dataset);
    let values: Vec<(String, TableDcConfig)> = [0.25, 0.5, 1.0, 2.0, 4.0]
        .iter()
        .map(|&g| {
            (format!("gamma={g}"), TableDcConfig { kernel: Kernel::Cauchy { gamma: g }, ..base.clone() })
        })
        .collect();
    sweep("Ablation: Cauchy kernel gamma (Eq. 7)", opts, &values, &dataset)
}

/// Sweeps the loss weight α of Eq. 13 on web tables (SBERT).
pub fn ablate_alpha(opts: RunOptions) -> SweepResult {
    let dataset = Profile::WebTables.dataset(EmbeddingModel::Sbert, opts.scale, opts.seed);
    let base = base_config(opts, &dataset);
    let values: Vec<(String, TableDcConfig)> = [0.0, 0.3, 0.6, 0.9, 1.0]
        .iter()
        .map(|&a| (format!("alpha={a}"), TableDcConfig { alpha: a, ..base.clone() }))
        .collect();
    sweep("Ablation: clustering-loss weight alpha (Eq. 13)", opts, &values, &dataset)
}

/// Compares the scaled-identity covariance against empirical (shrunk)
/// covariances on web tables (SBERT).
pub fn ablate_covariance(opts: RunOptions) -> SweepResult {
    let dataset = Profile::WebTables.dataset(EmbeddingModel::Sbert, opts.scale, opts.seed);
    let base = base_config(opts, &dataset);
    let mut values = vec![(
        "scaled identity (0.01)".to_string(),
        TableDcConfig { distance: Distance::PAPER, ..base.clone() },
    )];
    for shrinkage in [0.3, 0.6, 0.9] {
        values.push((
            format!("empirical (shrinkage={shrinkage})"),
            TableDcConfig {
                distance: Distance::Mahalanobis(Covariance::Empirical { shrinkage }),
                ..base.clone()
            },
        ));
    }
    sweep("Ablation: covariance model (Eq. 3 vs empirical)", opts, &values, &dataset)
}

/// Sweeps the Birch radius threshold T (Algorithm 2 / §4.3 grid search)
/// on GeoSet (EmbDi) — entity resolution is where the CF-tree granularity
/// matters most.
pub fn ablate_birch_threshold(opts: RunOptions) -> SweepResult {
    let dataset = Profile::GeoSet.dataset(EmbeddingModel::EmbDi, opts.scale, opts.seed);
    let budget = opts.budget(datagen::Task::EntityResolution);
    let rows = [0.125, 0.25, 0.5, 1.0, 2.0]
        .iter()
        .map(|&t| {
            let mut rng = StdRng::seed_from_u64(opts.seed + 31);
            // Run Birch directly with the fixed threshold (no auto-adjust)
            // and feed its centers into TableDC via the latent space: the
            // cleanest isolation of T is Birch's own clustering quality.
            let birch = clustering::Birch {
                threshold: t,
                auto_threshold: false,
                ..clustering::Birch::new(dataset.k)
            };
            let result = birch.fit(&dataset.x, &mut rng);
            let _ = &budget;
            (format!("T={t}"), Scores::evaluate(&result.labels, &dataset.labels))
        })
        .collect();
    SweepResult { title: "Ablation: Birch threshold T (Algorithm 2)".to_string(), rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg_attr(debug_assertions, ignore = "experiment smoke test; run with --release")]
    fn birch_threshold_sweep_runs() {
        let result = ablate_birch_threshold(RunOptions::quick());
        assert_eq!(result.rows.len(), 5);
        assert!(result.best_ari() > -1.0);
        assert!(result.render().contains("T=0.5"));
    }
}
