//! One module per paper table/figure. Every function takes [`RunOptions`]
//! and returns a printable result, so the `repro` binary, the integration
//! tests, and the criterion benches all drive the same code.

pub mod ablations;
pub mod figures;
pub mod tables;

use datagen::{Scale, Task};

use crate::methods::Budget;

/// Options shared by every experiment.
#[derive(Debug, Clone, Copy)]
pub struct RunOptions {
    /// Workload scale (paper-size or CPU-friendly).
    pub scale: Scale,
    /// Base RNG seed.
    pub seed: u64,
    /// Multiplier on the joint-training epoch count (1.0 = the paper's
    /// §4.3 budget). Lower values trade fidelity for wall-clock.
    pub epoch_factor: f64,
    /// When set, replaces the per-task pretraining epochs — used by smoke
    /// tests, which otherwise inherit the full (expensive) pretraining
    /// budget.
    pub pretrain_override: Option<usize>,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self { scale: Scale::Scaled, seed: 42, epoch_factor: 1.0, pretrain_override: None }
    }
}

impl RunOptions {
    /// A fast configuration for smoke tests.
    pub fn quick() -> Self {
        Self {
            scale: Scale::Scaled,
            seed: 42,
            epoch_factor: 0.15,
            pretrain_override: Some(5),
        }
    }

    /// The per-task training budget under these options.
    pub fn budget(&self, task: Task) -> Budget {
        let mut budget = Budget::for_task(task).scaled(self.epoch_factor);
        if let Some(p) = self.pretrain_override {
            budget.pretrain_epochs = p;
        }
        budget
    }
}
