//! The run ledger: persistent per-run manifests and their comparison.
//!
//! Every `repro` invocation and the quickstart example persist a
//! [`RunManifest`] — config, seed, `TABLEDC_*` environment, git revision,
//! per-epoch metric history, health verdict, and final quality metrics —
//! as `results/runs/<run-id>.json` (directory overridable via
//! `TABLEDC_RUNS_DIR`). The `runs` binary lists, shows, and diffs these
//! manifests; the diff reuses the perf gate's two-sided comparison core
//! ([`compare_rows`]) with quality metrics oriented higher-is-better and
//! the health verdict encoded as a numeric severity rank.

use std::path::PathBuf;

use obs::json::{escape_into, number_into, parse, Json};

use crate::perfdiff::{compare_rows, Better, DiffReport, Tolerance};

/// Environment variable overriding the manifest directory.
pub const RUNS_DIR_ENV: &str = "TABLEDC_RUNS_DIR";

/// Default manifest directory, relative to the working directory.
pub const DEFAULT_RUNS_DIR: &str = "results/runs";

/// Absolute floor for quality-metric deltas in [`diff_manifests`]: a
/// metric must drop by more than this *and* by more than the ratio to
/// count as a regression (ACC/ARI/NMI all live in [-1, 1], so 0.05 is a
/// five-point swing).
pub const METRIC_FLOOR: f64 = 0.05;

/// Absolute floor for the health-rank row: any verdict step
/// (healthy → warned → aborted) exceeds it.
pub const HEALTH_FLOOR: f64 = 0.5;

/// Health outcome of a run, as persisted in the manifest.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthSummary {
    /// Policy the run was checked under (`off`/`warn`/`strict`).
    pub policy: String,
    /// Verdict (`healthy`/`warned`/`aborted`).
    pub verdict: String,
    /// Total violations detected.
    pub violations: u64,
    /// Diagnostic dump path, when the run aborted.
    pub dump_path: Option<String>,
}

impl HealthSummary {
    /// Summary of an [`obs::HealthReport`].
    pub fn from_report(report: &obs::HealthReport) -> Self {
        Self {
            policy: report.policy.as_str().to_string(),
            verdict: report.verdict.as_str().to_string(),
            violations: report.total_violations,
            dump_path: report.dump_path.clone(),
        }
    }

    /// Severity rank mirroring [`obs::health::Verdict::rank`]; unknown
    /// verdict strings rank as aborted so a corrupt manifest never hides a
    /// regression.
    pub fn rank(&self) -> f64 {
        match self.verdict.as_str() {
            "healthy" => 0.0,
            "warned" => 1.0,
            _ => 2.0,
        }
    }
}

impl Default for HealthSummary {
    fn default() -> Self {
        Self {
            policy: "warn".to_string(),
            verdict: "healthy".to_string(),
            violations: 0,
            dump_path: None,
        }
    }
}

/// Structural convergence verdict of a run, as persisted in the manifest.
///
/// Optional in the schema so manifests written before the diagnostics
/// layer still parse (they load as `None`).
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergenceSummary {
    /// Verdict (`converged`/`oscillating`/`stalled`/`collapsed`/`unknown`).
    pub status: String,
    /// Epoch the deciding rule first fired at, when one did.
    pub epoch: Option<u64>,
    /// Human-readable statement of the deciding rule.
    pub rule: String,
}

impl ConvergenceSummary {
    /// Summary of a [`tabledc::ConvergenceVerdict`].
    pub fn from_verdict(v: &tabledc::ConvergenceVerdict) -> Self {
        Self {
            status: v.status.as_str().to_string(),
            epoch: v.epoch.map(|e| e as u64),
            rule: v.rule.clone(),
        }
    }
}

/// Per-epoch metric series persisted in the manifest.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LedgerHistory {
    /// Reconstruction loss per epoch.
    pub re_loss: Vec<f64>,
    /// Clustering loss `KL(p‖m)` per epoch.
    pub ce_loss: Vec<f64>,
    /// Reported divergence `KL(p‖q)` per epoch.
    pub kl_pq: Vec<f64>,
    /// Global gradient norm per epoch.
    pub grad_norm: Vec<f64>,
    /// Update-to-parameter-norm ratio per epoch.
    pub update_ratio: Vec<f64>,
    /// Wall milliseconds per epoch.
    pub epoch_ms: Vec<f64>,
    /// Normalized cluster-share entropy per epoch.
    pub share_entropy: Vec<f64>,
    /// Smallest cluster share per epoch.
    pub min_share: Vec<f64>,
    /// Largest cluster share per epoch (collapse detector).
    pub max_share: Vec<f64>,
    /// Fraction of rows whose hard label changed vs the previous epoch.
    pub delta_label_frac: Vec<f64>,
    /// Mean `top1 − top2` assignment margin per epoch.
    pub mean_margin: Vec<f64>,
    /// Mean L2 centroid step vs the previous epoch.
    pub centroid_drift: Vec<f64>,
}

impl LedgerHistory {
    /// Builds the series from a TableDC training history.
    pub fn from_history(h: &tabledc::History) -> Self {
        Self {
            re_loss: h.re_loss.clone(),
            ce_loss: h.ce_loss.clone(),
            kl_pq: h.kl_pq.clone(),
            grad_norm: h.grad_norm.clone(),
            update_ratio: h.update_ratio.clone(),
            epoch_ms: h.epoch_ms.clone(),
            share_entropy: h.share_entropy.clone(),
            min_share: h.min_share.clone(),
            max_share: h.max_share.clone(),
            delta_label_frac: h.delta_label_frac.clone(),
            mean_margin: h.mean_margin.clone(),
            centroid_drift: h.centroid_drift.clone(),
        }
    }

    /// Every persisted series, in manifest order. Public so the HTML
    /// report renders one sparkline per entry without naming them twice.
    pub fn series(&self) -> [(&'static str, &Vec<f64>); 12] {
        [
            ("re_loss", &self.re_loss),
            ("ce_loss", &self.ce_loss),
            ("kl_pq", &self.kl_pq),
            ("grad_norm", &self.grad_norm),
            ("update_ratio", &self.update_ratio),
            ("epoch_ms", &self.epoch_ms),
            ("share_entropy", &self.share_entropy),
            ("min_share", &self.min_share),
            ("max_share", &self.max_share),
            ("delta_label_frac", &self.delta_label_frac),
            ("mean_margin", &self.mean_margin),
            ("centroid_drift", &self.centroid_drift),
        ]
    }
}

/// One persisted run: everything needed to identify, reproduce, and
/// compare it.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Unique id, also the file stem (`<command>-<unix-ms>-<pid>`).
    pub run_id: String,
    /// What produced the run (`repro table2`, `quickstart`, …).
    pub command: String,
    /// Creation time, milliseconds since the Unix epoch.
    pub created_unix_ms: u64,
    /// `git describe --always --dirty` output, or `"unknown"`.
    pub git: String,
    /// Base RNG seed.
    pub seed: u64,
    /// Dataset scale description.
    pub scale: String,
    /// Epoch multiplier.
    pub epoch_factor: f64,
    /// All `TABLEDC_*` environment overrides active during the run.
    pub env: Vec<(String, String)>,
    /// Health outcome.
    pub health: HealthSummary,
    /// Structural convergence verdict (`None` for manifests written
    /// before the diagnostics layer existed).
    pub convergence: Option<ConvergenceSummary>,
    /// Final quality metrics, keyed `dataset/method/metric`-style by the
    /// producer (compared higher-is-better by [`diff_manifests`]).
    pub metrics: Vec<(String, f64)>,
    /// Per-epoch metric history.
    pub history: LedgerHistory,
}

impl RunManifest {
    /// Creates a manifest shell stamped with the current time, process,
    /// git revision, and `TABLEDC_*` environment.
    pub fn new(command: &str) -> Self {
        let created_unix_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map_or(0, |d| d.as_millis() as u64);
        let slug: String = command
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect();
        let mut env: Vec<(String, String)> =
            std::env::vars().filter(|(k, _)| k.starts_with("TABLEDC_")).collect();
        env.sort();
        Self {
            run_id: format!("{slug}-{created_unix_ms}-{}", std::process::id()),
            command: command.to_string(),
            created_unix_ms,
            git: git_describe(),
            seed: 0,
            scale: String::new(),
            epoch_factor: 1.0,
            env,
            health: HealthSummary::default(),
            convergence: None,
            metrics: Vec::new(),
            history: LedgerHistory::default(),
        }
    }

    /// Serializes the manifest as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n  \"run_id\": ");
        escape_into(&mut out, &self.run_id);
        out.push_str(",\n  \"command\": ");
        escape_into(&mut out, &self.command);
        out.push_str(&format!(",\n  \"created_unix_ms\": {},\n  \"git\": ", self.created_unix_ms));
        escape_into(&mut out, &self.git);
        out.push_str(&format!(",\n  \"seed\": {},\n  \"scale\": ", self.seed));
        escape_into(&mut out, &self.scale);
        out.push_str(",\n  \"epoch_factor\": ");
        number_into(&mut out, self.epoch_factor);
        out.push_str(",\n  \"env\": {");
        for (i, (k, v)) in self.env.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            escape_into(&mut out, k);
            out.push_str(": ");
            escape_into(&mut out, v);
        }
        out.push_str("},\n  \"health\": {\"policy\": ");
        escape_into(&mut out, &self.health.policy);
        out.push_str(", \"verdict\": ");
        escape_into(&mut out, &self.health.verdict);
        out.push_str(&format!(", \"violations\": {}, \"dump_path\": ", self.health.violations));
        match &self.health.dump_path {
            Some(p) => escape_into(&mut out, p),
            None => out.push_str("null"),
        }
        out.push('}');
        if let Some(c) = &self.convergence {
            out.push_str(",\n  \"convergence\": {\"status\": ");
            escape_into(&mut out, &c.status);
            out.push_str(", \"epoch\": ");
            match c.epoch {
                Some(e) => out.push_str(&e.to_string()),
                None => out.push_str("null"),
            }
            out.push_str(", \"rule\": ");
            escape_into(&mut out, &c.rule);
            out.push('}');
        }
        out.push_str(",\n  \"metrics\": {");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str("\n    ");
            escape_into(&mut out, k);
            out.push_str(": ");
            number_into(&mut out, *v);
        }
        out.push_str("\n  },\n  \"history\": {");
        for (i, (name, values)) in self.history.series().iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str("\n    ");
            escape_into(&mut out, name);
            out.push_str(": [");
            for (j, v) in values.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                number_into(&mut out, *v);
            }
            out.push(']');
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Parses a manifest from JSON text.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = parse(text.trim())?;
        let str_field = |key: &str| -> Result<String, String> {
            v.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("manifest missing string field {key:?}"))
        };
        let num_field = |key: &str| -> Result<f64, String> {
            v.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("manifest missing numeric field {key:?}"))
        };
        let mut env = Vec::new();
        if let Some(Json::Obj(pairs)) = v.get("env") {
            for (k, val) in pairs {
                if let Some(s) = val.as_str() {
                    env.push((k.clone(), s.to_string()));
                }
            }
        }
        let health = match v.get("health") {
            Some(h) => HealthSummary {
                policy: h.get("policy").and_then(Json::as_str).unwrap_or("warn").to_string(),
                verdict: h.get("verdict").and_then(Json::as_str).unwrap_or("healthy").to_string(),
                violations: h.get("violations").and_then(Json::as_f64).unwrap_or(0.0) as u64,
                dump_path: h.get("dump_path").and_then(Json::as_str).map(str::to_string),
            },
            None => return Err("manifest missing \"health\" object".to_string()),
        };
        let convergence = v.get("convergence").map(|c| ConvergenceSummary {
            status: c.get("status").and_then(Json::as_str).unwrap_or("unknown").to_string(),
            epoch: c.get("epoch").and_then(Json::as_f64).map(|e| e as u64),
            rule: c.get("rule").and_then(Json::as_str).unwrap_or_default().to_string(),
        });
        let mut metrics = Vec::new();
        match v.get("metrics") {
            Some(Json::Obj(pairs)) => {
                for (k, val) in pairs {
                    match val.as_f64() {
                        Some(f) => metrics.push((k.clone(), f)),
                        None => return Err(format!("metric {k:?} is not numeric")),
                    }
                }
            }
            _ => return Err("manifest missing \"metrics\" object".to_string()),
        }
        let series = |name: &str| -> Vec<f64> {
            match v.get("history").and_then(|h| h.get(name)) {
                Some(Json::Arr(items)) => {
                    items.iter().filter_map(Json::as_f64).collect()
                }
                _ => Vec::new(),
            }
        };
        Ok(Self {
            run_id: str_field("run_id")?,
            command: str_field("command")?,
            created_unix_ms: num_field("created_unix_ms")? as u64,
            git: str_field("git")?,
            seed: num_field("seed")? as u64,
            scale: str_field("scale")?,
            epoch_factor: num_field("epoch_factor")?,
            env,
            health,
            convergence,
            metrics,
            history: LedgerHistory {
                re_loss: series("re_loss"),
                ce_loss: series("ce_loss"),
                kl_pq: series("kl_pq"),
                grad_norm: series("grad_norm"),
                update_ratio: series("update_ratio"),
                epoch_ms: series("epoch_ms"),
                share_entropy: series("share_entropy"),
                min_share: series("min_share"),
                max_share: series("max_share"),
                delta_label_frac: series("delta_label_frac"),
                mean_margin: series("mean_margin"),
                centroid_drift: series("centroid_drift"),
            },
        })
    }

    /// Writes the manifest into the runs directory as
    /// `<run_id>.json`, creating the directory if needed. Returns the path.
    pub fn write(&self) -> Result<String, String> {
        let dir = runs_dir();
        std::fs::create_dir_all(&dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        let path = dir.join(format!("{}.json", self.run_id));
        std::fs::write(&path, self.to_json())
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        Ok(path.to_string_lossy().into_owned())
    }

    /// Loads a manifest from a file path.
    pub fn load(path: &str) -> Result<Self, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        Self::from_json(&text).map_err(|e| format!("{path}: {e}"))
    }

    /// One-line summary for `runs list`.
    pub fn summary_line(&self) -> String {
        format!(
            "{:<40} {:<10} {:<8} {:>3} metrics  git {}",
            self.run_id,
            self.command,
            self.health.verdict,
            self.metrics.len(),
            self.git
        )
    }
}

/// The manifest directory: `TABLEDC_RUNS_DIR` or `results/runs`.
pub fn runs_dir() -> PathBuf {
    match std::env::var(RUNS_DIR_ENV) {
        Ok(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => PathBuf::from(DEFAULT_RUNS_DIR),
    }
}

/// `git describe --always --dirty`, or `"unknown"` outside a repository.
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Compares two manifests: quality metrics higher-is-better under the
/// two-sided test (`tol.ratio` + [`METRIC_FLOOR`]), and the health verdict
/// as a lower-is-better severity rank — so `healthy → warned/aborted` or a
/// metric drop both count as regressions. Wall-time style rows are *not*
/// compared here; that is the perf gate's job.
pub fn diff_manifests(base: &RunManifest, cand: &RunManifest, tol: &Tolerance) -> DiffReport {
    let mut out = DiffReport::default();
    compare_rows(&mut out, "metric", &base.metrics, &cand.metrics, tol, METRIC_FLOOR, Better::Higher);
    let base_health = vec![("health.rank".to_string(), base.health.rank())];
    let cand_health = vec![("health.rank".to_string(), cand.health.rank())];
    compare_rows(&mut out, "health", &base_health, &cand_health, tol, HEALTH_FLOOR, Better::Lower);
    if base.health.verdict != cand.health.verdict {
        out.notes.push(format!(
            "health verdict changed: {} -> {}",
            base.health.verdict, cand.health.verdict
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest(acc: f64, ari: f64, verdict: &str) -> RunManifest {
        RunManifest {
            run_id: "test-1-1".to_string(),
            command: "quickstart".to_string(),
            created_unix_ms: 1,
            git: "abc123".to_string(),
            seed: 42,
            scale: "Scaled".to_string(),
            epoch_factor: 1.0,
            env: vec![("TABLEDC_HEALTH".to_string(), "strict".to_string())],
            health: HealthSummary {
                policy: "strict".to_string(),
                verdict: verdict.to_string(),
                violations: u64::from(verdict != "healthy"),
                dump_path: None,
            },
            convergence: Some(ConvergenceSummary {
                status: "converged".to_string(),
                epoch: Some(1),
                rule: "label churn <= 0.010 over the last 10 epochs".to_string(),
            }),
            metrics: vec![("tabledc/acc".to_string(), acc), ("tabledc/ari".to_string(), ari)],
            history: LedgerHistory {
                re_loss: vec![1.0, 0.5],
                ce_loss: vec![0.2, 0.1],
                kl_pq: vec![0.3, 0.2],
                grad_norm: vec![2.0, 1.5],
                update_ratio: vec![1e-3, 8e-4],
                epoch_ms: vec![10.0, 9.0],
                share_entropy: vec![0.9, 0.95],
                min_share: vec![0.2, 0.3],
                max_share: vec![0.8, 0.7],
                delta_label_frac: vec![1.0, 0.0],
                mean_margin: vec![0.4, 0.5],
                centroid_drift: vec![0.0, 0.1],
            },
        }
    }

    #[test]
    fn manifest_round_trips_through_json() {
        let m = manifest(0.9, 0.8, "healthy");
        let text = m.to_json();
        let back = RunManifest::from_json(&text).expect("round trip parses");
        assert_eq!(m, back);
    }

    #[test]
    fn diff_against_self_has_no_regressions() {
        let m = manifest(0.9, 0.8, "healthy");
        let d = diff_manifests(&m, &m, &Tolerance::default());
        assert!(!d.has_regressions(), "{:?}", d.regressions);
        assert_eq!(d.compared, 3, "two metrics + health rank");
    }

    #[test]
    fn metric_drop_is_a_regression_and_gain_is_not() {
        let base = manifest(0.9, 0.8, "healthy");
        let worse = manifest(0.9, 0.4, "healthy");
        let d = diff_manifests(&base, &worse, &Tolerance::default());
        assert!(d.has_regressions());
        assert_eq!(d.regressions[0].name, "tabledc/ari");

        let better = manifest(0.95, 0.9, "healthy");
        let d = diff_manifests(&base, &better, &Tolerance::default());
        assert!(!d.has_regressions());
    }

    #[test]
    fn tiny_metric_jitter_is_not_a_regression() {
        let base = manifest(0.9, 0.8, "healthy");
        let jitter = manifest(0.88, 0.79, "healthy");
        let d = diff_manifests(&base, &jitter, &Tolerance::default());
        assert!(!d.has_regressions(), "{:?}", d.regressions);
    }

    #[test]
    fn health_verdict_regression_is_flagged() {
        let base = manifest(0.9, 0.8, "healthy");
        let aborted = manifest(0.9, 0.8, "aborted");
        let d = diff_manifests(&base, &aborted, &Tolerance::default());
        assert!(d.has_regressions());
        assert!(d.regressions.iter().any(|r| r.name == "health.rank"));
        assert!(d.notes.iter().any(|n| n.contains("verdict changed")));
        // Recovering from aborted to healthy is an improvement, not a
        // regression.
        let d = diff_manifests(&aborted, &base, &Tolerance::default());
        assert!(!d.has_regressions());
    }

    #[test]
    fn from_json_rejects_missing_sections() {
        assert!(RunManifest::from_json("{}").is_err());
        assert!(RunManifest::from_json("not json").is_err());
        let no_metrics = r#"{"run_id":"a","command":"c","created_unix_ms":1,"git":"g",
            "seed":1,"scale":"s","epoch_factor":1.0,"env":{},
            "health":{"policy":"warn","verdict":"healthy","violations":0,"dump_path":null}}"#;
        assert!(RunManifest::from_json(no_metrics).is_err());
    }

    #[test]
    fn manifest_without_convergence_still_parses() {
        // Manifests written before the diagnostics layer carry no
        // "convergence" object; they must load as None, not error.
        let mut m = manifest(0.9, 0.8, "healthy");
        m.convergence = None;
        let text = m.to_json();
        assert!(!text.contains("\"convergence\""));
        let back = RunManifest::from_json(&text).expect("legacy manifest parses");
        assert_eq!(back.convergence, None);
        assert_eq!(m, back);
    }

    #[test]
    fn convergence_epoch_null_round_trips() {
        let mut m = manifest(0.9, 0.8, "healthy");
        m.convergence = Some(ConvergenceSummary {
            status: "stalled".to_string(),
            epoch: None,
            rule: "no rule fired".to_string(),
        });
        let back = RunManifest::from_json(&m.to_json()).expect("round trip parses");
        assert_eq!(m, back);
    }

    #[test]
    fn convergence_summary_mirrors_verdict() {
        let v = tabledc::ConvergenceVerdict {
            status: tabledc::ConvergenceStatus::Collapsed,
            epoch: Some(3),
            rule: "max share >= 0.90".to_string(),
        };
        let s = ConvergenceSummary::from_verdict(&v);
        assert_eq!(s.status, "collapsed");
        assert_eq!(s.epoch, Some(3));
        assert_eq!(s.rule, "max share >= 0.90");
    }

    #[test]
    fn new_manifest_captures_tabledc_env() {
        let m = RunManifest::new("unit test");
        assert!(m.run_id.starts_with("unit-test-"));
        assert!(m.env.iter().all(|(k, _)| k.starts_with("TABLEDC_")));
    }
}
