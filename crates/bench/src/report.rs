//! Result containers and fixed-width table rendering for the harness.

use clustering::metrics::{accuracy, adjusted_rand_index};

/// ARI + ACC of one labelling against ground truth (§4.2).
#[derive(Debug, Clone, Copy)]
pub struct Scores {
    /// Adjusted Rand Index.
    pub ari: f64,
    /// Clustering accuracy via Hungarian matching.
    pub acc: f64,
}

impl Scores {
    /// Evaluates predicted labels against ground truth.
    pub fn evaluate(pred: &[usize], truth: &[usize]) -> Self {
        Self { ari: adjusted_rand_index(pred, truth), acc: accuracy(pred, truth) }
    }

    /// Renders as `ARI/ACC` with two decimals, paper-style.
    pub fn cell(&self) -> String {
        format!("{:>5.2} {:>5.2}", self.ari, self.acc)
    }
}

/// Renders a fixed-width text table.
pub fn render_table(title: &str, headers: &[String], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    out.push_str(&format!("\n== {title} ==\n"));
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(headers, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1))));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scores_perfect_and_mixed() {
        let s = Scores::evaluate(&[0, 0, 1, 1], &[1, 1, 0, 0]);
        assert!((s.ari - 1.0).abs() < 1e-12);
        assert!((s.acc - 1.0).abs() < 1e-12);
        let m = Scores::evaluate(&[0, 1, 0, 1], &[0, 0, 1, 1]);
        assert!(m.ari < 0.5);
    }

    #[test]
    fn table_rendering_aligns_columns() {
        let t = render_table(
            "demo",
            &["Method".to_string(), "ARI".to_string()],
            &[
                vec!["K-means".to_string(), "0.73".to_string()],
                vec!["TableDC".to_string(), "0.88".to_string()],
            ],
        );
        assert!(t.contains("== demo =="));
        assert!(t.contains("K-means"));
        let lines: Vec<&str> = t.lines().filter(|l| l.contains("0.")).collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].len(), lines[1].len());
    }
}
