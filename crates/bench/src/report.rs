//! Result containers, fixed-width table rendering, and the
//! machine-readable `BENCH_repro.json` report for the harness.

use clustering::metrics::{accuracy, adjusted_rand_index};
use obs::json::{escape_into, number_into};

/// ARI + ACC of one labelling against ground truth (§4.2).
#[derive(Debug, Clone, Copy)]
pub struct Scores {
    /// Adjusted Rand Index.
    pub ari: f64,
    /// Clustering accuracy via Hungarian matching.
    pub acc: f64,
}

impl Scores {
    /// Evaluates predicted labels against ground truth.
    pub fn evaluate(pred: &[usize], truth: &[usize]) -> Self {
        Self { ari: adjusted_rand_index(pred, truth), acc: accuracy(pred, truth) }
    }

    /// Renders as `ARI/ACC` with two decimals, paper-style.
    pub fn cell(&self) -> String {
        format!("{:>5.2} {:>5.2}", self.ari, self.acc)
    }
}

/// Renders a fixed-width text table.
pub fn render_table(title: &str, headers: &[String], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(String::len).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    out.push_str(&format!("\n== {title} ==\n"));
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(headers, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1))));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// One method × dataset×representation outcome, flattened for
/// `BENCH_repro.json`. `status` is `"ok"` or `"panicked"`; scores and
/// seconds are absent when the method did not finish.
#[derive(Debug, Clone)]
pub struct MethodRecord {
    /// Experiment title (e.g. the table name).
    pub experiment: String,
    /// `profile/representation` column label.
    pub dataset: String,
    /// Method display name.
    pub method: String,
    /// `"ok"` or `"panicked"`.
    pub status: String,
    /// Adjusted Rand Index, when the method finished.
    pub ari: Option<f64>,
    /// Clustering accuracy, when the method finished.
    pub acc: Option<f64>,
    /// Wall-clock seconds of the method run.
    pub secs: Option<f64>,
    /// Panic message, when `status == "panicked"`.
    pub error: Option<String>,
}

/// Outcome of one `repro` experiment (a whole table/figure/ablation).
#[derive(Debug, Clone)]
pub struct ExperimentOutcome {
    /// Command name (`table2`, `fig3`, …).
    pub name: String,
    /// Wall-clock seconds including dataset generation.
    pub secs: f64,
    /// `"ok"` or `"panicked"`.
    pub status: String,
    /// Panic message, when `status == "panicked"`.
    pub error: Option<String>,
}

/// Per-span-name profile aggregate carried in `BENCH_repro.json` — the
/// rows `perfdiff` compares across runs.
#[derive(Debug, Clone)]
pub struct PhaseProfile {
    /// Span name (`tabledc.fit`, `kmeans.assign`, …).
    pub name: String,
    /// Completed activations across the run.
    pub calls: u64,
    /// Summed wall milliseconds (nested same-name spans double count).
    pub total_ms: f64,
    /// Summed self milliseconds (disjoint across the span tree).
    pub self_ms: f64,
    /// Attributed allocation bytes (0 unless `TABLEDC_PROFILE=alloc`).
    pub alloc_bytes: u64,
}

impl PhaseProfile {
    /// Snapshot of the current process-wide span tree, one entry per span
    /// name, sorted by name.
    pub fn collect() -> Vec<PhaseProfile> {
        obs::profile::aggregate()
            .into_iter()
            .map(|(name, t)| PhaseProfile {
                name,
                calls: t.calls,
                total_ms: t.total_ms,
                self_ms: t.self_ms,
                alloc_bytes: t.alloc_bytes,
            })
            .collect()
    }
}

/// The machine-readable run report the `repro` binary always writes,
/// even when individual methods or experiments panic.
#[derive(Debug, Clone, Default)]
pub struct ReproReport {
    /// Dataset scale (`"Scaled"` or `"Paper"`).
    pub scale: String,
    /// Base RNG seed.
    pub seed: u64,
    /// Epoch multiplier.
    pub epoch_factor: f64,
    /// One entry per experiment run.
    pub experiments: Vec<ExperimentOutcome>,
    /// One entry per method × dataset cell of the comparison tables.
    pub methods: Vec<MethodRecord>,
    /// Per-phase span-tree aggregates for the whole run.
    pub profile: Vec<PhaseProfile>,
}

fn json_opt_f64(out: &mut String, v: Option<f64>) {
    match v {
        Some(v) => number_into(out, v),
        None => out.push_str("null"),
    }
}

fn json_opt_str(out: &mut String, v: &Option<String>) {
    match v {
        Some(s) => escape_into(out, s),
        None => out.push_str("null"),
    }
}

impl ReproReport {
    /// True when any experiment or any method run panicked.
    pub fn any_failed(&self) -> bool {
        self.experiments.iter().any(|e| e.status != "ok")
            || self.methods.iter().any(|m| m.status != "ok")
    }

    /// Serializes the report as a single JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\"scale\":");
        escape_into(&mut out, &self.scale);
        out.push_str(&format!(",\"seed\":{},\"epoch_factor\":", self.seed));
        number_into(&mut out, self.epoch_factor);
        out.push_str(",\"experiments\":[");
        for (i, e) in self.experiments.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            escape_into(&mut out, &e.name);
            out.push_str(",\"secs\":");
            number_into(&mut out, e.secs);
            out.push_str(",\"status\":");
            escape_into(&mut out, &e.status);
            out.push_str(",\"error\":");
            json_opt_str(&mut out, &e.error);
            out.push('}');
        }
        out.push_str("],\"methods\":[");
        for (i, m) in self.methods.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"experiment\":");
            escape_into(&mut out, &m.experiment);
            out.push_str(",\"dataset\":");
            escape_into(&mut out, &m.dataset);
            out.push_str(",\"method\":");
            escape_into(&mut out, &m.method);
            out.push_str(",\"status\":");
            escape_into(&mut out, &m.status);
            out.push_str(",\"ari\":");
            json_opt_f64(&mut out, m.ari);
            out.push_str(",\"acc\":");
            json_opt_f64(&mut out, m.acc);
            out.push_str(",\"secs\":");
            json_opt_f64(&mut out, m.secs);
            out.push_str(",\"error\":");
            json_opt_str(&mut out, &m.error);
            out.push('}');
        }
        out.push_str("],\"profile\":[");
        for (i, p) in self.profile.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            escape_into(&mut out, &p.name);
            out.push_str(&format!(",\"calls\":{},\"total_ms\":", p.calls));
            number_into(&mut out, p.total_ms);
            out.push_str(",\"self_ms\":");
            number_into(&mut out, p.self_ms);
            out.push_str(&format!(",\"alloc_bytes\":{}", p.alloc_bytes));
            out.push('}');
        }
        out.push_str("]}");
        out
    }

    /// Writes `to_json` (plus a trailing newline) to `path`.
    pub fn write(&self, path: &str) -> std::io::Result<()> {
        std::fs::write(path, self.to_json() + "\n")
    }
}

/// Best-effort extraction of a panic payload's message.
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scores_perfect_and_mixed() {
        let s = Scores::evaluate(&[0, 0, 1, 1], &[1, 1, 0, 0]);
        assert!((s.ari - 1.0).abs() < 1e-12);
        assert!((s.acc - 1.0).abs() < 1e-12);
        let m = Scores::evaluate(&[0, 1, 0, 1], &[0, 0, 1, 1]);
        assert!(m.ari < 0.5);
    }

    #[test]
    fn repro_report_json_round_trips() {
        let report = ReproReport {
            scale: "Scaled".into(),
            seed: 42,
            epoch_factor: 1.0,
            experiments: vec![ExperimentOutcome {
                name: "table2".into(),
                secs: 1.5,
                status: "ok".into(),
                error: None,
            }],
            methods: vec![
                MethodRecord {
                    experiment: "table2".into(),
                    dataset: "tus/sbert".into(),
                    method: "K-means".into(),
                    status: "ok".into(),
                    ari: Some(0.75),
                    acc: Some(0.8),
                    secs: Some(0.01),
                    error: None,
                },
                MethodRecord {
                    experiment: "table2".into(),
                    dataset: "tus/sbert".into(),
                    method: "SDCN".into(),
                    status: "panicked".into(),
                    ari: None,
                    acc: None,
                    secs: None,
                    error: Some("boom \"quoted\"".into()),
                },
            ],
            profile: vec![PhaseProfile {
                name: "tabledc.fit".into(),
                calls: 3,
                total_ms: 120.5,
                self_ms: 10.25,
                alloc_bytes: 4096,
            }],
        };
        assert!(report.any_failed());
        let parsed = obs::json::parse(&report.to_json()).expect("valid JSON");
        assert_eq!(parsed.get("scale").and_then(|v| v.as_str()), Some("Scaled"));
        assert_eq!(parsed.get("seed").and_then(|v| v.as_f64()), Some(42.0));
        let methods = match parsed.get("methods") {
            Some(obs::json::Json::Arr(a)) => a,
            other => panic!("methods not an array: {other:?}"),
        };
        assert_eq!(methods.len(), 2);
        assert_eq!(methods[0].get("ari").and_then(|v| v.as_f64()), Some(0.75));
        assert_eq!(
            methods[1].get("error").and_then(|v| v.as_str()),
            Some("boom \"quoted\"")
        );
        assert!(matches!(methods[1].get("ari"), Some(obs::json::Json::Null)));
        let profile = match parsed.get("profile") {
            Some(obs::json::Json::Arr(a)) => a,
            other => panic!("profile not an array: {other:?}"),
        };
        assert_eq!(profile.len(), 1);
        assert_eq!(profile[0].get("name").and_then(|v| v.as_str()), Some("tabledc.fit"));
        assert_eq!(profile[0].get("calls").and_then(|v| v.as_f64()), Some(3.0));
        assert_eq!(profile[0].get("self_ms").and_then(|v| v.as_f64()), Some(10.25));
        assert_eq!(profile[0].get("alloc_bytes").and_then(|v| v.as_f64()), Some(4096.0));
    }

    #[test]
    fn panic_message_extracts_str_and_string() {
        let p = std::panic::catch_unwind(|| panic!("static message")).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "static message");
        let p = std::panic::catch_unwind(|| panic!("formatted {}", 7)).unwrap_err();
        assert_eq!(panic_message(p.as_ref()), "formatted 7");
    }

    #[test]
    fn table_rendering_aligns_columns() {
        let t = render_table(
            "demo",
            &["Method".to_string(), "ARI".to_string()],
            &[
                vec!["K-means".to_string(), "0.73".to_string()],
                vec!["TableDC".to_string(), "0.88".to_string()],
            ],
        );
        assert!(t.contains("== demo =="));
        assert!(t.contains("K-means"));
        let lines: Vec<&str> = t.lines().filter(|l| l.contains("0.")).collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(lines[0].len(), lines[1].len());
    }
}
