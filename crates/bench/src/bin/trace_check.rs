//! `trace_check` — validates a JSON-lines trace produced by
//! `TABLEDC_TRACE=<file>`.
//!
//! ```text
//! cargo run -p bench --bin trace_check -- <trace-file> [required-event ...]
//! ```
//!
//! Checks, in order of discovery per line:
//!
//! * every non-empty line parses as a JSON object with a finite,
//!   nonnegative numeric `ts_ms` and a non-empty string `event`;
//! * `ts_ms` is monotonically non-decreasing across the whole file —
//!   timestamps are stamped under the sink lock, so any decrease means
//!   the trace was corrupted or interleaved from two processes;
//! * `span.enter`/`span.exit` events balance per thread: each carries a
//!   `span` name and a `thread` id, exits must match the innermost open
//!   enter on their thread, and every thread's stack must be empty at
//!   end of file;
//! * `nn.grad_norm` events carry finite numeric `epoch`, `global`, and
//!   `update_ratio` fields (the emitter skips non-finite steps, so a
//!   non-finite value in the trace is a bug);
//! * `health.violation` events carry a non-empty string `tensor` and a
//!   numeric `epoch`; `health.abort` must be followed (not necessarily
//!   immediately) by a `health.dump` event whose `path` is a non-empty
//!   string — an abort without its diagnostic dump is a broken contract;
//! * when any line carries a `run_id` it is a non-empty string and every
//!   stamped line agrees on it — two ids in one file means two runs'
//!   traces were interleaved;
//! * per-epoch fit events (`tabledc.epoch`, `tabledc.diag`,
//!   `baseline.epoch`, `baseline.diag`) carry numeric `fit` and `epoch`
//!   ids, and `epoch` is strictly increasing within each `(event, fit)`
//!   stream — the fit id disambiguates restarts, so a repeated or
//!   backwards epoch means a corrupted loop;
//! * `tabledc.diag`/`baseline.diag` events carry the full structural
//!   metric set (`share_entropy`, `min_share`, `max_share`,
//!   `delta_label_frac`, `mean_margin`, `centroid_drift`), all finite,
//!   with the share/fraction metrics in `[0, 1]` and
//!   `min_share <= max_share`; `tabledc.epoch` keeps its
//!   `delta_label_frac` in `[0, 1]` too;
//! * any `required-event` names passed after the file each appear at
//!   least once.
//!
//! The first violation is reported with its line number and the process
//! exits 1; usage errors exit 2. Used by `results/verify.sh` so the
//! trace contract is checked without any external JSON tooling.

use std::collections::{BTreeMap, BTreeSet};

use obs::json::{parse, Json};

fn fail(msg: &str) -> ! {
    eprintln!("trace_check: {msg}");
    std::process::exit(1)
}

/// Per-epoch fit events carry numeric `fit` and `epoch` ids; within one
/// `(event, fit)` stream the epoch must strictly increase. Keying on the
/// fit id keeps the check valid across restarts (a second fit in the same
/// process starts again at epoch 0 under a fresh id).
fn check_fit_epoch(
    value: &Json,
    event: &str,
    n: usize,
    fit_epochs: &mut BTreeMap<(String, u64), (f64, usize)>,
) {
    let fit = value
        .get("fit")
        .and_then(Json::as_f64)
        .unwrap_or_else(|| fail(&format!("line {n}: {event} without numeric fit id")));
    let epoch = value
        .get("epoch")
        .and_then(Json::as_f64)
        .unwrap_or_else(|| fail(&format!("line {n}: {event} without numeric epoch")));
    if !epoch.is_finite() || epoch < 0.0 {
        fail(&format!("line {n}: {event} epoch = {epoch} is not a finite nonnegative number"));
    }
    let key = (event.to_string(), fit as u64);
    if let Some((prev, prev_line)) = fit_epochs.get(&key) {
        if epoch <= *prev {
            fail(&format!(
                "line {n}: {event} epoch {epoch} does not increase past {prev} \
                 (line {prev_line}) within fit {}",
                fit as u64
            ));
        }
    }
    fit_epochs.insert(key, (epoch, n));
}

/// Structural metrics every diagnostics event must carry, with their
/// range invariants: shares and label churn are fractions, entropy is
/// normalized, and the extreme shares must be ordered.
fn check_diag_metrics(value: &Json, event: &str, n: usize) {
    let metric = |key: &str| -> f64 {
        let v = value
            .get(key)
            .and_then(Json::as_f64)
            .unwrap_or_else(|| fail(&format!("line {n}: {event} without numeric {key}")));
        if !v.is_finite() {
            fail(&format!("line {n}: {event} {key} = {v} is not finite"));
        }
        v
    };
    let share_entropy = metric("share_entropy");
    let min_share = metric("min_share");
    let max_share = metric("max_share");
    let delta_label_frac = metric("delta_label_frac");
    metric("mean_margin");
    metric("centroid_drift");
    for (key, v) in [
        ("share_entropy", share_entropy),
        ("min_share", min_share),
        ("max_share", max_share),
        ("delta_label_frac", delta_label_frac),
    ] {
        if !(0.0..=1.0).contains(&v) {
            fail(&format!("line {n}: {event} {key} = {v} outside [0, 1]"));
        }
    }
    if min_share > max_share {
        fail(&format!(
            "line {n}: {event} min_share {min_share} exceeds max_share {max_share}"
        ));
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let path = args.next().unwrap_or_else(|| {
        eprintln!("usage: trace_check <trace-file> [required-event ...]");
        std::process::exit(2)
    });
    let required: Vec<String> = args.collect();

    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));

    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut events = 0usize;
    let mut spans = 0usize;
    let mut last_ts = f64::NEG_INFINITY;
    let mut last_ts_line = 0usize;
    // Per-thread stack of currently open span names.
    let mut open: BTreeMap<u64, Vec<(String, usize)>> = BTreeMap::new();
    // Line of the last health.abort not yet answered by a health.dump.
    let mut pending_abort: Option<usize> = None;
    // First run_id stamped in the file, with its line number.
    let mut run_id: Option<(String, usize)> = None;
    // Last epoch seen per (event, fit) stream of per-epoch fit events.
    let mut fit_epochs: BTreeMap<(String, u64), (f64, usize)> = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let n = lineno + 1;
        let value =
            parse(line).unwrap_or_else(|e| fail(&format!("line {n}: invalid JSON: {e}")));
        if !matches!(value, Json::Obj(_)) {
            fail(&format!("line {n}: not a JSON object"));
        }
        let ts = value
            .get("ts_ms")
            .and_then(Json::as_f64)
            .unwrap_or_else(|| fail(&format!("line {n}: missing numeric ts_ms")));
        if !ts.is_finite() || ts < 0.0 {
            fail(&format!("line {n}: ts_ms = {ts} is not a finite nonnegative number"));
        }
        if ts < last_ts {
            fail(&format!(
                "line {n}: ts_ms went backwards ({ts} after {last_ts} on line {last_ts_line})"
            ));
        }
        last_ts = ts;
        last_ts_line = n;
        let event = value
            .get("event")
            .and_then(Json::as_str)
            .unwrap_or_else(|| fail(&format!("line {n}: missing string event")));
        if event.is_empty() {
            fail(&format!("line {n}: empty event name"));
        }
        if let Some(id) = value.get("run_id") {
            let id = id
                .as_str()
                .unwrap_or_else(|| fail(&format!("line {n}: run_id is not a string")));
            if id.is_empty() {
                fail(&format!("line {n}: empty run_id"));
            }
            match &run_id {
                Some((first, first_line)) if first != id => fail(&format!(
                    "line {n}: run_id {id:?} conflicts with {first:?} from line {first_line}"
                )),
                Some(_) => {}
                None => run_id = Some((id.to_string(), n)),
            }
        }
        if matches!(event, "tabledc.epoch" | "tabledc.diag" | "baseline.epoch" | "baseline.diag") {
            check_fit_epoch(&value, event, n, &mut fit_epochs);
        }
        match event {
            "nn.grad_norm" => {
                for key in ["epoch", "global", "update_ratio"] {
                    let v = value.get(key).and_then(Json::as_f64).unwrap_or_else(|| {
                        fail(&format!("line {n}: nn.grad_norm without numeric {key}"))
                    });
                    if !v.is_finite() {
                        fail(&format!("line {n}: nn.grad_norm {key} = {v} is not finite"));
                    }
                }
            }
            "health.violation" => {
                let tensor = value.get("tensor").and_then(Json::as_str).unwrap_or_else(|| {
                    fail(&format!("line {n}: health.violation without string tensor"))
                });
                if tensor.is_empty() {
                    fail(&format!("line {n}: health.violation with empty tensor"));
                }
                if value.get("epoch").and_then(Json::as_f64).is_none() {
                    fail(&format!("line {n}: health.violation without numeric epoch"));
                }
            }
            "tabledc.diag" | "baseline.diag" => check_diag_metrics(&value, event, n),
            "tabledc.epoch" => {
                let frac =
                    value.get("delta_label_frac").and_then(Json::as_f64).unwrap_or_else(|| {
                        fail(&format!("line {n}: tabledc.epoch without numeric delta_label_frac"))
                    });
                if !(0.0..=1.0).contains(&frac) {
                    fail(&format!(
                        "line {n}: tabledc.epoch delta_label_frac = {frac} outside [0, 1]"
                    ));
                }
            }
            "health.abort" => pending_abort = Some(n),
            "health.dump" => {
                let path = value
                    .get("path")
                    .and_then(Json::as_str)
                    .unwrap_or_else(|| fail(&format!("line {n}: health.dump without string path")));
                if path.is_empty() {
                    fail(&format!("line {n}: health.dump with empty path"));
                }
                pending_abort = None;
            }
            _ => {}
        }
        if event == "span.enter" || event == "span.exit" {
            let span = value
                .get("span")
                .and_then(Json::as_str)
                .unwrap_or_else(|| fail(&format!("line {n}: {event} without string span")));
            let thread = value
                .get("thread")
                .and_then(Json::as_f64)
                .unwrap_or_else(|| fail(&format!("line {n}: {event} without numeric thread")))
                as u64;
            let stack = open.entry(thread).or_default();
            if event == "span.enter" {
                stack.push((span.to_string(), n));
                spans += 1;
            } else {
                match stack.pop() {
                    Some((top, _)) if top == span => {}
                    Some((top, top_line)) => fail(&format!(
                        "line {n}: span.exit {span:?} on thread {thread} but innermost open \
                         span is {top:?} (entered line {top_line})"
                    )),
                    None => fail(&format!(
                        "line {n}: span.exit {span:?} on thread {thread} with no open span"
                    )),
                }
            }
        }
        seen.insert(event.to_string());
        events += 1;
    }

    if events == 0 {
        fail("trace contains no events");
    }
    if let Some(line) = pending_abort {
        fail(&format!(
            "health.abort on line {line} was never followed by a health.dump event"
        ));
    }
    for (thread, stack) in &open {
        if let Some((name, line)) = stack.last() {
            fail(&format!(
                "thread {thread}: span {name:?} entered on line {line} never exited \
                 ({} open at end of trace)",
                stack.len()
            ));
        }
    }
    for name in &required {
        if !seen.contains(name) {
            fail(&format!(
                "required event {name:?} not found (saw: {})",
                seen.iter().cloned().collect::<Vec<_>>().join(", ")
            ));
        }
    }
    println!(
        "trace_check: {} events ({} spans balanced across {} threads), {} distinct kinds, \
         ts_ms monotone through {:.1} — ok",
        events,
        spans,
        open.len(),
        seen.len(),
        last_ts
    );
}
