//! `trace_check` — validates a JSON-lines trace produced by
//! `TABLEDC_TRACE=<file>`.
//!
//! ```text
//! cargo run -p bench --bin trace_check -- <trace-file> [required-event ...]
//! ```
//!
//! Checks, in order of discovery per line:
//!
//! * every non-empty line parses as a JSON object with a finite,
//!   nonnegative numeric `ts_ms` and a non-empty string `event`;
//! * `ts_ms` is monotonically non-decreasing across the whole file —
//!   timestamps are stamped under the sink lock, so any decrease means
//!   the trace was corrupted or interleaved from two processes;
//! * `span.enter`/`span.exit` events balance per thread: each carries a
//!   `span` name and a `thread` id, exits must match the innermost open
//!   enter on their thread, and every thread's stack must be empty at
//!   end of file;
//! * `nn.grad_norm` events carry finite numeric `epoch`, `global`, and
//!   `update_ratio` fields (the emitter skips non-finite steps, so a
//!   non-finite value in the trace is a bug);
//! * `health.violation` events carry a non-empty string `tensor` and a
//!   numeric `epoch`; `health.abort` must be followed (not necessarily
//!   immediately) by a `health.dump` event whose `path` is a non-empty
//!   string — an abort without its diagnostic dump is a broken contract;
//! * any `required-event` names passed after the file each appear at
//!   least once.
//!
//! The first violation is reported with its line number and the process
//! exits 1; usage errors exit 2. Used by `results/verify.sh` so the
//! trace contract is checked without any external JSON tooling.

use std::collections::{BTreeMap, BTreeSet};

use obs::json::{parse, Json};

fn fail(msg: &str) -> ! {
    eprintln!("trace_check: {msg}");
    std::process::exit(1)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let path = args.next().unwrap_or_else(|| {
        eprintln!("usage: trace_check <trace-file> [required-event ...]");
        std::process::exit(2)
    });
    let required: Vec<String> = args.collect();

    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));

    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut events = 0usize;
    let mut spans = 0usize;
    let mut last_ts = f64::NEG_INFINITY;
    let mut last_ts_line = 0usize;
    // Per-thread stack of currently open span names.
    let mut open: BTreeMap<u64, Vec<(String, usize)>> = BTreeMap::new();
    // Line of the last health.abort not yet answered by a health.dump.
    let mut pending_abort: Option<usize> = None;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let n = lineno + 1;
        let value =
            parse(line).unwrap_or_else(|e| fail(&format!("line {n}: invalid JSON: {e}")));
        if !matches!(value, Json::Obj(_)) {
            fail(&format!("line {n}: not a JSON object"));
        }
        let ts = value
            .get("ts_ms")
            .and_then(Json::as_f64)
            .unwrap_or_else(|| fail(&format!("line {n}: missing numeric ts_ms")));
        if !ts.is_finite() || ts < 0.0 {
            fail(&format!("line {n}: ts_ms = {ts} is not a finite nonnegative number"));
        }
        if ts < last_ts {
            fail(&format!(
                "line {n}: ts_ms went backwards ({ts} after {last_ts} on line {last_ts_line})"
            ));
        }
        last_ts = ts;
        last_ts_line = n;
        let event = value
            .get("event")
            .and_then(Json::as_str)
            .unwrap_or_else(|| fail(&format!("line {n}: missing string event")));
        if event.is_empty() {
            fail(&format!("line {n}: empty event name"));
        }
        match event {
            "nn.grad_norm" => {
                for key in ["epoch", "global", "update_ratio"] {
                    let v = value.get(key).and_then(Json::as_f64).unwrap_or_else(|| {
                        fail(&format!("line {n}: nn.grad_norm without numeric {key}"))
                    });
                    if !v.is_finite() {
                        fail(&format!("line {n}: nn.grad_norm {key} = {v} is not finite"));
                    }
                }
            }
            "health.violation" => {
                let tensor = value.get("tensor").and_then(Json::as_str).unwrap_or_else(|| {
                    fail(&format!("line {n}: health.violation without string tensor"))
                });
                if tensor.is_empty() {
                    fail(&format!("line {n}: health.violation with empty tensor"));
                }
                if value.get("epoch").and_then(Json::as_f64).is_none() {
                    fail(&format!("line {n}: health.violation without numeric epoch"));
                }
            }
            "health.abort" => pending_abort = Some(n),
            "health.dump" => {
                let path = value
                    .get("path")
                    .and_then(Json::as_str)
                    .unwrap_or_else(|| fail(&format!("line {n}: health.dump without string path")));
                if path.is_empty() {
                    fail(&format!("line {n}: health.dump with empty path"));
                }
                pending_abort = None;
            }
            _ => {}
        }
        if event == "span.enter" || event == "span.exit" {
            let span = value
                .get("span")
                .and_then(Json::as_str)
                .unwrap_or_else(|| fail(&format!("line {n}: {event} without string span")));
            let thread = value
                .get("thread")
                .and_then(Json::as_f64)
                .unwrap_or_else(|| fail(&format!("line {n}: {event} without numeric thread")))
                as u64;
            let stack = open.entry(thread).or_default();
            if event == "span.enter" {
                stack.push((span.to_string(), n));
                spans += 1;
            } else {
                match stack.pop() {
                    Some((top, _)) if top == span => {}
                    Some((top, top_line)) => fail(&format!(
                        "line {n}: span.exit {span:?} on thread {thread} but innermost open \
                         span is {top:?} (entered line {top_line})"
                    )),
                    None => fail(&format!(
                        "line {n}: span.exit {span:?} on thread {thread} with no open span"
                    )),
                }
            }
        }
        seen.insert(event.to_string());
        events += 1;
    }

    if events == 0 {
        fail("trace contains no events");
    }
    if let Some(line) = pending_abort {
        fail(&format!(
            "health.abort on line {line} was never followed by a health.dump event"
        ));
    }
    for (thread, stack) in &open {
        if let Some((name, line)) = stack.last() {
            fail(&format!(
                "thread {thread}: span {name:?} entered on line {line} never exited \
                 ({} open at end of trace)",
                stack.len()
            ));
        }
    }
    for name in &required {
        if !seen.contains(name) {
            fail(&format!(
                "required event {name:?} not found (saw: {})",
                seen.iter().cloned().collect::<Vec<_>>().join(", ")
            ));
        }
    }
    println!(
        "trace_check: {} events ({} spans balanced across {} threads), {} distinct kinds, \
         ts_ms monotone through {:.1} — ok",
        events,
        spans,
        open.len(),
        seen.len(),
        last_ts
    );
}
