//! `trace_check` — validates a JSON-lines trace produced by
//! `TABLEDC_TRACE=<file>`.
//!
//! ```text
//! cargo run -p bench --bin trace_check -- <trace-file> [required-event ...]
//! ```
//!
//! Every non-empty line must parse as a JSON object with a finite,
//! nonnegative numeric `ts_ms` and a non-empty string `event`. Any
//! `required-event` names passed after the file must each appear at
//! least once. Exits 0 on success, 1 on a malformed or incomplete
//! trace, 2 on usage errors. Used by `results/verify.sh` so the trace
//! contract is checked without any external JSON tooling.

use std::collections::BTreeSet;

use obs::json::{parse, Json};

fn fail(msg: &str) -> ! {
    eprintln!("trace_check: {msg}");
    std::process::exit(1)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let path = args.next().unwrap_or_else(|| {
        eprintln!("usage: trace_check <trace-file> [required-event ...]");
        std::process::exit(2)
    });
    let required: Vec<String> = args.collect();

    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));

    let mut seen: BTreeSet<String> = BTreeSet::new();
    let mut events = 0usize;
    let mut last_ts = f64::NEG_INFINITY;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let n = lineno + 1;
        let value =
            parse(line).unwrap_or_else(|e| fail(&format!("line {n}: invalid JSON: {e}")));
        if !matches!(value, Json::Obj(_)) {
            fail(&format!("line {n}: not a JSON object"));
        }
        let ts = value
            .get("ts_ms")
            .and_then(Json::as_f64)
            .unwrap_or_else(|| fail(&format!("line {n}: missing numeric ts_ms")));
        if !ts.is_finite() || ts < 0.0 {
            fail(&format!("line {n}: ts_ms = {ts} is not a finite nonnegative number"));
        }
        let event = value
            .get("event")
            .and_then(Json::as_str)
            .unwrap_or_else(|| fail(&format!("line {n}: missing string event")));
        if event.is_empty() {
            fail(&format!("line {n}: empty event name"));
        }
        last_ts = last_ts.max(ts);
        seen.insert(event.to_string());
        events += 1;
    }

    if events == 0 {
        fail("trace contains no events");
    }
    for name in &required {
        if !seen.contains(name) {
            fail(&format!(
                "required event {name:?} not found (saw: {})",
                seen.iter().cloned().collect::<Vec<_>>().join(", ")
            ));
        }
    }
    println!(
        "trace_check: {} events, {} distinct kinds, last ts_ms {:.1} — ok",
        events,
        seen.len(),
        last_ts
    );
}
