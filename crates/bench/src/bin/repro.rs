//! `repro` — regenerates every table and figure of the TableDC paper.
//!
//! ```text
//! cargo run --release -p bench --bin repro -- <command> [flags]
//!
//! Commands:
//!   table1 | table2 | table3 | table4 | table5
//!   fig2 | fig3 | fig4 | fig5
//!   ablate-delta | ablate-gamma | ablate-alpha | ablate-covariance |
//!   ablate-birch-t
//!   all          every experiment above, in order
//!
//! Flags:
//!   --full               paper-scale datasets (Table 1 sizes; slow)
//!   --seed <u64>         base RNG seed                [default: 42]
//!   --epoch-factor <f>   multiplier on training epochs [default: 1.0]
//!   --ks <a,b,c>         cluster counts for fig3
//! ```

use bench::experiments::{ablations, figures, tables, RunOptions};
use datagen::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        print_usage_and_exit();
    }
    let command = args[0].clone();

    let mut opts = RunOptions::default();
    let mut ks: Vec<usize> = vec![50, 100, 200, 400];
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--full" => opts.scale = Scale::Paper,
            "--seed" => {
                i += 1;
                opts.seed = parse_or_exit(&args, i, "--seed");
            }
            "--epoch-factor" => {
                i += 1;
                opts.epoch_factor = parse_or_exit(&args, i, "--epoch-factor");
            }
            "--ks" => {
                i += 1;
                let raw = args.get(i).unwrap_or_else(|| usage_err("--ks needs a value"));
                ks = raw
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| usage_err("bad --ks list")))
                    .collect();
            }
            other => usage_err(&format!("unknown flag {other}")),
        }
        i += 1;
    }
    if opts.scale == Scale::Paper {
        // Paper scale sweeps the full Figure 3 range.
        if ks == vec![50, 100, 200, 400] {
            ks = vec![100, 400, 800, 1200, 1600, 2000, 2400];
        }
    }

    let run = |name: &str, opts: RunOptions, ks: &[usize]| match name {
        "table1" => print!("{}", tables::table1(opts)),
        "table2" => print!("{}", tables::table2(opts).render()),
        "table3" => print!("{}", tables::table3(opts).render()),
        "table4" => print!("{}", tables::table4(opts).render()),
        "table5" => print!("{}", tables::table5(opts).render()),
        "fig2" => print!("{}", figures::fig2(opts).render()),
        "fig3" => print!("{}", figures::fig3(opts, ks).render()),
        "fig4" => print!("{}", figures::fig4(opts).render()),
        "fig5" => print!("{}", figures::fig5(opts).render(10)),
        "ablate-delta" => print!("{}", ablations::ablate_delta(opts).render()),
        "ablate-gamma" => print!("{}", ablations::ablate_gamma(opts).render()),
        "ablate-alpha" => print!("{}", ablations::ablate_alpha(opts).render()),
        "ablate-covariance" => print!("{}", ablations::ablate_covariance(opts).render()),
        "ablate-birch-t" => print!("{}", ablations::ablate_birch_threshold(opts).render()),
        other => usage_err(&format!("unknown command {other}")),
    };

    eprintln!(
        "# repro: scale={:?} seed={} epoch_factor={}",
        opts.scale, opts.seed, opts.epoch_factor
    );
    if command == "all" {
        for name in [
            "table1", "table2", "table3", "table4", "table5", "fig2", "fig3", "fig4", "fig5",
            "ablate-delta", "ablate-gamma", "ablate-alpha", "ablate-covariance",
            "ablate-birch-t",
        ] {
            eprintln!("# running {name} …");
            run(name, opts, &ks);
        }
    } else {
        run(&command, opts, &ks);
    }
}

fn parse_or_exit<T: std::str::FromStr>(args: &[String], i: usize, flag: &str) -> T {
    args.get(i)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| usage_err(&format!("{flag} needs a valid value")))
}

fn usage_err(msg: &str) -> ! {
    eprintln!("error: {msg}\n");
    print_usage_and_exit()
}

fn print_usage_and_exit() -> ! {
    eprintln!(
        "usage: repro <table1|table2|table3|table4|table5|fig2|fig3|fig4|fig5|\
         ablate-delta|ablate-gamma|ablate-alpha|ablate-covariance|ablate-birch-t|all> \
         [--full] [--seed N] [--epoch-factor F] [--ks a,b,c]"
    );
    std::process::exit(2)
}
