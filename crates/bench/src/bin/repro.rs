//! `repro` — regenerates every table and figure of the TableDC paper.
//!
//! ```text
//! cargo run --release -p bench --bin repro -- <command> [flags]
//!
//! Commands:
//!   table1 | table2 | table3 | table4 | table5
//!   fig2 | fig3 | fig4 | fig5
//!   ablate-delta | ablate-gamma | ablate-alpha | ablate-covariance |
//!   ablate-birch-t
//!   all          every experiment above, in order
//!
//! Flags:
//!   --full               paper-scale datasets (Table 1 sizes; slow)
//!   --seed <u64>         base RNG seed                [default: 42]
//!   --epoch-factor <f>   multiplier on training epochs [default: 1.0]
//!   --ks <a,b,c>         cluster counts for fig3
//!   --out <path>         machine-readable report path [default: BENCH_repro.json]
//! ```
//!
//! Progress is reported through the structured event sink (set
//! `TABLEDC_TRACE=stderr` or a file path to see `repro.*` and
//! `bench.method` events as JSON lines). Each experiment runs under
//! `catch_unwind`, so one panicking experiment does not kill the sweep:
//! the run report and the end-of-run summary tables are always produced,
//! and the process exits nonzero if anything failed.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use bench::experiments::{ablations, figures, tables, RunOptions};
use bench::ledger::{HealthSummary, RunManifest};
use bench::report::{panic_message, render_table, ExperimentOutcome, MethodRecord, ReproReport};
use datagen::Scale;

const ALL_COMMANDS: [&str; 14] = [
    "table1", "table2", "table3", "table4", "table5", "fig2", "fig3", "fig4", "fig5",
    "ablate-delta", "ablate-gamma", "ablate-alpha", "ablate-covariance", "ablate-birch-t",
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        print_usage_and_exit();
    }
    let command = args[0].clone();

    let mut opts = RunOptions::default();
    let mut ks: Vec<usize> = vec![50, 100, 200, 400];
    let mut out_path = "BENCH_repro.json".to_string();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--full" => opts.scale = Scale::Paper,
            "--seed" => {
                i += 1;
                opts.seed = parse_or_exit(&args, i, "--seed");
            }
            "--epoch-factor" => {
                i += 1;
                opts.epoch_factor = parse_or_exit(&args, i, "--epoch-factor");
            }
            "--ks" => {
                i += 1;
                let raw = args.get(i).unwrap_or_else(|| usage_err("--ks needs a value"));
                ks = raw
                    .split(',')
                    .map(|s| s.trim().parse().unwrap_or_else(|_| usage_err("bad --ks list")))
                    .collect();
            }
            "--out" => {
                i += 1;
                out_path =
                    args.get(i).unwrap_or_else(|| usage_err("--out needs a path")).clone();
            }
            other => usage_err(&format!("unknown flag {other}")),
        }
        i += 1;
    }
    if opts.scale == Scale::Paper {
        // Paper scale sweeps the full Figure 3 range.
        if ks == vec![50, 100, 200, 400] {
            ks = vec![100, 400, 800, 1200, 1600, 2000, 2400];
        }
    }

    let names: Vec<&str> = if command == "all" {
        ALL_COMMANDS.to_vec()
    } else if ALL_COMMANDS.contains(&command.as_str()) {
        vec![command.as_str()]
    } else {
        usage_err(&format!("unknown command {command}"))
    };

    // Open the run-ledger manifest shell before any event is emitted so
    // the whole trace is stamped with this run's id.
    let mut manifest = RunManifest::new(&format!("repro-{command}"));
    manifest.command = format!("repro {command}");
    obs::set_run_id(&manifest.run_id);

    obs::event("repro.start")
        .str("command", &command)
        .str("scale", &format!("{:?}", opts.scale))
        .u64("seed", opts.seed)
        .f64("epoch_factor", opts.epoch_factor)
        .str("trace", &obs::trace_target_description())
        .emit();

    let mut report = ReproReport {
        scale: format!("{:?}", opts.scale),
        seed: opts.seed,
        epoch_factor: opts.epoch_factor,
        experiments: Vec::new(),
        methods: Vec::new(),
        profile: Vec::new(),
    };

    for name in names {
        obs::event("repro.experiment_start").str("name", name).emit();
        let start = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| run_experiment(name, opts, &ks)));
        let secs = start.elapsed().as_secs_f64();
        match outcome {
            Ok((rendered, records)) => {
                print!("{rendered}");
                report.methods.extend(records);
                report.experiments.push(ExperimentOutcome {
                    name: name.to_string(),
                    secs,
                    status: "ok".to_string(),
                    error: None,
                });
                obs::event("repro.experiment")
                    .str("name", name)
                    .f64("secs", secs)
                    .str("status", "ok")
                    .emit();
            }
            Err(payload) => {
                let msg = panic_message(payload.as_ref());
                report.experiments.push(ExperimentOutcome {
                    name: name.to_string(),
                    secs,
                    status: "panicked".to_string(),
                    error: Some(msg.clone()),
                });
                obs::event("repro.experiment")
                    .str("name", name)
                    .f64("secs", secs)
                    .str("status", "panicked")
                    .str("error", &msg)
                    .emit();
            }
        }
    }

    // Pool counters are normally snapshotted at scope exit only while
    // tracing; force one final snapshot so the summary always carries
    // steal/busy figures for the whole run.
    runtime::global().record_stats();
    // Drain the epoch-indexed series into the trace before the summary,
    // so a trace consumer sees the decimated curves too.
    obs::series::emit_all();
    // Fold the span tree into the report so perfdiff can compare
    // per-phase self times across runs.
    report.profile = bench::report::PhaseProfile::collect();

    eprint!("{}", experiment_summary(&report));
    eprintln!("{}", obs::summary());
    eprintln!("{}", obs::profile::report());
    if let Some(folded_path) = obs::profile::write_folded_if_requested() {
        eprintln!("# wrote folded stacks to {folded_path}");
    }

    match report.write(&out_path) {
        Ok(()) => eprintln!("# wrote {out_path}"),
        Err(e) => {
            eprintln!("# failed to write {out_path}: {e}");
            std::process::exit(1);
        }
    }
    fill_manifest(&mut manifest, &opts, &report);
    match manifest.write() {
        Ok(path) => eprintln!("# wrote run manifest {path}"),
        Err(e) => eprintln!("# failed to write run manifest: {e}"),
    }
    if report.any_failed() {
        std::process::exit(1);
    }
}

/// Completes the run-ledger manifest for this invocation: health roll-up
/// across every fit in the sweep, and the final quality metrics of each
/// comparison-table cell. A sweep has no single fit to take a structural
/// convergence verdict from, so `convergence` stays unset here.
fn fill_manifest(manifest: &mut RunManifest, opts: &RunOptions, report: &ReproReport) {
    manifest.seed = opts.seed;
    manifest.scale = report.scale.clone();
    manifest.epoch_factor = opts.epoch_factor;
    let (violations, aborts) = obs::health::global_counts();
    manifest.health = HealthSummary {
        policy: obs::health::Policy::from_env().as_str().to_string(),
        verdict: if aborts > 0 {
            "aborted"
        } else if violations > 0 {
            "warned"
        } else {
            "healthy"
        }
        .to_string(),
        violations,
        dump_path: None,
    };
    for m in report.methods.iter().filter(|m| m.status == "ok") {
        let key = |metric: &str| format!("{}/{}/{}/{metric}", m.experiment, m.dataset, m.method);
        if let Some(ari) = m.ari {
            manifest.metrics.push((key("ari"), ari));
        }
        if let Some(acc) = m.acc {
            manifest.metrics.push((key("acc"), acc));
        }
    }
}

/// Runs one experiment, returning its rendered output and (for the
/// comparison tables) the per-method records.
fn run_experiment(name: &str, opts: RunOptions, ks: &[usize]) -> (String, Vec<MethodRecord>) {
    let with_records = |r: tables::ComparisonResult| {
        let records = r.records();
        (r.render(), records)
    };
    match name {
        "table1" => (tables::table1(opts), Vec::new()),
        "table2" => with_records(tables::table2(opts)),
        "table3" => with_records(tables::table3(opts)),
        "table4" => with_records(tables::table4(opts)),
        "table5" => (tables::table5(opts).render(), Vec::new()),
        "fig2" => (figures::fig2(opts).render(), Vec::new()),
        "fig3" => (figures::fig3(opts, ks).render(), Vec::new()),
        "fig4" => (figures::fig4(opts).render(), Vec::new()),
        "fig5" => (figures::fig5(opts).render(10), Vec::new()),
        "ablate-delta" => (ablations::ablate_delta(opts).render(), Vec::new()),
        "ablate-gamma" => (ablations::ablate_gamma(opts).render(), Vec::new()),
        "ablate-alpha" => (ablations::ablate_alpha(opts).render(), Vec::new()),
        "ablate-covariance" => (ablations::ablate_covariance(opts).render(), Vec::new()),
        "ablate-birch-t" => (ablations::ablate_birch_threshold(opts).render(), Vec::new()),
        other => unreachable!("unvalidated command {other}"),
    }
}

/// End-of-run status table: one row per experiment plus any failed
/// method cells.
fn experiment_summary(report: &ReproReport) -> String {
    let headers =
        vec!["Experiment".to_string(), "Status".to_string(), "Secs".to_string()];
    let mut rows: Vec<Vec<String>> = report
        .experiments
        .iter()
        .map(|e| vec![e.name.clone(), e.status.clone(), format!("{:.2}", e.secs)])
        .collect();
    for m in report.methods.iter().filter(|m| m.status != "ok") {
        rows.push(vec![
            format!("{} · {} · {}", m.experiment, m.dataset, m.method),
            m.status.clone(),
            "-".to_string(),
        ]);
    }
    render_table("repro run summary", &headers, &rows)
}

fn parse_or_exit<T: std::str::FromStr>(args: &[String], i: usize, flag: &str) -> T {
    args.get(i)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| usage_err(&format!("{flag} needs a valid value")))
}

fn usage_err(msg: &str) -> ! {
    eprintln!("error: {msg}\n");
    print_usage_and_exit()
}

fn print_usage_and_exit() -> ! {
    eprintln!(
        "usage: repro <table1|table2|table3|table4|table5|fig2|fig3|fig4|fig5|\
         ablate-delta|ablate-gamma|ablate-alpha|ablate-covariance|ablate-birch-t|all> \
         [--full] [--seed N] [--epoch-factor F] [--ks a,b,c] [--out PATH]"
    );
    std::process::exit(2)
}
