//! `perfdiff` — compares two `BENCH_repro.json` reports and fails on
//! performance regressions.
//!
//! ```text
//! cargo run -p bench --bin perfdiff -- <baseline.json> <candidate.json>
//!     [--tolerance R] [--min-secs S] [--min-ms M]
//! ```
//!
//! Compares per-experiment and per-method wall seconds plus per-phase
//! profile self-times (see [`bench::perfdiff`]). A candidate entry
//! regresses when it exceeds `baseline × tolerance` **and** the absolute
//! delta exceeds the floor (`--min-secs` for wall times, `--min-ms` for
//! phases) — both gates together keep machine noise from flaking the CI
//! gate while still catching real slowdowns.
//!
//! Exit codes: 0 = within tolerance, 1 = regression detected,
//! 2 = usage or I/O error. Used by `results/verify.sh` against the
//! committed `results/BENCH_baseline.json`.

use bench::perfdiff::{diff_files, Tolerance};

fn usage() -> ! {
    eprintln!(
        "usage: perfdiff <baseline.json> <candidate.json> \
         [--tolerance R] [--min-secs S] [--min-ms M]"
    );
    std::process::exit(2)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths: Vec<String> = Vec::new();
    let mut tol = Tolerance::default();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tolerance" => {
                i += 1;
                tol.ratio = parse_flag(&args, i, "--tolerance");
                if tol.ratio < 1.0 {
                    eprintln!("error: --tolerance must be >= 1.0");
                    usage();
                }
            }
            "--min-secs" => {
                i += 1;
                tol.min_secs = parse_flag(&args, i, "--min-secs");
            }
            "--min-ms" => {
                i += 1;
                tol.min_ms = parse_flag(&args, i, "--min-ms");
            }
            flag if flag.starts_with("--") => {
                eprintln!("error: unknown flag {flag}");
                usage();
            }
            path => paths.push(path.to_string()),
        }
        i += 1;
    }
    let [baseline, candidate] = paths.as_slice() else { usage() };

    match diff_files(baseline, candidate, &tol) {
        Ok(report) => {
            print!("{}", report.render());
            if report.has_regressions() {
                eprintln!(
                    "perfdiff: FAIL — {} regression(s) beyond {}x (+{}s/+{}ms floors)",
                    report.regressions.len(),
                    tol.ratio,
                    tol.min_secs,
                    tol.min_ms
                );
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("perfdiff: {e}");
            std::process::exit(2);
        }
    }
}

fn parse_flag(args: &[String], i: usize, flag: &str) -> f64 {
    let Some(v) = args.get(i).and_then(|s| s.parse::<f64>().ok()) else {
        eprintln!("error: {flag} needs a numeric value");
        usage();
    };
    if !v.is_finite() || v < 0.0 {
        eprintln!("error: {flag} must be a finite nonnegative number");
        usage();
    }
    v
}
