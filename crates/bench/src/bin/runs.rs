//! `runs` — inspect and compare run-ledger manifests.
//!
//! ```text
//! cargo run -p bench --bin runs -- <command>
//!
//! Commands:
//!   list [--json]            list manifests in the runs directory,
//!                            sorted by run timestamp; --json emits one
//!                            JSON array with id, command, timestamp,
//!                            health verdict, convergence status, and path
//!   show <run>               print one manifest's JSON
//!   diff <base> <cand>       compare two runs' quality metrics and health
//!     [--ratio R]            worse-than multiplier that flags a metric
//!                            regression [default: 1.1]
//!
//! <run> is a manifest file path, or a run id resolved against the runs
//! directory (`TABLEDC_RUNS_DIR`, default `results/runs`).
//!
//! Exit codes (diff): 0 no regressions, 1 regressions found, 2 usage or
//! parse failure — mirroring `perfdiff` so CI can gate on either.
//! ```

use bench::ledger::{diff_manifests, runs_dir, RunManifest};
use bench::perfdiff::Tolerance;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => match args.get(1).map(String::as_str) {
            None => list(false),
            Some("--json") => list(true),
            Some(other) => usage(&format!("unknown list flag {other}")),
        },
        Some("show") => show(args.get(1).unwrap_or_else(|| usage("show needs a run"))),
        Some("diff") => diff(&args[1..]),
        _ => {
            usage("missing command");
        }
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: runs <list [--json] | show <run> | diff <base> <cand> [--ratio R]>");
    std::process::exit(2)
}

/// Resolves a run argument to a manifest path: an existing file wins,
/// otherwise `<runs_dir>/<arg>.json`.
fn resolve(arg: &str) -> String {
    if std::path::Path::new(arg).is_file() {
        return arg.to_string();
    }
    let candidate = runs_dir().join(format!("{arg}.json"));
    candidate.to_string_lossy().into_owned()
}

fn list(json: bool) {
    let dir = runs_dir();
    let entries = match std::fs::read_dir(&dir) {
        Ok(e) => e,
        Err(_) if json => {
            println!("[]");
            return;
        }
        Err(_) => {
            println!("no runs recorded in {}", dir.display());
            return;
        }
    };
    let mut manifests: Vec<(RunManifest, String)> = entries
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
        .filter_map(|e| {
            let path = e.path().to_string_lossy().into_owned();
            RunManifest::load(&path).ok().map(|m| (m, path))
        })
        .collect();
    if manifests.is_empty() && !json {
        println!("no runs recorded in {}", dir.display());
        return;
    }
    // Run timestamp first; the id breaks ties so the order is total.
    manifests.sort_by(|(a, _), (b, _)| {
        a.created_unix_ms.cmp(&b.created_unix_ms).then_with(|| a.run_id.cmp(&b.run_id))
    });
    if json {
        print!("{}", render_list_json(&manifests));
    } else {
        for (m, _) in &manifests {
            println!("{}", m.summary_line());
        }
    }
}

/// Machine-readable `runs list`: one JSON array, ordered like the plain
/// listing, built with the same writer the trace sink uses so no JSON
/// dependency is introduced.
fn render_list_json(manifests: &[(RunManifest, String)]) -> String {
    use obs::json::escape_into;
    let mut out = String::from("[\n");
    for (i, (m, path)) in manifests.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str("  {\"run_id\": ");
        escape_into(&mut out, &m.run_id);
        out.push_str(", \"command\": ");
        escape_into(&mut out, &m.command);
        out.push_str(&format!(", \"created_unix_ms\": {}, \"health\": ", m.created_unix_ms));
        escape_into(&mut out, &m.health.verdict);
        out.push_str(", \"convergence\": ");
        match &m.convergence {
            Some(c) => escape_into(&mut out, &c.status),
            None => out.push_str("null"),
        }
        out.push_str(", \"path\": ");
        escape_into(&mut out, path);
        out.push('}');
    }
    out.push_str("\n]\n");
    out
}

fn show(run: &str) {
    let path = resolve(run);
    match RunManifest::load(&path) {
        // Re-serialize instead of cat-ing the file: proves the manifest
        // parses and normalizes its formatting.
        Ok(m) => print!("{}", m.to_json()),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

fn diff(args: &[String]) {
    let mut ratio = 1.1;
    let mut positional: Vec<&String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--ratio" => {
                i += 1;
                ratio = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--ratio needs a number"));
            }
            _ => positional.push(&args[i]),
        }
        i += 1;
    }
    let [base_arg, cand_arg] = positional[..] else {
        usage("diff needs <base> and <cand>");
    };
    let load = |arg: &str| -> RunManifest {
        RunManifest::load(&resolve(arg)).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        })
    };
    let base = load(base_arg);
    let cand = load(cand_arg);
    let tol = Tolerance { ratio, ..Tolerance::default() };
    let report = diff_manifests(&base, &cand, &tol);
    print!("{}", report.render_as("runs diff"));
    if report.has_regressions() {
        std::process::exit(1);
    }
}
