//! `runs` — inspect and compare run-ledger manifests.
//!
//! ```text
//! cargo run -p bench --bin runs -- <command>
//!
//! Commands:
//!   list                     list manifests in the runs directory
//!   show <run>               print one manifest's JSON
//!   diff <base> <cand>       compare two runs' quality metrics and health
//!     [--ratio R]            worse-than multiplier that flags a metric
//!                            regression [default: 1.1]
//!
//! <run> is a manifest file path, or a run id resolved against the runs
//! directory (`TABLEDC_RUNS_DIR`, default `results/runs`).
//!
//! Exit codes (diff): 0 no regressions, 1 regressions found, 2 usage or
//! parse failure — mirroring `perfdiff` so CI can gate on either.
//! ```

use bench::ledger::{diff_manifests, runs_dir, RunManifest};
use bench::perfdiff::Tolerance;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => list(),
        Some("show") => show(args.get(1).unwrap_or_else(|| usage("show needs a run"))),
        Some("diff") => diff(&args[1..]),
        _ => {
            usage("missing command");
        }
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: runs <list | show <run> | diff <base> <cand> [--ratio R]>");
    std::process::exit(2)
}

/// Resolves a run argument to a manifest path: an existing file wins,
/// otherwise `<runs_dir>/<arg>.json`.
fn resolve(arg: &str) -> String {
    if std::path::Path::new(arg).is_file() {
        return arg.to_string();
    }
    let candidate = runs_dir().join(format!("{arg}.json"));
    candidate.to_string_lossy().into_owned()
}

fn list() {
    let dir = runs_dir();
    let entries = match std::fs::read_dir(&dir) {
        Ok(e) => e,
        Err(_) => {
            println!("no runs recorded in {}", dir.display());
            return;
        }
    };
    let mut manifests: Vec<RunManifest> = entries
        .filter_map(Result::ok)
        .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
        .filter_map(|e| RunManifest::load(&e.path().to_string_lossy()).ok())
        .collect();
    if manifests.is_empty() {
        println!("no runs recorded in {}", dir.display());
        return;
    }
    manifests.sort_by_key(|m| m.created_unix_ms);
    for m in &manifests {
        println!("{}", m.summary_line());
    }
}

fn show(run: &str) {
    let path = resolve(run);
    match RunManifest::load(&path) {
        // Re-serialize instead of cat-ing the file: proves the manifest
        // parses and normalizes its formatting.
        Ok(m) => print!("{}", m.to_json()),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    }
}

fn diff(args: &[String]) {
    let mut ratio = 1.1;
    let mut positional: Vec<&String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--ratio" => {
                i += 1;
                ratio = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--ratio needs a number"));
            }
            _ => positional.push(&args[i]),
        }
        i += 1;
    }
    let [base_arg, cand_arg] = positional[..] else {
        usage("diff needs <base> and <cand>");
    };
    let load = |arg: &str| -> RunManifest {
        RunManifest::load(&resolve(arg)).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        })
    };
    let base = load(base_arg);
    let cand = load(cand_arg);
    let tol = Tolerance { ratio, ..Tolerance::default() };
    let report = diff_manifests(&base, &cand, &tol);
    print!("{}", report.render_as("runs diff"));
    if report.has_regressions() {
        std::process::exit(1);
    }
}
