//! `report` — renders a run-ledger manifest into a self-contained HTML
//! page.
//!
//! ```text
//! cargo run -p bench --bin report -- <manifest> [flags]
//!
//! Flags:
//!   --diff <manifest>    baseline manifest to diff the run against
//!                        (metrics + health, via the runs-diff core)
//!   --trace <file>       JSON-lines trace to fold into a profile section
//!   --out <path>         write the page to a file instead of stdout
//!
//! <manifest> is a manifest file path, or a run id resolved against the
//! runs directory (`TABLEDC_RUNS_DIR`, default `results/runs`).
//!
//! The page is deterministic — identical inputs render byte-identical
//! HTML — so `results/verify.sh` diffs two renders and the test suite
//! pins a committed golden page. Exit code 2 on usage or parse failure.
//! ```

use bench::htmlreport::{render, summarize_trace, TraceSummary};
use bench::ledger::{runs_dir, RunManifest};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut manifest_arg: Option<String> = None;
    let mut diff_arg: Option<String> = None;
    let mut trace_arg: Option<String> = None;
    let mut out_arg: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--diff" => {
                i += 1;
                diff_arg = Some(required(&args, i, "--diff"));
            }
            "--trace" => {
                i += 1;
                trace_arg = Some(required(&args, i, "--trace"));
            }
            "--out" => {
                i += 1;
                out_arg = Some(required(&args, i, "--out"));
            }
            flag if flag.starts_with("--") => usage(&format!("unknown flag {flag}")),
            positional => {
                if manifest_arg.is_some() {
                    usage("more than one manifest given");
                }
                manifest_arg = Some(positional.to_string());
            }
        }
        i += 1;
    }
    let manifest_arg = manifest_arg.unwrap_or_else(|| usage("missing manifest"));

    let manifest = load(&manifest_arg);
    let baseline = diff_arg.as_deref().map(load);
    let trace: Option<TraceSummary> = trace_arg.as_deref().map(|path| {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
        summarize_trace(&text).unwrap_or_else(|e| fail(&e))
    });

    let html = render(&manifest, baseline.as_ref(), trace.as_ref());
    match out_arg {
        Some(path) => std::fs::write(&path, html)
            .unwrap_or_else(|e| fail(&format!("cannot write {path}: {e}"))),
        None => print!("{html}"),
    }
}

/// Resolves a run argument to a manifest path: an existing file wins,
/// otherwise `<runs_dir>/<arg>.json`.
fn load(arg: &str) -> RunManifest {
    let path = if std::path::Path::new(arg).is_file() {
        arg.to_string()
    } else {
        runs_dir().join(format!("{arg}.json")).to_string_lossy().into_owned()
    };
    RunManifest::load(&path).unwrap_or_else(|e| fail(&e))
}

fn required(args: &[String], i: usize, flag: &str) -> String {
    args.get(i).unwrap_or_else(|| usage(&format!("{flag} needs a value"))).clone()
}

fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2)
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("usage: report <manifest> [--diff <manifest>] [--trace <file>] [--out <path>]");
    std::process::exit(2)
}
