//! Self-contained HTML run reports rendered from ledger manifests.
//!
//! [`render`] turns one [`RunManifest`] — plus an optional baseline
//! manifest to diff against and an optional JSON-lines trace — into a
//! single HTML page with no external assets, no scripts, and no
//! render-time state: the same inputs produce byte-identical output, so
//! the page can be committed as a golden fixture and diffed in CI.
//!
//! The page carries a fixed set of section ids (`run-header`, `health`,
//! `convergence`, `metrics`, `series`, and — input-dependent — `profile`
//! and `diff`) that `results/verify.sh` asserts on, inline-SVG sparklines
//! (one per non-empty history series, `id="spark-<name>"`), and a
//! light/dark theme driven entirely by CSS custom properties. Non-finite
//! values render as `–`; the literal `NaN` never appears in the output.

use std::collections::BTreeMap;

use obs::json::{parse, Json};

use crate::ledger::{diff_manifests, RunManifest};
use crate::perfdiff::{Delta, Tolerance};

/// Sparkline viewport width, CSS pixels.
const SPARK_W: f64 = 240.0;
/// Sparkline viewport height, CSS pixels.
const SPARK_H: f64 = 56.0;
/// Padding inside the sparkline viewport, CSS pixels.
const SPARK_PAD: f64 = 6.0;

/// Aggregated timing of one span path in a trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanStat {
    /// Completed enter/exit pairs on this path.
    pub calls: u64,
    /// Total wall milliseconds inside the span.
    pub total_ms: f64,
    /// Wall milliseconds not attributed to child spans.
    pub self_ms: f64,
}

/// A JSON-lines trace folded down to what the report renders: event
/// counts by name and the span tree keyed by `;`-joined path.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// Events per event name.
    pub events: BTreeMap<String, u64>,
    /// Span statistics keyed by path (`root;child;grandchild`).
    pub spans: BTreeMap<String, SpanStat>,
    /// `run_id` stamped on the trace, when present.
    pub run_id: Option<String>,
    /// Total event lines.
    pub lines: usize,
}

/// One open span while folding a trace.
struct Frame {
    path: String,
    enter_ms: f64,
    child_ms: f64,
}

/// Folds a JSON-lines trace into a [`TraceSummary`]. Returns `Err` on a
/// line that is not a JSON object — the caller treats that as a usage
/// error, matching `trace_check`'s verdict on the same input.
pub fn summarize_trace(text: &str) -> Result<TraceSummary, String> {
    let mut out = TraceSummary::default();
    let mut open: BTreeMap<u64, Vec<Frame>> = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let n = lineno + 1;
        let v = parse(line).map_err(|e| format!("trace line {n}: invalid JSON: {e}"))?;
        let event = v
            .get("event")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("trace line {n}: missing string event"))?;
        if out.run_id.is_none() {
            out.run_id = v.get("run_id").and_then(Json::as_str).map(str::to_string);
        }
        *out.events.entry(event.to_string()).or_insert(0) += 1;
        out.lines += 1;
        if event != "span.enter" && event != "span.exit" {
            continue;
        }
        let span = v.get("span").and_then(Json::as_str).unwrap_or_default();
        let thread = v.get("thread").and_then(Json::as_f64).unwrap_or(0.0) as u64;
        let ts = v.get("ts_ms").and_then(Json::as_f64).unwrap_or(0.0);
        let stack = open.entry(thread).or_default();
        if event == "span.enter" {
            let path = match stack.last() {
                Some(parent) => format!("{};{span}", parent.path),
                None => span.to_string(),
            };
            stack.push(Frame { path, enter_ms: ts, child_ms: 0.0 });
        } else if let Some(frame) = stack.pop() {
            let dur = (ts - frame.enter_ms).max(0.0);
            let stat = out.spans.entry(frame.path).or_default();
            stat.calls += 1;
            stat.total_ms += dur;
            stat.self_ms += (dur - frame.child_ms).max(0.0);
            if let Some(parent) = stack.last_mut() {
                parent.child_ms += dur;
            }
        }
    }
    Ok(out)
}

/// Escapes text for HTML element and attribute content.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
    out
}

/// Display formatting for a metric value: `–` for non-finite, scientific
/// for extreme magnitudes, at most four decimals otherwise. Never emits
/// the literal `NaN`.
fn fmt(v: f64) -> String {
    if !v.is_finite() {
        return "–".to_string();
    }
    if v == 0.0 {
        return "0".to_string();
    }
    if v.abs() >= 1e6 || v.abs() < 1e-3 {
        return format!("{v:.2e}");
    }
    let mut s = format!("{v:.4}");
    while s.ends_with('0') {
        s.pop();
    }
    if s.ends_with('.') {
        s.pop();
    }
    s
}

/// Status badge: a colored icon plus a plain-text label — state is never
/// carried by color alone, and the label wears text ink, not the status
/// color.
fn badge(kind: &str, label: &str) -> String {
    let (var, icon) = match kind {
        "good" => ("--status-good", "\u{2713}"),     // ✓
        "warning" => ("--status-warning", "\u{25b2}"), // ▲
        "serious" => ("--status-serious", "\u{25a0}"), // ■
        "critical" => ("--status-critical", "\u{2715}"), // ✕
        _ => ("--text-muted", "\u{25cb}"),           // ○
    };
    format!(
        "<span class=\"badge\"><span class=\"badge-icon\" style=\"color:var({var})\">{icon}</span> {}</span>",
        esc(label)
    )
}

fn health_badge(verdict: &str) -> String {
    let kind = match verdict {
        "healthy" => "good",
        "warned" => "warning",
        _ => "critical",
    };
    badge(kind, verdict)
}

fn convergence_badge(status: &str) -> String {
    let kind = match status {
        "converged" => "good",
        "oscillating" => "warning",
        "stalled" => "serious",
        "collapsed" => "critical",
        _ => "muted",
    };
    badge(kind, status)
}

/// One inline-SVG sparkline over a series: a 2px round-capped polyline
/// through the finite points, a ~10%-opacity area wash to the baseline,
/// and an end dot ringed in the surface color so it stays legible over
/// the line. Non-finite points are skipped; all coordinates are printed
/// with two decimals so the output is byte-stable.
fn sparkline(values: &[f64]) -> String {
    let pts: Vec<(usize, f64)> = values
        .iter()
        .copied()
        .enumerate()
        .filter(|(_, v)| v.is_finite())
        .collect();
    if pts.is_empty() {
        return format!(
            "<svg viewBox=\"0 0 {SPARK_W} {SPARK_H}\" width=\"{SPARK_W}\" height=\"{SPARK_H}\" role=\"img\" aria-label=\"no finite points\"><line class=\"spark-base\" x1=\"{SPARK_PAD}\" y1=\"{:.2}\" x2=\"{:.2}\" y2=\"{:.2}\"/></svg>",
            SPARK_H - SPARK_PAD,
            SPARK_W - SPARK_PAD,
            SPARK_H - SPARK_PAD,
        );
    }
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(_, v) in &pts {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let span_x = (values.len().saturating_sub(1)).max(1) as f64;
    let x = |i: usize| SPARK_PAD + i as f64 / span_x * (SPARK_W - 2.0 * SPARK_PAD);
    let y = |v: f64| {
        if hi > lo {
            SPARK_PAD + (hi - v) / (hi - lo) * (SPARK_H - 2.0 * SPARK_PAD)
        } else {
            SPARK_H / 2.0
        }
    };
    let base_y = SPARK_H - SPARK_PAD;
    let mut line = String::new();
    for &(i, v) in &pts {
        if !line.is_empty() {
            line.push(' ');
        }
        line.push_str(&format!("{:.2},{:.2}", x(i), y(v)));
    }
    let mut area = format!("M{:.2},{:.2}", x(pts[0].0), base_y);
    for &(i, v) in &pts {
        area.push_str(&format!(" L{:.2},{:.2}", x(i), y(v)));
    }
    area.push_str(&format!(" L{:.2},{:.2} Z", x(pts[pts.len() - 1].0), base_y));
    let (last_i, last_v) = pts[pts.len() - 1];
    format!(
        "<svg viewBox=\"0 0 {SPARK_W} {SPARK_H}\" width=\"{SPARK_W}\" height=\"{SPARK_H}\" role=\"img\" aria-label=\"{n} epochs, min {min}, max {max}\">\
         <line class=\"spark-base\" x1=\"{SPARK_PAD}\" y1=\"{base_y:.2}\" x2=\"{:.2}\" y2=\"{base_y:.2}\"/>\
         <path class=\"spark-area\" d=\"{area}\"/>\
         <polyline class=\"spark-line\" points=\"{line}\"/>\
         <circle class=\"spark-dot\" cx=\"{:.2}\" cy=\"{:.2}\" r=\"4\"/>\
         </svg>",
        SPARK_W - SPARK_PAD,
        x(last_i),
        y(last_v),
        n = values.len(),
        min = fmt(lo),
        max = fmt(hi),
    )
}

/// The page stylesheet: dataviz tokens as CSS custom properties, light
/// theme by default, dark theme both on explicit `data-theme="dark"` and
/// on OS preference (unless pinned light). Status colors are fixed across
/// themes and only ever color the badge icon, never text.
const STYLE: &str = "\
:root{--surface:#fcfcfb;--text:#0b0b0b;--text-2:#52514e;--text-muted:#898781;\
--grid:#e1e0d9;--axis:#c3c2b7;--series-1:#2a78d6;\
--status-good:#0ca30c;--status-warning:#fab219;--status-serious:#ec835a;--status-critical:#d03b3b}\n\
:root[data-theme=\"dark\"]{--surface:#1a1a19;--text:#ffffff;--text-2:#c3c2b7;--text-muted:#898781;\
--grid:#2c2c2a;--axis:#383835;--series-1:#3987e5}\n\
@media (prefers-color-scheme: dark){:root:where(:not([data-theme=\"light\"]))\
{--surface:#1a1a19;--text:#ffffff;--text-2:#c3c2b7;--text-muted:#898781;\
--grid:#2c2c2a;--axis:#383835;--series-1:#3987e5}}\n\
body{margin:0;background:var(--surface);color:var(--text);\
font:14px/1.5 system-ui,sans-serif}\n\
main{max-width:960px;margin:0 auto;padding:24px}\n\
h1{font-size:20px;margin:0 0 4px}\n\
h2{font-size:15px;margin:28px 0 8px;border-bottom:1px solid var(--grid);padding-bottom:4px}\n\
.sub{color:var(--text-2)}\n\
.muted{color:var(--text-muted)}\n\
dl.kv{display:grid;grid-template-columns:max-content 1fr;gap:2px 16px;margin:8px 0}\n\
dl.kv dt{color:var(--text-2)}\n\
dl.kv dd{margin:0;font-variant-numeric:tabular-nums}\n\
table{border-collapse:collapse;margin:8px 0}\n\
th,td{text-align:left;padding:3px 12px 3px 0;border-bottom:1px solid var(--grid)}\n\
th{color:var(--text-2);font-weight:600}\n\
td.num,th.num{text-align:right;font-variant-numeric:tabular-nums}\n\
.badge{white-space:nowrap}\n\
.badge-icon{font-size:12px}\n\
.series-grid{display:grid;grid-template-columns:repeat(auto-fill,minmax(260px,1fr));gap:16px}\n\
figure{margin:0}\n\
figcaption{color:var(--text-2);font-size:13px;margin-bottom:2px}\n\
figcaption .stats{color:var(--text-muted);font-size:12px}\n\
.spark-line{fill:none;stroke:var(--series-1);stroke-width:2;\
stroke-linejoin:round;stroke-linecap:round}\n\
.spark-area{fill:var(--series-1);fill-opacity:.1;stroke:none}\n\
.spark-dot{fill:var(--series-1);stroke:var(--surface);stroke-width:2}\n\
.spark-base{stroke:var(--axis);stroke-width:1}\n";

/// Renders a manifest (plus optional baseline and trace) into one
/// self-contained HTML page. Deterministic: identical inputs yield
/// byte-identical output.
pub fn render(
    manifest: &RunManifest,
    baseline: Option<&RunManifest>,
    trace: Option<&TraceSummary>,
) -> String {
    let mut out = String::with_capacity(16 * 1024);
    out.push_str("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n");
    out.push_str(&format!("<title>TableDC run {}</title>\n", esc(&manifest.run_id)));
    out.push_str("<style>\n");
    out.push_str(STYLE);
    out.push_str("</style>\n</head>\n<body>\n<main>\n");

    header_section(&mut out, manifest);
    health_section(&mut out, manifest);
    convergence_section(&mut out, manifest);
    metrics_section(&mut out, manifest, baseline);
    series_section(&mut out, manifest);
    if let Some(t) = trace {
        profile_section(&mut out, t);
    }
    if let Some(b) = baseline {
        diff_section(&mut out, b, manifest);
    }

    out.push_str("</main>\n</body>\n</html>\n");
    out
}

fn header_section(out: &mut String, m: &RunManifest) {
    out.push_str("<header id=\"run-header\">\n");
    out.push_str(&format!("<h1>{}</h1>\n", esc(&m.run_id)));
    out.push_str(&format!(
        "<p class=\"sub\">{} · git {} · seed {} · scale {} · epoch factor {}</p>\n",
        esc(&m.command),
        esc(&m.git),
        m.seed,
        esc(&m.scale),
        fmt(m.epoch_factor)
    ));
    out.push_str("<dl class=\"kv\">\n");
    out.push_str(&format!("<dt>created (unix ms)</dt><dd>{}</dd>\n", m.created_unix_ms));
    for (k, v) in &m.env {
        out.push_str(&format!("<dt>{}</dt><dd>{}</dd>\n", esc(k), esc(v)));
    }
    out.push_str("</dl>\n</header>\n");
}

fn health_section(out: &mut String, m: &RunManifest) {
    out.push_str("<section id=\"health\">\n<h2>Health</h2>\n");
    out.push_str(&format!(
        "<p>{} <span class=\"sub\">policy {}, {} violation{}</span>",
        health_badge(&m.health.verdict),
        esc(&m.health.policy),
        m.health.violations,
        if m.health.violations == 1 { "" } else { "s" }
    ));
    if let Some(dump) = &m.health.dump_path {
        out.push_str(&format!(" <span class=\"muted\">dump: {}</span>", esc(dump)));
    }
    out.push_str("</p>\n</section>\n");
}

fn convergence_section(out: &mut String, m: &RunManifest) {
    out.push_str("<section id=\"convergence\">\n<h2>Convergence</h2>\n");
    match &m.convergence {
        Some(c) => {
            let epoch = match c.epoch {
                Some(e) => format!("epoch {e}"),
                None => "no deciding epoch".to_string(),
            };
            out.push_str(&format!(
                "<p>{} <span class=\"sub\">{epoch}</span><br><span class=\"muted\">{}</span></p>\n",
                convergence_badge(&c.status),
                esc(&c.rule)
            ));
        }
        None => {
            out.push_str(&format!(
                "<p>{} <span class=\"muted\">not recorded by this run</span></p>\n",
                badge("muted", "unknown")
            ));
        }
    }
    out.push_str("</section>\n");
}

fn metrics_section(out: &mut String, m: &RunManifest, baseline: Option<&RunManifest>) {
    out.push_str("<section id=\"metrics\">\n<h2>Metrics</h2>\n");
    if m.metrics.is_empty() {
        out.push_str("<p class=\"muted\">no metrics recorded</p>\n</section>\n");
        return;
    }
    out.push_str("<table>\n<thead><tr><th>metric</th><th class=\"num\">value</th>");
    if baseline.is_some() {
        out.push_str("<th class=\"num\">baseline</th>");
    }
    out.push_str("</tr></thead>\n<tbody>\n");
    for (k, v) in &m.metrics {
        out.push_str(&format!(
            "<tr><td>{}</td><td class=\"num\">{}</td>",
            esc(k),
            fmt(*v)
        ));
        if let Some(b) = baseline {
            let bv = b.metrics.iter().find(|(n, _)| n == k).map(|(_, v)| fmt(*v));
            out.push_str(&format!(
                "<td class=\"num\">{}</td>",
                bv.unwrap_or_else(|| "–".to_string())
            ));
        }
        out.push_str("</tr>\n");
    }
    out.push_str("</tbody>\n</table>\n</section>\n");
}

fn series_section(out: &mut String, m: &RunManifest) {
    out.push_str("<section id=\"series\">\n<h2>Training series</h2>\n");
    let nonempty: Vec<(&'static str, &Vec<f64>)> = m
        .history
        .series()
        .into_iter()
        .filter(|(_, v)| !v.is_empty())
        .collect();
    if nonempty.is_empty() {
        out.push_str("<p class=\"muted\">no per-epoch history recorded</p>\n</section>\n");
        return;
    }
    out.push_str("<div class=\"series-grid\">\n");
    for (name, values) in nonempty {
        let finite: Vec<f64> = values.iter().copied().filter(|v| v.is_finite()).collect();
        let stats = if finite.is_empty() {
            "no finite points".to_string()
        } else {
            let lo = finite.iter().copied().fold(f64::INFINITY, f64::min);
            let hi = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            format!("last {} · min {} · max {}", fmt(finite[finite.len() - 1]), fmt(lo), fmt(hi))
        };
        out.push_str(&format!(
            "<figure id=\"spark-{name}\">\n<figcaption>{name} <span class=\"stats\">{stats}</span></figcaption>\n{}\n</figure>\n",
            sparkline(values)
        ));
    }
    out.push_str("</div>\n</section>\n");
}

fn profile_section(out: &mut String, t: &TraceSummary) {
    out.push_str("<section id=\"profile\">\n<h2>Profile</h2>\n");
    let mut intro = format!("{} trace events", t.lines);
    if let Some(id) = &t.run_id {
        intro.push_str(&format!(" · run id {}", esc(id)));
    }
    out.push_str(&format!("<p class=\"sub\">{intro}</p>\n"));
    if !t.spans.is_empty() {
        out.push_str(
            "<table>\n<thead><tr><th>span</th><th class=\"num\">calls</th>\
             <th class=\"num\">total ms</th><th class=\"num\">self ms</th></tr></thead>\n<tbody>\n",
        );
        // BTreeMap order keeps children directly under their parents:
        // `a` < `a;b` < `a;b;c` < `a;d`.
        for (path, stat) in &t.spans {
            let depth = path.matches(';').count();
            let leaf = path.rsplit(';').next().unwrap_or(path);
            out.push_str(&format!(
                "<tr><td>{}{}</td><td class=\"num\">{}</td><td class=\"num\">{}</td><td class=\"num\">{}</td></tr>\n",
                "\u{2003}".repeat(depth),
                esc(leaf),
                stat.calls,
                fmt(stat.total_ms),
                fmt(stat.self_ms)
            ));
        }
        out.push_str("</tbody>\n</table>\n");
    }
    out.push_str("<table>\n<thead><tr><th>event</th><th class=\"num\">count</th></tr></thead>\n<tbody>\n");
    for (name, count) in &t.events {
        out.push_str(&format!(
            "<tr><td>{}</td><td class=\"num\">{count}</td></tr>\n",
            esc(name)
        ));
    }
    out.push_str("</tbody>\n</table>\n</section>\n");
}

fn diff_section(out: &mut String, base: &RunManifest, cand: &RunManifest) {
    out.push_str("<section id=\"diff\">\n<h2>Diff vs baseline</h2>\n");
    out.push_str(&format!(
        "<p class=\"sub\">baseline {} → candidate {}</p>\n",
        esc(&base.run_id),
        esc(&cand.run_id)
    ));
    let report = diff_manifests(base, cand, &Tolerance::default());
    let row = |d: &Delta| {
        format!(
            "<tr><td>{}</td><td>{}</td><td class=\"num\">{}</td><td class=\"num\">{}</td><td class=\"num\">{}×</td></tr>\n",
            esc(d.section),
            esc(&d.name),
            fmt(d.base),
            fmt(d.cand),
            fmt(d.ratio())
        )
    };
    if report.regressions.is_empty() && report.improvements.is_empty() {
        out.push_str(&format!(
            "<p>{} <span class=\"sub\">{} entries compared, none beyond tolerance</span></p>\n",
            badge("good", "no regressions"),
            report.compared
        ));
    } else {
        if !report.regressions.is_empty() {
            out.push_str(&format!("<p>{}</p>\n", badge("critical", "regressions")));
            out.push_str(
                "<table>\n<thead><tr><th>section</th><th>name</th><th class=\"num\">base</th>\
                 <th class=\"num\">cand</th><th class=\"num\">ratio</th></tr></thead>\n<tbody>\n",
            );
            for d in &report.regressions {
                out.push_str(&row(d));
            }
            out.push_str("</tbody>\n</table>\n");
        }
        if !report.improvements.is_empty() {
            out.push_str(&format!("<p>{}</p>\n", badge("good", "improvements")));
            out.push_str(
                "<table>\n<thead><tr><th>section</th><th>name</th><th class=\"num\">base</th>\
                 <th class=\"num\">cand</th><th class=\"num\">ratio</th></tr></thead>\n<tbody>\n",
            );
            for d in &report.improvements {
                out.push_str(&row(d));
            }
            out.push_str("</tbody>\n</table>\n");
        }
    }
    if !report.notes.is_empty() {
        out.push_str("<ul>\n");
        for n in &report.notes {
            out.push_str(&format!("<li class=\"muted\">{}</li>\n", esc(n)));
        }
        out.push_str("</ul>\n");
    }
    out.push_str("</section>\n");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::{ConvergenceSummary, HealthSummary, LedgerHistory};

    fn manifest() -> RunManifest {
        RunManifest {
            run_id: "unit-run".to_string(),
            command: "quickstart".to_string(),
            created_unix_ms: 1,
            git: "abc".to_string(),
            seed: 7,
            scale: "quickstart".to_string(),
            epoch_factor: 1.0,
            env: vec![("TABLEDC_HEALTH".to_string(), "strict".to_string())],
            health: HealthSummary::default(),
            convergence: Some(ConvergenceSummary {
                status: "converged".to_string(),
                epoch: Some(4),
                rule: "label churn <= 0.010".to_string(),
            }),
            metrics: vec![("tabledc/ari".to_string(), 0.9)],
            history: LedgerHistory {
                re_loss: vec![1.0, 0.5, 0.25],
                delta_label_frac: vec![1.0, 0.1, 0.0],
                ..LedgerHistory::default()
            },
        }
    }

    #[test]
    fn render_is_deterministic_and_carries_section_ids() {
        let m = manifest();
        let a = render(&m, None, None);
        let b = render(&m, None, None);
        assert_eq!(a, b);
        for id in ["run-header", "health", "convergence", "metrics", "series"] {
            assert!(a.contains(&format!("id=\"{id}\"")), "missing section {id}");
        }
        assert!(a.contains("id=\"spark-re_loss\""));
        assert!(a.contains("id=\"spark-delta_label_frac\""));
        // Empty series render no figure.
        assert!(!a.contains("id=\"spark-ce_loss\""));
        // No scripts, no external fetches, no NaN literals.
        assert!(!a.contains("<script"));
        assert!(!a.contains("http://") && !a.contains("https://"));
        assert!(!a.contains("NaN"));
    }

    #[test]
    fn non_finite_values_render_as_dashes() {
        let mut m = manifest();
        m.metrics.push(("tabledc/broken".to_string(), f64::NAN));
        m.history.re_loss = vec![1.0, f64::NAN, 0.5];
        let html = render(&m, None, None);
        assert!(!html.contains("NaN"));
        assert!(html.contains("–"));
        // The sparkline still renders from the finite points.
        assert!(html.contains("id=\"spark-re_loss\""));
    }

    #[test]
    fn all_nan_series_renders_placeholder_sparkline() {
        let mut m = manifest();
        m.history.re_loss = vec![f64::NAN, f64::NAN];
        let html = render(&m, None, None);
        assert!(html.contains("no finite points"));
        assert!(!html.contains("NaN"));
    }

    #[test]
    fn diff_section_flags_doctored_regression() {
        let base = manifest();
        let mut cand = manifest();
        cand.metrics[0].1 = 0.4;
        cand.health.verdict = "aborted".to_string();
        let html = render(&cand, Some(&base), None);
        assert!(html.contains("id=\"diff\""));
        assert!(html.contains("regressions"));
        assert!(html.contains("tabledc/ari"));
        // Baseline column appears in the metrics table.
        assert!(html.contains("baseline"));
    }

    #[test]
    fn trace_summary_folds_span_tree_with_self_times() {
        let trace = "\
{\"ts_ms\":0.0,\"run_id\":\"r1\",\"event\":\"span.enter\",\"span\":\"fit\",\"thread\":1}\n\
{\"ts_ms\":1.0,\"event\":\"span.enter\",\"span\":\"epoch\",\"thread\":1}\n\
{\"ts_ms\":4.0,\"event\":\"span.exit\",\"span\":\"epoch\",\"thread\":1}\n\
{\"ts_ms\":10.0,\"event\":\"span.exit\",\"span\":\"fit\",\"thread\":1}\n\
{\"ts_ms\":10.0,\"event\":\"tabledc.diag\",\"epoch\":0}\n";
        let t = summarize_trace(trace).expect("trace parses");
        assert_eq!(t.run_id.as_deref(), Some("r1"));
        assert_eq!(t.lines, 5);
        assert_eq!(t.events.get("tabledc.diag"), Some(&1));
        let fit = &t.spans["fit"];
        assert_eq!(fit.calls, 1);
        assert!((fit.total_ms - 10.0).abs() < 1e-9);
        assert!((fit.self_ms - 7.0).abs() < 1e-9);
        let epoch = &t.spans["fit;epoch"];
        assert!((epoch.total_ms - 3.0).abs() < 1e-9);

        let html = render(&manifest(), None, Some(&t));
        assert!(html.contains("id=\"profile\""));
        assert!(html.contains("tabledc.diag"));
    }

    #[test]
    fn summarize_trace_rejects_garbage() {
        assert!(summarize_trace("not json\n").is_err());
    }
}
