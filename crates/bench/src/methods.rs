//! The uniform method registry used by every experiment: the three
//! standard-clustering baselines, the five deep baselines, and TableDC,
//! all runnable through one interface.

use std::time::Instant;

use baselines::{Dcrn, DeepConfig, Dfcn, Edesc, Sdcn, Shgp};
use clustering::{Birch, Dbscan, KMeans};
use datagen::Task;
use rand::rngs::StdRng;
use tabledc::{TableDc, TableDcConfig};
use tensor::distance::euclidean;
use tensor::Matrix;

/// Every clustering method of Tables 2–4, in the paper's row order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Method {
    /// K-means (SC).
    KMeans,
    /// DBSCAN (SC).
    Dbscan,
    /// Birch (SC).
    Birch,
    /// SHGP (DC, self-supervised heterogeneous graph pretraining).
    Shgp,
    /// DCRN (DC, dual correlation reduction).
    Dcrn,
    /// DFCN (DC, deep fusion).
    Dfcn,
    /// EDESC (DC, deep embedded subspace clustering).
    Edesc,
    /// SDCN (DC, structural deep clustering).
    Sdcn,
    /// TableDC (this paper).
    TableDc,
}

impl Method {
    /// Paper row order for Tables 2–4.
    pub const ALL: [Method; 9] = [
        Method::KMeans,
        Method::Dbscan,
        Method::Birch,
        Method::Shgp,
        Method::Dcrn,
        Method::Dfcn,
        Method::Edesc,
        Method::Sdcn,
        Method::TableDc,
    ];

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Method::KMeans => "K-means",
            Method::Dbscan => "DBSCAN",
            Method::Birch => "Birch",
            Method::Shgp => "SHGP",
            Method::Dcrn => "DCRN",
            Method::Dfcn => "DFCN",
            Method::Edesc => "EDESC",
            Method::Sdcn => "SDCN",
            Method::TableDc => "TableDC",
        }
    }

    /// True for the deep (trained) methods.
    pub fn is_deep(self) -> bool {
        !matches!(self, Method::KMeans | Method::Dbscan | Method::Birch)
    }

    /// Runs the method on `x` targeting `k` clusters with the per-task
    /// training budget, returning labels and wall-clock seconds.
    pub fn run(
        self,
        x: &Matrix,
        k: usize,
        budget: &Budget,
        rng: &mut StdRng,
    ) -> (Vec<usize>, f64) {
        let start = Instant::now();
        let labels = match self {
            Method::KMeans => KMeans::paper_protocol(k).fit(x, rng).labels,
            Method::Dbscan => {
                let eps = median_knn_distance(x, 4);
                Dbscan::new(eps, 4).fit_assign_noise(x).labels
            }
            Method::Birch => Birch::new(k).fit(x, rng).labels,
            Method::Shgp => Shgp::new(budget.deep_config()).fit(x, k, rng).labels,
            Method::Dcrn => Dcrn::new(budget.deep_config()).fit(x, k, rng).labels,
            Method::Dfcn => Dfcn::new(budget.deep_config()).fit(x, k, rng).labels,
            Method::Edesc => Edesc::new(budget.deep_config()).fit(x, k, rng).labels,
            Method::Sdcn => Sdcn::new(budget.deep_config()).fit(x, k, rng).labels,
            Method::TableDc => {
                // Two restarts, best silhouette kept (the §4.3 protocol
                // applies 20 restarts to the K-means-based methods; deep
                // fits are costlier).
                let (_, fit) = TableDc::fit_best_of(budget.tabledc_config(k), x, 2, rng);
                fit.labels
            }
        };
        (labels, start.elapsed().as_secs_f64())
    }
}

/// Per-task training budget (§4.3: schema inference 200 epochs / pretrain
/// 30, domain discovery 100 / 30, entity resolution 50 / 100; all methods
/// share the same budget).
#[derive(Debug, Clone)]
pub struct Budget {
    /// Joint training epochs.
    pub epochs: usize,
    /// AE pretraining epochs.
    pub pretrain_epochs: usize,
    /// Latent dimension.
    pub latent_dim: usize,
    /// Adam learning rate.
    pub lr: f64,
}

impl Budget {
    /// The §4.3 budget for a task. Joint-epoch counts are the paper's
    /// (200/100/50); pretraining epochs are doubled relative to the paper's
    /// 30/30/100 because this codebase pretrains with batch 64 on scaled
    /// datasets, giving fewer gradient steps per epoch than the original's
    /// PyTorch runs on the full-size datasets (see EXPERIMENTS.md).
    pub fn for_task(task: Task) -> Self {
        match task {
            Task::SchemaInference => Self { epochs: 200, pretrain_epochs: 60, latent_dim: 48, lr: 1e-3 },
            Task::DomainDiscovery => Self { epochs: 100, pretrain_epochs: 120, latent_dim: 48, lr: 1e-3 },
            Task::EntityResolution => Self { epochs: 50, pretrain_epochs: 120, latent_dim: 48, lr: 1e-3 },
        }
    }

    /// A reduced budget for smoke tests and micro-benchmarks.
    pub fn quick() -> Self {
        Self { epochs: 25, pretrain_epochs: 10, latent_dim: 16, lr: 1e-3 }
    }

    /// Scales the *joint* epoch count by `f` (at least 1 epoch).
    /// Pretraining is left intact: a weak autoencoder invalidates every
    /// deep method at once, so the cheap/quick modes only trade away
    /// self-training refinement.
    pub fn scaled(mut self, f: f64) -> Self {
        self.epochs = ((self.epochs as f64 * f) as usize).max(1);
        self
    }

    /// Shared configuration for the deep baselines.
    pub fn deep_config(&self) -> DeepConfig {
        DeepConfig {
            latent_dim: self.latent_dim,
            pretrain_epochs: self.pretrain_epochs,
            epochs: self.epochs,
            lr: self.lr,
            knn_k: 5,
        }
    }

    /// Configuration for TableDC under the same budget.
    pub fn tabledc_config(&self, k: usize) -> TableDcConfig {
        TableDcConfig {
            latent_dim: self.latent_dim,
            pretrain_epochs: self.pretrain_epochs,
            epochs: self.epochs,
            lr: self.lr,
            ..TableDcConfig::new(k)
        }
    }
}

/// Median distance to the `k`-th nearest neighbour — the standard DBSCAN
/// eps heuristic.
pub fn median_knn_distance(x: &Matrix, k: usize) -> f64 {
    let n = x.rows();
    let k = k.min(n.saturating_sub(1)).max(1);
    let mut kth: Vec<f64> = (0..n)
        .map(|i| {
            let mut d: Vec<f64> =
                (0..n).filter(|&j| j != i).map(|j| euclidean(x.row(i), x.row(j))).collect();
            d.sort_by(|a, b| a.partial_cmp(b).expect("NaN distance"));
            d[k - 1]
        })
        .collect();
    kth.sort_by(|a, b| a.partial_cmp(b).expect("NaN distance"));
    kth[n / 2]
}

#[cfg(test)]
mod tests {
    use super::*;
    use clustering::metrics::accuracy;
    use datagen::{generate_mixture, MixtureConfig};
    use tensor::random::rng;

    #[test]
    fn every_method_runs_on_a_small_mixture() {
        let g = generate_mixture(
            &MixtureConfig { n: 40, k: 3, dim: 8, separation: 4.0, ..Default::default() },
            &mut rng(1),
        );
        let budget = Budget::quick();
        for method in Method::ALL {
            let (labels, secs) = method.run(&g.x, 3, &budget, &mut rng(2));
            assert_eq!(labels.len(), 40, "{}", method.name());
            assert!(secs >= 0.0);
            // On a well-separated mixture everything should beat chance.
            let acc = accuracy(&labels, &g.labels);
            assert!(acc > 0.4, "{} acc = {acc}", method.name());
        }
    }

    #[test]
    fn budget_matches_paper_epochs() {
        assert_eq!(Budget::for_task(Task::SchemaInference).epochs, 200);
        assert_eq!(Budget::for_task(Task::DomainDiscovery).epochs, 100);
        let er = Budget::for_task(Task::EntityResolution);
        assert_eq!(er.epochs, 50);
        // Pretraining epochs exceed the paper's 100 because this codebase's
        // minibatch epochs make fewer updates on the scaled datasets.
        assert!(er.pretrain_epochs >= 100);
    }

    #[test]
    fn median_knn_distance_on_grid() {
        // Unit-spaced points on a line: 1-NN distance is 1 everywhere.
        let x = Matrix::from_row_vecs(&(0..10).map(|i| vec![i as f64]).collect::<Vec<_>>());
        assert!((median_knn_distance(&x, 1) - 1.0).abs() < 1e-12);
    }
}
