//! Minimal JSON support: string escaping for the event sink's writer and a
//! small recursive-descent parser used to *validate* emitted JSON-lines
//! (tests, the `trace_check` tool, and `results/verify.sh`).

use std::fmt::Write as _;

/// Appends `s` to `out` as a quoted, escaped JSON string.
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a JSON number for `v`; non-finite values become `null`.
pub fn number_into(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// A parsed JSON value. Objects preserve key order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Parses one complete JSON document, rejecting trailing garbage.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected {:?} at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn literal(&mut self, text: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar from the source slice.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid UTF-8")?;
                    let c = s.chars().next().ok_or("unterminated string")?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number {text:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips_through_parser() {
        let nasty = "a\"b\\c\nd\te\u{1}f — ünïcode";
        let mut line = String::from("{\"k\":");
        escape_into(&mut line, nasty);
        line.push('}');
        let parsed = parse(&line).expect("parses");
        assert_eq!(parsed.get("k").unwrap().as_str(), Some(nasty));
    }

    #[test]
    fn numbers_parse_including_exponents() {
        let v = parse("[0, -1.5, 2e3, 6.02e-2]").unwrap();
        match v {
            Json::Arr(items) => {
                let nums: Vec<f64> = items.iter().map(|j| j.as_f64().unwrap()).collect();
                assert_eq!(nums, vec![0.0, -1.5, 2000.0, 0.0602]);
            }
            _ => panic!("expected array"),
        }
    }

    #[test]
    fn non_finite_numbers_serialize_as_null() {
        let mut s = String::new();
        number_into(&mut s, f64::NAN);
        s.push(',');
        number_into(&mut s, f64::INFINITY);
        s.push(',');
        number_into(&mut s, 1.25);
        assert_eq!(s, "null,null,1.25");
    }

    #[test]
    fn objects_support_lookup_and_nesting() {
        let v = parse(r#"{"a": {"b": [1, true, null]}, "c": "x"}"#).unwrap();
        assert_eq!(v.get("c").unwrap().as_str(), Some("x"));
        let inner = v.get("a").unwrap().get("b").unwrap();
        assert_eq!(inner, &Json::Arr(vec![Json::Num(1.0), Json::Bool(true), Json::Null]));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "tru", "\"unterminated", "{} extra", "01a"] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }
}
