//! Opt-in allocation tracking: a std-only `#[global_allocator]` wrapper
//! that attributes bytes and allocation counts to the innermost active
//! span (see [`crate::profile`]).
//!
//! Off by default and free when off (one relaxed atomic load per
//! allocation). Enabled by `TABLEDC_PROFILE=alloc` in the environment
//! (comma-separated modes; only `alloc` is recognized today) or
//! [`set_alloc_tracking`] at runtime.
//!
//! ## Safety constraints inside the hook
//!
//! The hook runs inside `alloc`/`dealloc`, so it must never allocate,
//! never lock the span-tree mutex (tree operations allocate while holding
//! it → deadlock), and never touch lazily-initialized or `Drop`-carrying
//! thread-locals. It therefore only:
//!
//! - reads a const-initialized `Cell<NodeId>` for the innermost span,
//! - guards against re-entry with a const-initialized `Cell<bool>`
//!   (reading the environment on first use allocates, which would
//!   otherwise recurse), and
//! - `fetch_add`s into fixed static atomic arrays indexed by node id.
//!
//! Attribution is by *allocating span*: bytes allocated inside a span and
//! freed later still count against the allocator, which is the number
//! that matters for allocation-rate profiling. `LIVE`/`PEAK` track the
//! process-wide live heap for a high-water-mark readout.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::sync::atomic::{AtomicU8, AtomicU64, Ordering};

use crate::profile::{ROOT, MAX_NODES};

/// Environment variable selecting profile modes (`alloc` enables the
/// tracking allocator).
pub const PROFILE_ENV: &str = "TABLEDC_PROFILE";

const STATE_UNKNOWN: u8 = 0;
const STATE_OFF: u8 = 1;
const STATE_ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(STATE_UNKNOWN);

/// Per-node attribution, fixed-size so the hook never allocates.
static BYTES: [AtomicU64; MAX_NODES] = [const { AtomicU64::new(0) }; MAX_NODES];
static COUNTS: [AtomicU64; MAX_NODES] = [const { AtomicU64::new(0) }; MAX_NODES];

/// Process-wide live-heap gauge and its high-water mark.
static LIVE: AtomicU64 = AtomicU64::new(0);
static PEAK: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Re-entrancy guard: reading `TABLEDC_PROFILE` (and any accidental
    /// future allocation in the slow path) must not recurse into
    /// accounting.
    static IN_HOOK: Cell<bool> = const { Cell::new(false) };
}

/// True when allocation tracking is active.
pub fn tracking_enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        STATE_ON => true,
        STATE_OFF => false,
        _ => init_state(),
    }
}

#[cold]
fn init_state() -> bool {
    // env::var allocates; IN_HOOK is already set when we get here from the
    // allocator hook, so the nested allocations skip accounting instead of
    // recursing.
    let on = std::env::var(PROFILE_ENV)
        .map(|v| v.split(',').any(|m| m.trim().eq_ignore_ascii_case("alloc")))
        .unwrap_or(false);
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
    on
}

/// Forces allocation tracking on or off, overriding the environment.
/// Intended for tests; production use goes through `TABLEDC_PROFILE`.
pub fn set_alloc_tracking(on: bool) {
    STATE.store(if on { STATE_ON } else { STATE_OFF }, Ordering::Relaxed);
}

/// `(bytes, count)` attributed to tree node `id`.
pub(crate) fn node_totals(id: usize) -> (u64, u64) {
    if id < MAX_NODES {
        (BYTES[id].load(Ordering::Relaxed), COUNTS[id].load(Ordering::Relaxed))
    } else {
        (0, 0)
    }
}

/// `(bytes, count)` allocated while no span was active.
pub(crate) fn unattributed_totals() -> (u64, u64) {
    node_totals(ROOT as usize)
}

/// High-water mark of the live heap since process start (or the last
/// [`reset_counters`]), in bytes. Only meaningful while tracking is on.
pub fn peak_bytes() -> u64 {
    PEAK.load(Ordering::Relaxed)
}

/// Clears per-node attribution and the peak gauge (test isolation).
pub(crate) fn reset_counters() {
    for i in 0..MAX_NODES {
        BYTES[i].store(0, Ordering::Relaxed);
        COUNTS[i].store(0, Ordering::Relaxed);
    }
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

#[inline]
fn on_alloc(size: usize) {
    IN_HOOK.with(|g| {
        if g.replace(true) {
            return; // re-entrant (env read or nested accounting): skip
        }
        if tracking_enabled() {
            let node = crate::profile::current_node() as usize;
            let idx = if node < MAX_NODES { node } else { ROOT as usize };
            BYTES[idx].fetch_add(size as u64, Ordering::Relaxed);
            COUNTS[idx].fetch_add(1, Ordering::Relaxed);
            let live = LIVE.fetch_add(size as u64, Ordering::Relaxed) + size as u64;
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        g.set(false);
    });
}

#[inline]
fn on_dealloc(size: usize) {
    IN_HOOK.with(|g| {
        if g.replace(true) {
            return;
        }
        if tracking_enabled() {
            // Saturating: frees of blocks allocated before tracking was
            // switched on must not wrap the gauge.
            let _ = LIVE.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(size as u64))
            });
        }
        g.set(false);
    });
}

/// System-allocator wrapper attributing allocations to the innermost
/// active span. Installed as the `#[global_allocator]` in
/// [`crate`](crate), so every binary linking `obs` gets opt-in tracking
/// for free.
pub struct TrackingAlloc;

// SAFETY: defers every allocation to `System` unchanged; the accounting
// hooks never allocate, unwind, or touch the returned pointers.
unsafe impl GlobalAlloc for TrackingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        on_dealloc(layout.size());
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            // Model as free-then-alloc so the live gauge stays exact and
            // the growth is attributed to the current span.
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracking_attributes_bytes_to_the_active_span() {
        crate::test_support::with_sink_disabled(|| {
            set_alloc_tracking(true);
            let before = {
                let _s = crate::span("alloctest.attribution");
                // Force a heap allocation visibly inside the span.
                let v: Vec<u64> = Vec::with_capacity(4096);
                std::hint::black_box(&v);
                crate::profile::snapshot()
                    .iter()
                    .find(|n| n.name == "alloctest.attribution")
                    .map(|n| n.alloc_bytes)
            };
            set_alloc_tracking(false);
            // The node exists only after first exit; re-snapshot post-drop.
            let bytes = crate::profile::snapshot()
                .iter()
                .find(|n| n.name == "alloctest.attribution")
                .map(|n| n.alloc_bytes)
                .or(before)
                .unwrap_or(0);
            assert!(
                bytes >= 4096 * 8,
                "span should own at least the Vec's 32 KiB, got {bytes}"
            );
        });
    }

    #[test]
    fn tracking_off_is_inert() {
        set_alloc_tracking(false);
        let v: Vec<u8> = vec![0; 1024];
        std::hint::black_box(&v);
        // Nothing to assert beyond "does not crash/deadlock": the hook
        // takes the single-load fast path.
    }
}
