//! Log-bucketed histogram with quantile readout.
//!
//! Values are assigned to geometrically spaced buckets: bucket 0 catches
//! everything below [`MIN_BOUND`] (including zero and negatives), buckets
//! `1..NUM_BUCKETS-1` each span a factor of `2^(1/SUB_PER_OCTAVE)` (≈19%),
//! and the last bucket is open-ended. With `MIN_BOUND = 1e-3` (one
//! microsecond when recording milliseconds) the layout covers five decades
//! up to roughly an hour before saturating.
//!
//! Quantile estimates return the geometric midpoint of the selected bucket
//! clamped to the observed min/max, so the relative error of any quantile
//! of positive data is bounded by one bucket width.

/// Number of buckets, including the underflow and overflow buckets.
pub const NUM_BUCKETS: usize = 128;

/// Upper bound (exclusive) of the underflow bucket.
pub const MIN_BOUND: f64 = 1e-3;

/// Sub-buckets per doubling of the value.
const SUB_PER_OCTAVE: f64 = 4.0;

/// A mergeable log-bucketed histogram of `f64` samples.
///
/// NaN samples are ignored; every other value (including zero and
/// negatives, which land in the underflow bucket) is counted.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// The bucket index a value falls into. Buckets are half-open
    /// `[lower, upper)` intervals, so exact bucket boundaries belong to the
    /// higher bucket.
    pub fn bucket_index(v: f64) -> usize {
        if !(v >= MIN_BOUND) {
            return 0; // below range, zero, negative, or NaN
        }
        let raw = ((v / MIN_BOUND).log2() * SUB_PER_OCTAVE).floor();
        1 + raw.min((NUM_BUCKETS - 2) as f64) as usize
    }

    /// The `[lower, upper)` value bounds of bucket `i`. Bucket 0 is
    /// `[-inf, MIN_BOUND)`; the last bucket is open-ended.
    pub fn bucket_bounds(i: usize) -> (f64, f64) {
        assert!(i < NUM_BUCKETS, "bucket index {i} out of range");
        if i == 0 {
            return (f64::NEG_INFINITY, MIN_BOUND);
        }
        let lo = MIN_BOUND * 2f64.powf((i as f64 - 1.0) / SUB_PER_OCTAVE);
        let hi = if i == NUM_BUCKETS - 1 {
            f64::INFINITY
        } else {
            MIN_BOUND * 2f64.powf(i as f64 / SUB_PER_OCTAVE)
        };
        (lo, hi)
    }

    /// Records one sample. NaN is ignored.
    pub fn record(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        self.counts[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Merges another histogram into this one (same fixed bucket layout).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Estimates the `q`-quantile (`q` clamped to `[0, 1]`): the value at
    /// rank `ceil(q·count)`. Returns 0.0 for an empty histogram. The
    /// estimate is the geometric midpoint of the rank's bucket, clamped to
    /// the observed `[min, max]`.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let (lo, hi) = Self::bucket_bounds(i);
                let est = if i == 0 {
                    MIN_BOUND / 2.0
                } else if i == NUM_BUCKETS - 1 {
                    // The overflow bucket is unbounded, so its geometric
                    // midpoint is meaningless; the observed max is the
                    // only honest estimate (`lo` could undershoot by
                    // hundreds of decades).
                    self.max
                } else {
                    (lo * hi).sqrt()
                };
                return est.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest recorded sample (0.0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest recorded sample (0.0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One bucket spans a factor of 2^(1/4); the geometric-midpoint
    /// estimate is therefore within 2^(1/4) of the true order statistic
    /// for positive in-range data.
    const MAX_RATIO: f64 = 1.1893; // 2^(1/4) + fp slack

    fn oracle_quantile(sorted: &[f64], q: f64) -> f64 {
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    #[test]
    fn quantiles_match_sorted_vector_oracle() {
        // Deterministic pseudo-random positive values across 6 decades.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut values: Vec<f64> = (0..5000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let u = (state >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
                10f64.powf(-2.0 + 6.0 * u) // 1e-2 .. 1e4
            })
            .collect();
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_by(f64::total_cmp);
        for q in [0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.0] {
            let est = h.quantile(q);
            let truth = oracle_quantile(&values, q);
            let ratio = (est / truth).max(truth / est);
            assert!(
                ratio <= MAX_RATIO,
                "q={q}: est {est} vs oracle {truth} (ratio {ratio})"
            );
        }
    }

    #[test]
    fn quantile_extremes_and_empty() {
        let mut h = Histogram::new();
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.count(), 0);
        assert_eq!(h.min(), 0.0);
        assert_eq!(h.max(), 0.0);
        h.record(7.0);
        // A single sample is every quantile, exactly (clamped to min/max).
        assert_eq!(h.quantile(0.0), 7.0);
        assert_eq!(h.quantile(0.5), 7.0);
        assert_eq!(h.quantile(1.0), 7.0);
    }

    #[test]
    fn empty_histogram_every_quantile_is_zero() {
        let h = Histogram::new();
        for q in [-1.0, 0.0, 0.25, 0.5, 0.99, 1.0, 2.0, f64::NAN] {
            assert_eq!(h.quantile(q), 0.0, "q = {q}");
        }
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.sum(), 0.0);
    }

    #[test]
    fn single_sample_is_every_quantile_for_any_magnitude() {
        // One sample in the underflow, mid-range, and overflow regimes:
        // clamping to [min, max] must make it exact in all three.
        for v in [1e-9, 0.5, 3.25, 1e12] {
            let mut h = Histogram::new();
            h.record(v);
            for q in [0.0, 0.01, 0.5, 0.99, 1.0] {
                assert_eq!(h.quantile(q), v, "v = {v}, q = {q}");
            }
            assert_eq!(h.min(), v);
            assert_eq!(h.max(), v);
            assert_eq!(h.count(), 1);
        }
    }

    #[test]
    fn overflow_bucket_does_not_misreport_max() {
        // Values far past the top log bucket must neither panic nor pull
        // high quantiles down to the last bucket's lower bound (~3e6 when
        // recording milliseconds).
        let mut h = Histogram::new();
        for _ in 0..90 {
            h.record(1.0);
        }
        for _ in 0..10 {
            h.record(1e300);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.max(), 1e300);
        assert_eq!(h.quantile(1.0), 1e300, "p100 must report the observed max");
        assert_eq!(h.quantile(0.95), 1e300, "rank 95 falls in the overflow bucket");
        // Low quantiles are untouched by the overflow samples.
        assert!(h.quantile(0.5) <= 2.0);
        // Infinity saturates the same bucket without panicking.
        h.record(f64::INFINITY);
        assert_eq!(h.max(), f64::INFINITY);
        assert_eq!(h.quantile(1.0), f64::INFINITY);
    }

    #[test]
    fn bucket_boundaries_are_half_open() {
        // Exact powers of two have exact log2, so boundary behaviour is
        // deterministic: a boundary value belongs to the *higher* bucket.
        for k in 0..10u32 {
            let v = MIN_BOUND * 2f64.powi(k as i32);
            let i = Histogram::bucket_index(v);
            assert_eq!(i, 1 + 4 * k as usize, "v = {v}");
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert!(lo <= v && v < hi, "v = {v} not in [{lo}, {hi})");
        }
        // Below the range, zero, and negatives land in the underflow bucket.
        assert_eq!(Histogram::bucket_index(0.0), 0);
        assert_eq!(Histogram::bucket_index(-3.0), 0);
        assert_eq!(Histogram::bucket_index(MIN_BOUND * 0.999), 0);
        assert_eq!(Histogram::bucket_index(f64::NAN), 0);
        // Far beyond the range saturates into the overflow bucket.
        assert_eq!(Histogram::bucket_index(f64::INFINITY), NUM_BUCKETS - 1);
        assert_eq!(Histogram::bucket_index(1e300), NUM_BUCKETS - 1);
    }

    #[test]
    fn bucket_bounds_tile_the_positive_axis() {
        for i in 1..NUM_BUCKETS - 1 {
            let (_, hi) = Histogram::bucket_bounds(i);
            let (lo_next, _) = Histogram::bucket_bounds(i + 1);
            assert!(
                (hi / lo_next - 1.0).abs() < 1e-12,
                "gap between buckets {i} and {}",
                i + 1
            );
        }
    }

    #[test]
    fn merge_equals_recording_the_union() {
        let values_a = [0.002, 0.5, 1.0, 30.0, 1e5];
        let values_b = [0.0001, 2.5, 2.5, 700.0];
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut union = Histogram::new();
        for &v in &values_a {
            a.record(v);
            union.record(v);
        }
        for &v in &values_b {
            b.record(v);
            union.record(v);
        }
        a.merge(&b);
        assert_eq!(a, union);
        assert_eq!(a.count(), 9);
        assert!((a.sum() - union.sum()).abs() < 1e-12);
        for q in [0.1, 0.5, 0.9] {
            assert_eq!(a.quantile(q), union.quantile(q));
        }
    }

    #[test]
    fn merge_into_empty_copies_the_other_side() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        b.record(4.2);
        b.record(0.7);
        a.merge(&b);
        assert_eq!(a, b);
    }

    #[test]
    fn nan_samples_are_ignored() {
        let mut h = Histogram::new();
        h.record(f64::NAN);
        assert_eq!(h.count(), 0);
        h.record(1.0);
        h.record(f64::NAN);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(0.5), 1.0);
    }

    #[test]
    fn mean_min_max_track_samples() {
        let mut h = Histogram::new();
        for v in [1.0, 2.0, 3.0] {
            h.record(v);
        }
        assert!((h.mean() - 2.0).abs() < 1e-12);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 3.0);
    }
}
