//! The hierarchical span tree: per-thread span stacks give every span a
//! parent, and a process-wide tree accumulates total time, self time, call
//! counts, and (with [`crate::alloc`] tracking on) allocation stats per
//! node.
//!
//! ## Model
//!
//! Each thread keeps a stack of active frames. [`enter`] resolves a tree
//! node from `(parent, name)` — the parent being the innermost active
//! frame — pushes a frame, and publishes the node id in a plain
//! thread-local [`Cell`] the allocation hook can read without locks or
//! borrows. [`exit`] pops the frame, attributes `elapsed − time spent in
//! child spans on this thread` as *self time*, and adds the elapsed time
//! to the parent frame's child accumulator.
//!
//! ## Cross-thread propagation
//!
//! [`current_context`] captures the innermost active node; a worker thread
//! re-enters it with [`enter_context`] before running a task, so spans
//! created inside parallel kernels nest under their logical parent instead
//! of becoming orphan roots. A context frame is bookkeeping only: it is
//! never timed and records nothing when popped. Consequently a parent's
//! *total* time is its own wall time, while its children may sum to more —
//! concurrent children on N threads legitimately accumulate up to N× the
//! parent's wall time. Self time is only meaningful on the thread that ran
//! the span, which is exactly what the per-thread child accumulator
//! measures.
//!
//! ## Determinism
//!
//! Like the rest of this crate, the tree only observes: no kernel reads it,
//! so profiling cannot perturb reduction trees or schedules (beyond wall
//! time). Exports ([`snapshot`], [`folded`], [`report`]) order children by
//! name, so traced-run diffs are stable.

use std::borrow::Cow;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::{Mutex, MutexGuard, OnceLock};

pub(crate) type NodeId = u32;

/// The synthetic root every top-level span hangs off (also the slot that
/// absorbs allocations made outside any span).
pub(crate) const ROOT: NodeId = 0;

/// Hard cap on distinct tree nodes. Span names are a small static set, so
/// this is generous; if exceeded (e.g. unbounded dynamic names), further
/// `(parent, name)` pairs collapse into their parent node instead of
/// growing without bound.
pub(crate) const MAX_NODES: usize = 4096;

struct Node {
    name: Cow<'static, str>,
    children: Vec<NodeId>,
    calls: u64,
    total_ns: u64,
    self_ns: u64,
}

struct Tree {
    nodes: Vec<Node>,
}

impl Tree {
    fn new() -> Self {
        Self {
            nodes: vec![Node {
                name: Cow::Borrowed("(root)"),
                children: Vec::new(),
                calls: 0,
                total_ns: 0,
                self_ns: 0,
            }],
        }
    }

    /// Finds or creates the child of `parent` named `name`.
    fn intern(&mut self, parent: NodeId, name: &Cow<'static, str>) -> NodeId {
        let parent = if (parent as usize) < self.nodes.len() { parent } else { ROOT };
        for &c in &self.nodes[parent as usize].children {
            if self.nodes[c as usize].name == *name {
                return c;
            }
        }
        if self.nodes.len() >= MAX_NODES {
            return parent; // saturated: attribute to the parent
        }
        let id = self.nodes.len() as NodeId;
        self.nodes.push(Node {
            name: name.clone(),
            children: Vec::new(),
            calls: 0,
            total_ns: 0,
            self_ns: 0,
        });
        self.nodes[parent as usize].children.push(id);
        id
    }
}

fn tree() -> &'static Mutex<Tree> {
    static TREE: OnceLock<Mutex<Tree>> = OnceLock::new();
    TREE.get_or_init(|| Mutex::new(Tree::new()))
}

fn lock(m: &Mutex<Tree>) -> MutexGuard<'_, Tree> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// One activation record on a thread's span stack.
struct Frame {
    node: NodeId,
    /// Nanoseconds spent in completed child spans of this activation.
    child_ns: u64,
    /// True for [`enter_context`] frames, which are never timed.
    context: bool,
}

thread_local! {
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };
    /// The innermost active node, readable from the allocation hook with a
    /// single `Cell` load (no locks, no `RefCell` borrow, no allocation).
    static CURRENT: Cell<NodeId> = const { Cell::new(ROOT) };
}

/// The innermost active node on this thread (for the allocation hook).
pub(crate) fn current_node() -> NodeId {
    CURRENT.with(Cell::get)
}

/// Begins a span activation: resolves the tree node under the innermost
/// active frame and pushes a new frame. Called by [`crate::span`].
pub(crate) fn enter(name: &Cow<'static, str>) -> NodeId {
    let parent = CURRENT.with(Cell::get);
    let id = lock(tree()).intern(parent, name);
    STACK.with(|s| s.borrow_mut().push(Frame { node: id, child_ns: 0, context: false }));
    CURRENT.with(|c| c.set(id));
    id
}

/// Ends a span activation, recording `elapsed_ns` total and the derived
/// self time. A span dropped on a different thread than it started on (the
/// frame no longer matches) still records calls and total time, but no
/// self time and no stack mutation.
pub(crate) fn exit(id: NodeId, elapsed_ns: u64) {
    let child_ns = STACK.with(|s| {
        let mut st = s.borrow_mut();
        match st.last() {
            Some(f) if f.node == id && !f.context => {
                let frame = st.pop().expect("non-empty: just matched");
                if let Some(parent) = st.last_mut() {
                    parent.child_ns += elapsed_ns;
                    CURRENT.with(|c| c.set(parent.node));
                } else {
                    CURRENT.with(|c| c.set(ROOT));
                }
                Some(frame.child_ns)
            }
            _ => None,
        }
    });
    let self_ns = child_ns.map_or(0, |c| elapsed_ns.saturating_sub(c));
    let mut t = lock(tree());
    if let Some(node) = t.nodes.get_mut(id as usize) {
        node.calls += 1;
        node.total_ns += elapsed_ns;
        node.self_ns += self_ns;
    }
}

/// A capture of the innermost active span, cheap to copy across threads.
#[derive(Debug, Clone, Copy)]
pub struct SpanContext(NodeId);

/// Captures the innermost active span on the calling thread. Pair with
/// [`enter_context`] on the receiving thread so spawned work nests under
/// its logical parent. With no span active, the context is the root (and
/// re-entering it is a no-op nesting-wise).
pub fn current_context() -> SpanContext {
    SpanContext(CURRENT.with(Cell::get))
}

/// RAII guard restoring the previous ambient span on drop.
#[must_use = "bind to a variable; dropping immediately removes the context"]
pub struct ContextGuard {
    node: NodeId,
    prev: NodeId,
}

/// Installs `ctx` as the ambient parent for spans created on this thread
/// until the guard drops. Used by the runtime pool at task boundaries; the
/// frame itself is never timed or recorded.
pub fn enter_context(ctx: SpanContext) -> ContextGuard {
    let prev = CURRENT.with(Cell::get);
    STACK.with(|s| s.borrow_mut().push(Frame { node: ctx.0, child_ns: 0, context: true }));
    CURRENT.with(|c| c.set(ctx.0));
    ContextGuard { node: ctx.0, prev }
}

impl Drop for ContextGuard {
    fn drop(&mut self) {
        STACK.with(|s| {
            let mut st = s.borrow_mut();
            if matches!(st.last(), Some(f) if f.context && f.node == self.node) {
                st.pop();
            }
        });
        CURRENT.with(|c| c.set(self.prev));
    }
}

/// One node of the span tree, flattened depth-first for export.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Span name (the `span!` argument).
    pub name: String,
    /// `;`-joined path from the tree root to this node (folded-stack key).
    pub path: String,
    /// Nesting depth (top-level spans are 0).
    pub depth: usize,
    /// Completed activations.
    pub calls: u64,
    /// Total wall milliseconds across activations.
    pub total_ms: f64,
    /// Milliseconds not spent in same-thread child spans.
    pub self_ms: f64,
    /// Bytes allocated while this node was innermost (0 unless
    /// `TABLEDC_PROFILE=alloc`).
    pub alloc_bytes: u64,
    /// Allocation count while this node was innermost.
    pub allocs: u64,
}

/// Depth-first snapshot of the span tree, children ordered by name.
/// The synthetic root is omitted; an empty vec means no span has completed.
pub fn snapshot() -> Vec<SpanNode> {
    let t = lock(tree());
    let mut out = Vec::new();
    // (node, depth, path-prefix) work stack; children pushed in reverse
    // name order so they pop in name order.
    let mut stack: Vec<(NodeId, usize, String)> = Vec::new();
    let mut roots = t.nodes[ROOT as usize].children.clone();
    roots.sort_by(|&a, &b| t.nodes[a as usize].name.cmp(&t.nodes[b as usize].name));
    for &r in roots.iter().rev() {
        stack.push((r, 0, String::new()));
    }
    while let Some((id, depth, prefix)) = stack.pop() {
        let node = &t.nodes[id as usize];
        let path = if prefix.is_empty() {
            node.name.to_string()
        } else {
            format!("{prefix};{}", node.name)
        };
        let (alloc_bytes, allocs) = crate::alloc::node_totals(id as usize);
        out.push(SpanNode {
            name: node.name.to_string(),
            path: path.clone(),
            depth,
            calls: node.calls,
            total_ms: node.total_ns as f64 / 1e6,
            self_ms: node.self_ns as f64 / 1e6,
            alloc_bytes,
            allocs,
        });
        let mut kids = node.children.clone();
        kids.sort_by(|&a, &b| t.nodes[a as usize].name.cmp(&t.nodes[b as usize].name));
        for &k in kids.iter().rev() {
            stack.push((k, depth + 1, path.clone()));
        }
    }
    out
}

/// Aggregate of every node sharing a span name, regardless of position in
/// the tree — the "per-phase" rows `perfdiff` compares across runs.
#[derive(Debug, Clone, Default)]
pub struct PhaseTotals {
    /// Completed activations.
    pub calls: u64,
    /// Summed total milliseconds. Nested same-name activations double
    /// count here; [`PhaseTotals::self_ms`] never does.
    pub total_ms: f64,
    /// Summed self milliseconds (disjoint across the tree by
    /// construction).
    pub self_ms: f64,
    /// Summed attributed allocation bytes.
    pub alloc_bytes: u64,
}

/// Per-span-name aggregation of the tree, sorted by name.
pub fn aggregate() -> BTreeMap<String, PhaseTotals> {
    let mut out: BTreeMap<String, PhaseTotals> = BTreeMap::new();
    for node in snapshot() {
        let entry = out.entry(node.name).or_default();
        entry.calls += node.calls;
        entry.total_ms += node.total_ms;
        entry.self_ms += node.self_ms;
        entry.alloc_bytes += node.alloc_bytes;
    }
    out
}

/// The span tree in folded-stack format: one `path self_time_us` line per
/// node (calls > 0), deterministically ordered, consumable by standard
/// flamegraph tooling (`flamegraph.pl`, inferno, speedscope).
pub fn folded() -> String {
    let mut out = String::new();
    for node in snapshot() {
        if node.calls == 0 {
            continue;
        }
        out.push_str(&node.path);
        out.push(' ');
        out.push_str(&format!("{}", (node.self_ms * 1e3).round() as u64));
        out.push('\n');
    }
    out
}

/// Name of the environment variable naming a file to receive the folded
/// span tree (written by [`write_folded_if_requested`]).
pub const FOLDED_ENV: &str = "TABLEDC_FOLDED";

/// Writes [`folded`] to the path named by `TABLEDC_FOLDED`, if set.
/// Returns the path written, `None` when the variable is unset/empty.
/// Call at end-of-run from binaries/examples.
pub fn write_folded_if_requested() -> Option<String> {
    let path = std::env::var(FOLDED_ENV).ok()?;
    let path = path.trim().to_string();
    if path.is_empty() {
        return None;
    }
    match std::fs::write(&path, folded()) {
        Ok(()) => Some(path),
        Err(e) => {
            eprintln!("obs: cannot write {FOLDED_ENV} target {path:?}: {e}");
            None
        }
    }
}

/// Human-readable indented span-tree table: calls, total/self ms, and —
/// when allocation tracking is on — attributed bytes and counts.
pub fn report() -> String {
    let nodes = snapshot();
    let mut out = String::from("\n== span tree ==\n");
    if nodes.is_empty() {
        out.push_str("(no spans recorded)\n");
        return out;
    }
    let alloc_on = crate::alloc::tracking_enabled();
    out.push_str(&format!(
        "  {:<38} {:>9} {:>12} {:>12}{}\n",
        "span",
        "calls",
        "total_ms",
        "self_ms",
        if alloc_on { format!(" {:>14} {:>9}", "alloc_bytes", "allocs") } else { String::new() }
    ));
    for n in &nodes {
        let label = format!("{}{}", "  ".repeat(n.depth), n.name);
        out.push_str(&format!(
            "  {:<38} {:>9} {:>12.3} {:>12.3}{}\n",
            label,
            n.calls,
            n.total_ms,
            n.self_ms,
            if alloc_on {
                format!(" {:>14} {:>9}", n.alloc_bytes, n.allocs)
            } else {
                String::new()
            }
        ));
    }
    if alloc_on {
        let (bytes, count) = crate::alloc::unattributed_totals();
        out.push_str(&format!(
            "  {:<38} {:>9} {:>12} {:>12} {:>14} {:>9}\n",
            "(outside any span)", "-", "-", "-", bytes, count
        ));
        out.push_str(&format!(
            "  peak live heap: {} bytes\n",
            crate::alloc::peak_bytes()
        ));
    }
    out
}

/// Drops every recorded span (test isolation). Frames still active on any
/// thread keep their node ids; their eventual exits are ignored if the id
/// no longer exists. Allocation counters are cleared too.
pub fn reset() {
    let mut t = lock(tree());
    *t = Tree::new();
    crate::alloc::reset_counters();
}

/// Re-export: turns allocation tracking on/off at runtime (tests; the
/// `TABLEDC_PROFILE=alloc` environment variable is the production switch).
pub use crate::alloc::set_alloc_tracking;
/// Re-export: true when allocation tracking is active.
pub use crate::alloc::tracking_enabled as alloc_tracking_enabled;
/// Re-export: name of the profile-mode environment variable.
pub use crate::alloc::PROFILE_ENV;

#[cfg(test)]
mod tests {
    use super::*;

    // Span-creating tests run under the sink test lock (disabled sink) so
    // they cannot leak `span.enter` events into concurrently captured
    // memory sinks elsewhere in this binary.

    #[test]
    fn nested_spans_build_a_tree_with_self_time() {
        crate::test_support::with_sink_disabled(|| {
            {
                let _outer = crate::span("profiletest.outer");
                std::thread::sleep(std::time::Duration::from_millis(4));
                {
                    let _inner = crate::span("profiletest.inner");
                    std::thread::sleep(std::time::Duration::from_millis(4));
                }
            }
            let nodes = snapshot();
            let outer = nodes
                .iter()
                .find(|n| n.path == "profiletest.outer")
                .expect("outer node present");
            let inner = nodes
                .iter()
                .find(|n| n.path == "profiletest.outer;profiletest.inner")
                .expect("inner nested under outer");
            assert!(outer.calls >= 1);
            assert!(inner.calls >= 1);
            assert!(outer.total_ms >= inner.total_ms);
            // Outer self time excludes inner's share.
            assert!(
                outer.self_ms <= outer.total_ms - inner.total_ms + 1.0,
                "outer self {} vs total {} inner {}",
                outer.self_ms,
                outer.total_ms,
                inner.total_ms
            );
        });
    }

    #[test]
    fn context_propagation_reparents_cross_thread_spans() {
        crate::test_support::with_sink_disabled(|| {
            let ctx = {
                let _parent = crate::span("profiletest.ctx_parent");
                current_context()
            };
            // Simulate a pool worker: fresh thread, re-entered context.
            std::thread::spawn(move || {
                let _g = enter_context(ctx);
                let _child = crate::span("profiletest.ctx_child");
            })
            .join()
            .expect("worker thread");
            let nodes = snapshot();
            assert!(
                nodes
                    .iter()
                    .any(|n| n.path == "profiletest.ctx_parent;profiletest.ctx_child"),
                "child should nest under the captured parent, got paths: {:?}",
                nodes.iter().map(|n| &n.path).collect::<Vec<_>>()
            );
        });
    }

    #[test]
    fn folded_lines_are_path_space_value() {
        crate::test_support::with_sink_disabled(|| {
            {
                let _a = crate::span("profiletest.folded_root");
                let _b = crate::span("profiletest.folded_leaf");
            }
            let folded = folded();
            let line = folded
                .lines()
                .find(|l| l.starts_with("profiletest.folded_root;profiletest.folded_leaf "))
                .expect("folded line for the nested path");
            let value = line.rsplit(' ').next().expect("value field");
            value.parse::<u64>().expect("integer self-time value");
        });
    }

    #[test]
    fn aggregate_sums_same_name_nodes() {
        crate::test_support::with_sink_disabled(|| {
            {
                let _a = crate::span("profiletest.agg_outer");
                let _b = crate::span("profiletest.agg_shared");
            }
            {
                let _c = crate::span("profiletest.agg_shared");
            }
            let agg = aggregate();
            let shared = &agg["profiletest.agg_shared"];
            assert!(shared.calls >= 2, "same-name nodes merge: {}", shared.calls);
        });
    }

    #[test]
    fn report_renders_every_snapshot_node() {
        crate::test_support::with_sink_disabled(|| {
            {
                let _s = crate::span("profiletest.report_span");
            }
            let rendered = report();
            assert!(rendered.contains("profiletest.report_span"));
            assert!(rendered.contains("total_ms"));
        });
    }
}
