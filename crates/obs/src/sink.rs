//! The JSON-lines event sink, controlled by the `TABLEDC_TRACE`
//! environment variable (read once, on first use):
//!
//! * unset or empty — disabled; [`event`] is a no-op costing one atomic
//!   load, no allocation;
//! * `stderr` — one JSON object per line on standard error;
//! * anything else — treated as a file path, created/truncated, flushed
//!   per line.
//!
//! Every event line is a flat JSON object with at least `ts_ms` (f64
//! milliseconds on the process-local monotonic clock) and `event` (the
//! event name); remaining keys are event-specific fields. `ts_ms` is
//! stamped *under the sink lock*, immediately before the line is written,
//! so timestamps are monotonically non-decreasing across the whole trace
//! even when many threads emit concurrently — `trace_check` enforces
//! this.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

use crate::json;

/// Name of the environment variable selecting the trace sink.
pub const TRACE_ENV: &str = "TABLEDC_TRACE";

/// The process-wide run id: the raw id plus a pre-escaped `,"run_id":…`
/// fragment spliced into every event line.
static RUN_ID: OnceLock<(String, String)> = OnceLock::new();

/// Stamps `run_id` on every trace event written from now on, joining the
/// trace to the `results/runs/<run-id>.json` manifest. Set once, as early
/// as possible, by the entry point that owns the run (quickstart/repro);
/// the first call wins and later calls are ignored.
pub fn set_run_id(id: &str) {
    let mut frag = String::with_capacity(id.len() + 12);
    frag.push_str(",\"run_id\":");
    json::escape_into(&mut frag, id);
    let _ = RUN_ID.set((id.to_string(), frag));
}

/// The run id installed by [`set_run_id`], if any.
pub fn run_id() -> Option<&'static str> {
    RUN_ID.get().map(|(raw, _)| raw.as_str())
}

enum SinkState {
    Disabled,
    Stderr,
    File(BufWriter<File>),
    /// Test-only in-memory capture (installed via [`test_support`]).
    Memory(Vec<String>),
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: OnceLock<Mutex<SinkState>> = OnceLock::new();

fn sink() -> &'static Mutex<SinkState> {
    SINK.get_or_init(|| {
        let state = state_from_env();
        ENABLED.store(!matches!(state, SinkState::Disabled), Ordering::Release);
        Mutex::new(state)
    })
}

fn state_from_env() -> SinkState {
    match std::env::var(TRACE_ENV) {
        Err(_) => SinkState::Disabled,
        Ok(v) if v.trim().is_empty() => SinkState::Disabled,
        Ok(v) if v.trim() == "stderr" => SinkState::Stderr,
        Ok(path) => match File::create(path.trim()) {
            Ok(f) => SinkState::File(BufWriter::new(f)),
            Err(e) => {
                eprintln!("obs: cannot open {TRACE_ENV} target {path:?}: {e}; tracing disabled");
                SinkState::Disabled
            }
        },
    }
}

/// True when a trace sink is active and [`event`] calls will emit.
#[inline]
pub fn enabled() -> bool {
    let _ = sink(); // ensure the env var has been read once
    ENABLED.load(Ordering::Acquire)
}

/// Human-readable description of where trace events go.
pub fn trace_target_description() -> String {
    match &*lock(sink()) {
        SinkState::Disabled => "disabled".to_string(),
        SinkState::Stderr => "stderr".to_string(),
        SinkState::File(_) => format!("file ({})", std::env::var(TRACE_ENV).unwrap_or_default()),
        SinkState::Memory(_) => "memory (test)".to_string(),
    }
}

/// Stamps `ts_ms` and writes one event line. The timestamp is taken while
/// holding the sink lock so lines land in the file in timestamp order.
fn write_event(tail: &str) {
    let mut state = lock(sink());
    if matches!(*state, SinkState::Disabled) {
        return;
    }
    let mut line = String::with_capacity(tail.len() + 64);
    line.push_str("{\"ts_ms\":");
    json::number_into(&mut line, crate::now_ms());
    if let Some((_, frag)) = RUN_ID.get() {
        line.push_str(frag);
    }
    line.push(',');
    line.push_str(tail);
    line.push('}');
    match &mut *state {
        SinkState::Disabled => {}
        SinkState::Stderr => eprintln!("{line}"),
        SinkState::File(w) => {
            let _ = writeln!(w, "{line}");
            let _ = w.flush();
        }
        SinkState::Memory(captured) => captured.push(line),
    }
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// An in-flight event. Obtained from [`event`]; fields are appended with
/// the typed builder methods and nothing is written until [`Event::emit`].
/// When tracing is disabled the builder holds no buffer and every call is
/// a no-op.
#[must_use = "call .emit() to write the event"]
pub struct Event {
    buf: Option<String>,
}

/// Starts building the event named `name`. Cheap no-op when tracing is
/// disabled.
pub fn event(name: &str) -> Event {
    if !enabled() {
        return Event { buf: None };
    }
    let mut buf = String::with_capacity(96);
    buf.push_str("\"event\":");
    json::escape_into(&mut buf, name);
    Event { buf: Some(buf) }
}

impl Event {
    fn push_key(&mut self, key: &str) -> bool {
        match self.buf.as_mut() {
            None => false,
            Some(buf) => {
                buf.push(',');
                json::escape_into(buf, key);
                buf.push(':');
                true
            }
        }
    }

    /// Adds an `f64` field (non-finite values serialize as `null`).
    pub fn f64(mut self, key: &str, v: f64) -> Self {
        if self.push_key(key) {
            json::number_into(self.buf.as_mut().expect("buffer present"), v);
        }
        self
    }

    /// Adds a `u64` field.
    pub fn u64(mut self, key: &str, v: u64) -> Self {
        if self.push_key(key) {
            let _ = write!(self.buf.as_mut().expect("buffer present"), "{v}");
        }
        self
    }

    /// Adds an `i64` field.
    pub fn i64(mut self, key: &str, v: i64) -> Self {
        if self.push_key(key) {
            let _ = write!(self.buf.as_mut().expect("buffer present"), "{v}");
        }
        self
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, v: &str) -> Self {
        if self.push_key(key) {
            json::escape_into(self.buf.as_mut().expect("buffer present"), v);
        }
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &str, v: bool) -> Self {
        if self.push_key(key) {
            self.buf.as_mut().expect("buffer present").push_str(if v { "true" } else { "false" });
        }
        self
    }

    /// Writes the event as one JSON line (no-op when tracing is disabled).
    /// `ts_ms` is stamped at write time, under the sink lock.
    pub fn emit(self) {
        if let Some(buf) = self.buf {
            write_event(&buf);
        }
    }
}

/// Deterministic sink control for tests.
///
/// All helpers serialize on one process-wide lock so tests that install a
/// memory sink and tests that assert "no events" cannot race each other
/// within a test binary.
pub mod test_support {
    use super::*;

    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn set_state(state: SinkState) {
        let enabled = !matches!(state, SinkState::Disabled);
        *lock(sink()) = state;
        ENABLED.store(enabled, Ordering::Release);
    }

    /// Runs `f` with an in-memory sink installed (tracing *enabled*),
    /// returning `f`'s result and the captured JSON lines. The sink is
    /// restored to disabled afterwards.
    pub fn with_memory_sink<R>(f: impl FnOnce() -> R) -> (R, Vec<String>) {
        let _guard = lock(&TEST_LOCK);
        set_state(SinkState::Memory(Vec::new()));
        let result = f();
        let lines = match std::mem::replace(&mut *lock(sink()), SinkState::Disabled) {
            SinkState::Memory(captured) => captured,
            _ => Vec::new(),
        };
        ENABLED.store(false, Ordering::Release);
        (result, lines)
    }

    /// Runs `f` with the sink forced off, regardless of `TABLEDC_TRACE`.
    pub fn with_sink_disabled<R>(f: impl FnOnce() -> R) -> R {
        let _guard = lock(&TEST_LOCK);
        set_state(SinkState::Disabled);
        f()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn disabled_sink_emits_nothing_and_builder_is_inert() {
        let lines = test_support::with_sink_disabled(|| {
            assert!(!enabled());
            event("x").f64("a", 1.0).str("b", "y").emit();
        });
        let _ = lines;
    }

    #[test]
    fn memory_sink_captures_valid_json_lines() {
        let ((), lines) = test_support::with_memory_sink(|| {
            assert!(enabled());
            event("unit.test")
                .u64("n", 3)
                .i64("neg", -4)
                .f64("x", 1.5)
                .f64("bad", f64::NAN)
                .str("s", "he\"llo\n")
                .bool("flag", true)
                .emit();
        });
        assert_eq!(lines.len(), 1);
        let v = parse(&lines[0]).expect("valid JSON");
        assert_eq!(v.get("event").unwrap().as_str(), Some("unit.test"));
        assert!(v.get("ts_ms").unwrap().as_f64().unwrap() >= 0.0);
        assert_eq!(v.get("n").unwrap().as_f64(), Some(3.0));
        assert_eq!(v.get("neg").unwrap().as_f64(), Some(-4.0));
        assert_eq!(v.get("x").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("bad").unwrap(), &crate::json::Json::Null);
        assert_eq!(v.get("s").unwrap().as_str(), Some("he\"llo\n"));
        assert_eq!(v.get("flag").unwrap(), &crate::json::Json::Bool(true));
    }

    #[test]
    fn timestamps_are_monotone_across_concurrent_emitters() {
        let ((), lines) = test_support::with_memory_sink(|| {
            let threads: Vec<_> = (0..4)
                .map(|t| {
                    std::thread::spawn(move || {
                        for i in 0..50u64 {
                            event("mono.test").u64("t", t).u64("i", i).emit();
                        }
                    })
                })
                .collect();
            for t in threads {
                t.join().expect("emitter thread");
            }
        });
        assert_eq!(lines.len(), 200);
        let mut last = f64::NEG_INFINITY;
        for line in &lines {
            let ts = parse(line)
                .expect("valid JSON")
                .get("ts_ms")
                .and_then(crate::json::Json::as_f64)
                .expect("ts_ms");
            assert!(ts >= last, "ts went backwards: {ts} < {last}");
            last = ts;
        }
    }

    /// `set_run_id` is process-global and first-wins, so this test owns
    /// the value for the whole test binary; other tests look fields up by
    /// name and tolerate the extra key.
    #[test]
    fn run_id_is_stamped_on_every_event_and_first_set_wins() {
        let ((), lines) = test_support::with_memory_sink(|| {
            set_run_id("unit-run-1");
            set_run_id("unit-run-2"); // ignored
            event("run_id.test").u64("n", 1).emit();
        });
        assert_eq!(run_id(), Some("unit-run-1"));
        let line = lines.iter().find(|l| l.contains("run_id.test")).expect("event captured");
        let v = parse(line).expect("valid JSON");
        assert_eq!(v.get("run_id").unwrap().as_str(), Some("unit-run-1"));
        // run_id sits between ts_ms and the event name, on every line.
        assert!(line.starts_with("{\"ts_ms\":"));
        assert!(line.contains(",\"run_id\":\"unit-run-1\",\"event\":"));
    }

    #[test]
    fn events_outside_memory_scope_are_not_captured() {
        let ((), first) = test_support::with_memory_sink(|| {
            event("inside").emit();
        });
        event("outside").emit(); // sink restored to disabled
        let ((), second) = test_support::with_memory_sink(|| {});
        assert_eq!(first.len(), 1);
        assert!(second.is_empty());
    }
}
