//! Training-health monitoring: NaN/Inf detection over losses, gradients,
//! and assignment matrices, with a configurable fail-fast policy.
//!
//! Deep-clustering runs on heterogeneous tabular embeddings are prone to
//! *silent* divergence — a NaN appears in one gradient, poisons the Adam
//! moments, and the run finishes with garbage labels that still parse as a
//! result. The [`HealthMonitor`] turns that failure mode into an explicit,
//! attributable verdict:
//!
//! * **`off`** — no scanning at all; `check_*` returns immediately. The
//!   zero-overhead mode the perf gate runs under.
//! * **`warn`** (the default) — violations are counted, recorded (up to a
//!   cap), and emitted as `health.violation` events, but training
//!   continues. Good for post-hoc forensics on exploratory runs.
//! * **`strict`** — the first violation tells the caller to abort; the
//!   training loop is expected to stop cleanly, write a diagnostic dump,
//!   and mark its output as aborted.
//!
//! The policy comes from the `TABLEDC_HEALTH` environment variable (read
//! per [`Policy::from_env`] call, so tests can construct monitors with an
//! explicit policy instead of racing on the environment). Violations also
//! increment the process-wide counters `health.violations` and
//! `health.aborts`, so multi-fit drivers (`repro`) can roll up a whole
//! run's verdict without threading monitors through every call.
//!
//! This module is numeric-free on the happy path: scanning is a single
//! pass of `f64::is_finite` and nothing here feeds back into training.

use crate::registry;

/// Name of the environment variable selecting the health policy.
pub const HEALTH_ENV: &str = "TABLEDC_HEALTH";

/// Maximum number of violations kept in memory per monitor. The counter
/// keeps counting past the cap; only the stored details are bounded, so a
/// run that NaNs on every epoch cannot grow without bound.
pub const MAX_STORED_VIOLATIONS: usize = 64;

/// Health-check policy (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Policy {
    /// No checks at all.
    Off,
    /// Record and emit violations, never abort.
    #[default]
    Warn,
    /// First violation requests an abort.
    Strict,
}

impl Policy {
    /// Reads `TABLEDC_HEALTH`. Unset, empty, or unrecognized values map to
    /// [`Policy::Warn`]; `off`/`warn`/`strict` (case-insensitive) select
    /// the matching policy.
    pub fn from_env() -> Policy {
        match std::env::var(HEALTH_ENV) {
            Err(_) => Policy::Warn,
            Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
                "off" => Policy::Off,
                "strict" => Policy::Strict,
                _ => Policy::Warn,
            },
        }
    }

    /// Lowercase policy name (`"off"`, `"warn"`, `"strict"`).
    pub fn as_str(self) -> &'static str {
        match self {
            Policy::Off => "off",
            Policy::Warn => "warn",
            Policy::Strict => "strict",
        }
    }
}

/// One detected non-finite value.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Name of the offending tensor/scalar (`"q"`, `"re_loss"`,
    /// `"grad.enc.l0.w"`, …).
    pub tensor: String,
    /// `"nan"` or `"inf"`.
    pub kind: &'static str,
    /// Flat index of the first offending entry (0 for scalars).
    pub index: usize,
    /// Epoch (or step) the violation was detected in.
    pub epoch: u64,
}

/// Overall verdict of a monitored run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// No violations observed.
    Healthy,
    /// Violations observed, run completed (policy `warn`).
    Warned,
    /// Run stopped early on a violation (policy `strict`).
    Aborted,
}

impl Verdict {
    /// Lowercase verdict name.
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Healthy => "healthy",
            Verdict::Warned => "warned",
            Verdict::Aborted => "aborted",
        }
    }

    /// Severity rank: healthy 0, warned 1, aborted 2. The run-ledger diff
    /// treats a rank increase between two runs as a regression.
    pub fn rank(self) -> u64 {
        match self {
            Verdict::Healthy => 0,
            Verdict::Warned => 1,
            Verdict::Aborted => 2,
        }
    }
}

/// What the caller should do after a check.
#[must_use = "a strict-policy violation requires the caller to abort"]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Keep training.
    Continue,
    /// Stop the epoch loop (strict policy, violation found).
    Abort,
}

impl Action {
    /// True when the caller must stop the training loop.
    pub fn should_abort(self) -> bool {
        matches!(self, Action::Abort)
    }
}

/// Immutable summary of a monitored run, carried in fit results.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// Policy the run was checked under.
    pub policy: Policy,
    /// Overall verdict.
    pub verdict: Verdict,
    /// Total violations detected (may exceed `violations.len()`).
    pub total_violations: u64,
    /// Stored violation details (capped at [`MAX_STORED_VIOLATIONS`]).
    pub violations: Vec<Violation>,
    /// Path of the diagnostic dump, when the run aborted and a dump was
    /// written.
    pub dump_path: Option<String>,
}

impl Default for HealthReport {
    /// A healthy report under the `off` policy — the neutral value for
    /// outputs that were never monitored.
    fn default() -> Self {
        Self {
            policy: Policy::Off,
            verdict: Verdict::Healthy,
            total_violations: 0,
            violations: Vec::new(),
            dump_path: None,
        }
    }
}

/// Stateful NaN/Inf monitor for one training run.
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    policy: Policy,
    violations: Vec<Violation>,
    total: u64,
    aborted: bool,
    dump_path: Option<String>,
}

impl HealthMonitor {
    /// Monitor with an explicit policy (tests and config overrides).
    pub fn new(policy: Policy) -> Self {
        Self { policy, violations: Vec::new(), total: 0, aborted: false, dump_path: None }
    }

    /// Monitor with the policy from `TABLEDC_HEALTH`.
    pub fn from_env() -> Self {
        Self::new(Policy::from_env())
    }

    /// The monitor's policy.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Checks one scalar (a loss value, a norm).
    pub fn check_scalar(&mut self, tensor: &str, value: f64, epoch: u64) -> Action {
        if self.policy == Policy::Off || value.is_finite() {
            return Action::Continue;
        }
        self.record(tensor, kind_of(value), 0, epoch)
    }

    /// Checks every entry of a flat tensor, reporting the first offender.
    pub fn check_slice(&mut self, tensor: &str, values: &[f64], epoch: u64) -> Action {
        if self.policy == Policy::Off {
            return Action::Continue;
        }
        match values.iter().position(|v| !v.is_finite()) {
            None => Action::Continue,
            Some(index) => self.record(tensor, kind_of(values[index]), index, epoch),
        }
    }

    fn record(&mut self, tensor: &str, kind: &'static str, index: usize, epoch: u64) -> Action {
        self.total += 1;
        registry().counter("health.violations").inc();
        if self.violations.len() < MAX_STORED_VIOLATIONS {
            self.violations.push(Violation { tensor: tensor.to_string(), kind, index, epoch });
        }
        crate::event("health.violation")
            .str("tensor", tensor)
            .str("kind", kind)
            .u64("index", index as u64)
            .u64("epoch", epoch)
            .str("policy", self.policy.as_str())
            .emit();
        if self.policy == Policy::Strict {
            Action::Abort
        } else {
            Action::Continue
        }
    }

    /// Marks the run as aborted, optionally attaching the diagnostic-dump
    /// path. Increments the process-wide `health.aborts` counter.
    pub fn mark_aborted(&mut self, dump_path: Option<String>) {
        self.aborted = true;
        self.dump_path = dump_path;
        registry().counter("health.aborts").inc();
    }

    /// True once [`HealthMonitor::mark_aborted`] has been called.
    pub fn aborted(&self) -> bool {
        self.aborted
    }

    /// Violations stored so far (capped; see [`MAX_STORED_VIOLATIONS`]).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// The run's verdict so far.
    pub fn verdict(&self) -> Verdict {
        if self.aborted {
            Verdict::Aborted
        } else if self.total > 0 {
            Verdict::Warned
        } else {
            Verdict::Healthy
        }
    }

    /// Snapshot of the monitor as an immutable [`HealthReport`].
    pub fn report(&self) -> HealthReport {
        HealthReport {
            policy: self.policy,
            verdict: self.verdict(),
            total_violations: self.total,
            violations: self.violations.clone(),
            dump_path: self.dump_path.clone(),
        }
    }
}

/// Process-wide `(violations, aborts)` counter values — the roll-up the
/// `repro` driver records in its run manifest.
pub fn global_counts() -> (u64, u64) {
    (
        registry().counter("health.violations").get(),
        registry().counter("health.aborts").get(),
    )
}

fn kind_of(v: f64) -> &'static str {
    if v.is_nan() {
        "nan"
    } else {
        "inf"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_parsing_and_names() {
        assert_eq!(Policy::default(), Policy::Warn);
        assert_eq!(Policy::Off.as_str(), "off");
        assert_eq!(Policy::Strict.as_str(), "strict");
        assert!(Verdict::Aborted.rank() > Verdict::Warned.rank());
        assert!(Verdict::Warned.rank() > Verdict::Healthy.rank());
    }

    #[test]
    fn off_policy_never_flags() {
        let mut m = HealthMonitor::new(Policy::Off);
        assert_eq!(m.check_scalar("loss", f64::NAN, 0), Action::Continue);
        assert_eq!(m.check_slice("q", &[1.0, f64::INFINITY], 1), Action::Continue);
        assert_eq!(m.verdict(), Verdict::Healthy);
        assert!(m.violations().is_empty());
    }

    #[test]
    fn warn_policy_records_but_continues() {
        let mut m = HealthMonitor::new(Policy::Warn);
        assert_eq!(m.check_scalar("re_loss", f64::NAN, 3), Action::Continue);
        assert_eq!(m.check_slice("q", &[0.5, f64::NEG_INFINITY, 0.5], 4), Action::Continue);
        assert_eq!(m.verdict(), Verdict::Warned);
        let report = m.report();
        assert_eq!(report.total_violations, 2);
        assert_eq!(report.violations[0].tensor, "re_loss");
        assert_eq!(report.violations[0].kind, "nan");
        assert_eq!(report.violations[1].kind, "inf");
        assert_eq!(report.violations[1].index, 1);
    }

    #[test]
    fn strict_policy_requests_abort_and_reports_it() {
        let mut m = HealthMonitor::new(Policy::Strict);
        assert_eq!(m.check_scalar("ok", 1.0, 0), Action::Continue);
        let action = m.check_scalar("ce_loss", f64::INFINITY, 7);
        assert!(action.should_abort());
        m.mark_aborted(Some("results/dumps/x.json".into()));
        let report = m.report();
        assert_eq!(report.verdict, Verdict::Aborted);
        assert_eq!(report.dump_path.as_deref(), Some("results/dumps/x.json"));
        assert_eq!(report.violations[0].epoch, 7);
    }

    #[test]
    fn stored_violations_are_capped_but_counted() {
        let mut m = HealthMonitor::new(Policy::Warn);
        for i in 0..(MAX_STORED_VIOLATIONS as u64 + 10) {
            let _ = m.check_scalar("loss", f64::NAN, i);
        }
        assert_eq!(m.violations().len(), MAX_STORED_VIOLATIONS);
        assert_eq!(m.report().total_violations, MAX_STORED_VIOLATIONS as u64 + 10);
    }

    #[test]
    fn violations_emit_structured_events() {
        let ((), lines) = crate::test_support::with_memory_sink(|| {
            let mut m = HealthMonitor::new(Policy::Warn);
            let _ = m.check_slice("q", &[1.0, f64::NAN], 5);
        });
        let line = lines
            .iter()
            .find(|l| l.contains("\"health.violation\""))
            .expect("violation event emitted");
        let v = crate::json::parse(line).expect("valid JSON");
        assert_eq!(v.get("tensor").unwrap().as_str(), Some("q"));
        assert_eq!(v.get("kind").unwrap().as_str(), Some("nan"));
        assert_eq!(v.get("index").unwrap().as_f64(), Some(1.0));
        assert_eq!(v.get("epoch").unwrap().as_f64(), Some(5.0));
    }

    #[test]
    fn default_report_is_healthy() {
        let r = HealthReport::default();
        assert_eq!(r.verdict, Verdict::Healthy);
        assert_eq!(r.total_violations, 0);
        assert!(r.dump_path.is_none());
    }
}
