//! Epoch-indexed time-series recorder with bounded memory.
//!
//! A [`Series`] stores named `f64` samples in index order (the index is
//! implicit: the first `record` is point 0, the next point 1, …). Storage
//! is a fixed number of *buckets*; each bucket aggregates a contiguous run
//! of `stride` consecutive points as `{start, count, min, max, sum, last}`.
//! When the bucket array is full and another bucket is needed, adjacent
//! bucket pairs are merged and the stride doubles — so a million-epoch run
//! still occupies at most `capacity` buckets while the *envelope* (global
//! min/max), the total count, and the sum of every recorded value are
//! preserved exactly. What decimation loses is intra-bucket ordering, never
//! the range.
//!
//! [`SeriesCell`] is the registry-facing handle: a mutex-wrapped `Series`
//! created on first use via `registry().series(name)`, snapshotted into
//! [`crate::Snapshot::series`], rendered by `obs::summary()`, and drained
//! into the trace sink by [`emit_all`].

use std::sync::Mutex;

/// Aggregate of one contiguous run of recorded points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bucket {
    /// Index of the first point in this bucket.
    pub start: u64,
    /// Number of points aggregated.
    pub count: u64,
    /// Smallest finite value in the run (`NAN` if none were finite).
    pub min: f64,
    /// Largest finite value in the run (`NAN` if none were finite).
    pub max: f64,
    /// Sum of all values in the run (non-finite values poison the sum).
    pub sum: f64,
    /// The most recently recorded value in the run.
    pub last: f64,
}

impl Bucket {
    fn new(start: u64, v: f64) -> Self {
        let (min, max) = if v.is_finite() { (v, v) } else { (f64::NAN, f64::NAN) };
        Bucket { start, count: 1, min, max, sum: v, last: v }
    }

    fn record(&mut self, v: f64) {
        if v.is_finite() {
            // `f64::min(NAN, v)` returns `v`, so a bucket opened on a
            // non-finite value still picks up a real envelope later.
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.sum += v;
        self.last = v;
        self.count += 1;
    }

    fn absorb(&mut self, next: &Bucket) {
        debug_assert!(self.start < next.start);
        self.min = self.min.min(next.min);
        self.max = self.max.max(next.max);
        self.sum += next.sum;
        self.last = next.last;
        self.count += next.count;
    }
}

/// Default bucket capacity used by registry-created series.
pub const DEFAULT_CAPACITY: usize = 512;

/// A decimating time series. See the module docs for the storage model.
#[derive(Debug, Clone)]
pub struct Series {
    capacity: usize,
    stride: u64,
    buckets: Vec<Bucket>,
    total: u64,
}

impl Default for Series {
    fn default() -> Self {
        Series::with_capacity(DEFAULT_CAPACITY)
    }
}

impl Series {
    /// A series holding at most `capacity` buckets. Capacity is clamped to
    /// an even number ≥ 4 so pair-merging always halves the array.
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(4) & !1;
        Series { capacity, stride: 1, buckets: Vec::new(), total: 0 }
    }

    /// Appends one point.
    pub fn record(&mut self, v: f64) {
        let idx = self.total;
        self.total += 1;
        if let Some(open) = self.buckets.last_mut() {
            if open.count < self.stride {
                open.record(v);
                return;
            }
        }
        if self.buckets.len() == self.capacity {
            self.compact();
        }
        self.buckets.push(Bucket::new(idx, v));
    }

    /// Merges adjacent bucket pairs and doubles the stride.
    fn compact(&mut self) {
        let old = std::mem::take(&mut self.buckets);
        self.buckets.reserve(self.capacity / 2);
        let mut it = old.into_iter();
        while let Some(mut a) = it.next() {
            if let Some(b) = it.next() {
                a.absorb(&b);
            }
            self.buckets.push(a);
        }
        self.stride *= 2;
    }

    /// Total number of points ever recorded.
    pub fn points(&self) -> u64 {
        self.total
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Current decimation stride (points per full bucket).
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// The bucket array, in point order.
    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// Global minimum over every finite recorded value (`NAN` when none).
    pub fn min(&self) -> f64 {
        self.buckets.iter().fold(f64::NAN, |acc, b| acc.min(b.min))
    }

    /// Global maximum over every finite recorded value (`NAN` when none).
    pub fn max(&self) -> f64 {
        self.buckets.iter().fold(f64::NAN, |acc, b| acc.max(b.max))
    }

    /// Sum of every recorded value.
    pub fn sum(&self) -> f64 {
        self.buckets.iter().map(|b| b.sum).sum()
    }

    /// Mean of every recorded value (`NAN` when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            f64::NAN
        } else {
            self.sum() / self.total as f64
        }
    }

    /// The most recently recorded value (`NAN` when empty).
    pub fn last(&self) -> f64 {
        self.buckets.last().map_or(f64::NAN, |b| b.last)
    }
}

/// Shared, lock-protected [`Series`] handle stored in the registry.
#[derive(Debug, Default)]
pub struct SeriesCell(Mutex<Series>);

impl SeriesCell {
    /// Appends one point.
    pub fn record(&self, v: f64) {
        self.0.lock().unwrap_or_else(|e| e.into_inner()).record(v);
    }

    /// A copy of the current state.
    pub fn snapshot(&self) -> Series {
        self.0.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }
}

/// Drains every non-empty registered series into the trace sink as one
/// `series` event each (name, point count, bucket count, envelope, mean,
/// last). No-op when tracing is disabled; call once at end of run, next to
/// `obs::summary()`.
pub fn emit_all() {
    if !crate::enabled() {
        return;
    }
    for (name, s) in &crate::registry().snapshot().series {
        if s.is_empty() {
            continue;
        }
        crate::event("series")
            .str("name", name)
            .u64("points", s.points())
            .u64("buckets", s.buckets().len() as u64)
            .f64("min", s.min())
            .f64("max", s.max())
            .f64("mean", s.mean())
            .f64("last", s.last())
            .emit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_series_reports_nan_envelope() {
        let s = Series::with_capacity(8);
        assert!(s.is_empty());
        assert_eq!(s.points(), 0);
        assert!(s.min().is_nan());
        assert!(s.max().is_nan());
        assert!(s.mean().is_nan());
        assert!(s.last().is_nan());
        assert_eq!(s.sum(), 0.0);
    }

    #[test]
    fn capacity_is_clamped_even_and_at_least_four() {
        assert_eq!(Series::with_capacity(0).capacity, 4);
        assert_eq!(Series::with_capacity(5).capacity, 4);
        assert_eq!(Series::with_capacity(7).capacity, 6);
        assert_eq!(Series::with_capacity(512).capacity, 512);
    }

    #[test]
    fn under_capacity_every_point_is_its_own_bucket() {
        let mut s = Series::with_capacity(8);
        for v in [3.0, 1.0, 2.0] {
            s.record(v);
        }
        assert_eq!(s.stride(), 1);
        assert_eq!(s.buckets().len(), 3);
        assert_eq!(s.buckets()[1], Bucket { start: 1, count: 1, min: 1.0, max: 1.0, sum: 1.0, last: 1.0 });
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 3.0);
        assert_eq!(s.last(), 2.0);
        assert_eq!(s.points(), 3);
    }

    #[test]
    fn overflow_merges_pairs_and_doubles_stride() {
        let mut s = Series::with_capacity(4);
        for i in 0..5 {
            s.record(i as f64);
        }
        // 5th point forced one compaction: [0,1][2,3] merged, stride 2.
        assert_eq!(s.stride(), 2);
        assert_eq!(s.buckets().len(), 3);
        assert_eq!(s.buckets()[0], Bucket { start: 0, count: 2, min: 0.0, max: 1.0, sum: 1.0, last: 1.0 });
        assert_eq!(s.buckets()[2], Bucket { start: 4, count: 1, min: 4.0, max: 4.0, sum: 4.0, last: 4.0 });
        assert_eq!(s.points(), 5);
        assert_eq!(s.sum(), 10.0);
    }

    #[test]
    fn long_run_stays_bounded_and_preserves_envelope() {
        let mut s = Series::with_capacity(8);
        let n = 100_000u64;
        for i in 0..n {
            // A spiky signal: mostly small, one huge outlier mid-run.
            let v = if i == 41_327 { 9_999.5 } else { (i % 17) as f64 };
            s.record(v);
        }
        assert!(s.buckets().len() <= 8);
        assert_eq!(s.points(), n);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 9_999.5, "decimation must not lose the outlier");
        assert_eq!(s.last(), ((n - 1) % 17) as f64);
        // Buckets tile [0, n) exactly.
        let covered: u64 = s.buckets().iter().map(|b| b.count).sum();
        assert_eq!(covered, n);
        for w in s.buckets().windows(2) {
            assert_eq!(w[0].start + w[0].count, w[1].start);
        }
    }

    #[test]
    fn non_finite_values_do_not_poison_the_envelope() {
        let mut s = Series::with_capacity(4);
        s.record(f64::NAN);
        s.record(2.0);
        s.record(f64::INFINITY);
        s.record(1.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 2.0);
        assert_eq!(s.points(), 4);
    }

    #[test]
    fn series_cell_is_shareable_and_snapshots() {
        let cell = SeriesCell::default();
        cell.record(1.0);
        cell.record(5.0);
        let snap = cell.snapshot();
        assert_eq!(snap.points(), 2);
        assert_eq!(snap.max(), 5.0);
        cell.record(9.0);
        assert_eq!(snap.points(), 2, "snapshot is a copy");
    }

    proptest::proptest! {
        /// Decimation preserves the recorded envelope (global min/max),
        /// the point count, the sum, and the last value — for any input
        /// and any bucket capacity, including capacities far smaller than
        /// the input.
        #[test]
        fn decimation_preserves_envelope_across_capacities(
            pool in proptest::collection::vec(-1e6..1e6f64, 400),
            n in 1..400usize,
            capacity in 0..24usize,
        ) {
            let values = &pool[..n];
            let mut s = Series::with_capacity(capacity);
            for &v in values {
                s.record(v);
            }
            let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
            let sum: f64 = values.iter().sum();
            proptest::prop_assert!(s.buckets().len() <= s.capacity);
            proptest::prop_assert_eq!(s.points(), values.len() as u64);
            proptest::prop_assert_eq!(s.min(), min);
            proptest::prop_assert_eq!(s.max(), max);
            proptest::prop_assert_eq!(s.last(), *values.last().unwrap());
            // Sum is order-dependent in floating point; decimation groups
            // additions by bucket, so allow slop scaled to the magnitudes
            // actually added (cancellation can leave `sum` near zero while
            // partial sums were large).
            let magnitude: f64 = values.iter().map(|v| v.abs()).sum();
            let tol = 1e-12 * (1.0 + magnitude) * values.len() as f64;
            proptest::prop_assert!((s.sum() - sum).abs() <= tol);
            // Buckets tile [0, n) without gaps or overlap.
            let covered: u64 = s.buckets().iter().map(|b| b.count).sum();
            proptest::prop_assert_eq!(covered, values.len() as u64);
            for w in s.buckets().windows(2) {
                proptest::prop_assert_eq!(w[0].start + w[0].count, w[1].start);
            }
        }
    }

    #[test]
    fn emit_all_writes_one_event_per_nonempty_series() {
        let ((), lines) = crate::test_support::with_memory_sink(|| {
            crate::registry().series("test.emit_all.a").record(1.0);
            crate::registry().series("test.emit_all.a").record(3.0);
            emit_all();
        });
        let ours: Vec<_> = lines
            .iter()
            .filter(|l| l.contains("\"series\"") && l.contains("test.emit_all.a"))
            .collect();
        assert_eq!(ours.len(), 1);
        let v = crate::json::parse(ours[0]).expect("valid JSON");
        assert_eq!(v.get("points").unwrap().as_f64(), Some(2.0));
        assert_eq!(v.get("min").unwrap().as_f64(), Some(1.0));
        assert_eq!(v.get("max").unwrap().as_f64(), Some(3.0));
        assert_eq!(v.get("mean").unwrap().as_f64(), Some(2.0));
        assert_eq!(v.get("last").unwrap().as_f64(), Some(3.0));
    }
}
