//! The process-wide metrics registry: named counters, gauges, and
//! histograms, created on first use and readable as a consistent snapshot.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::hist::Histogram;
use crate::series::{Series, SeriesCell};

/// A monotonically increasing `u64` metric.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins `f64` metric (stored as bits in an atomic).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A shared, lock-protected [`Histogram`] handle.
#[derive(Debug, Default)]
pub struct Hist(Mutex<Histogram>);

impl Hist {
    /// Records one sample.
    pub fn record(&self, v: f64) {
        lock(&self.0).record(v);
    }

    /// A copy of the current state.
    pub fn snapshot(&self) -> Histogram {
        lock(&self.0).clone()
    }
}

/// Named metric storage. Use the global [`registry`] in production code;
/// construct standalone registries only in tests.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Hist>>>,
    series: Mutex<BTreeMap<String, Arc<SeriesCell>>>,
}

/// A point-in-time copy of every metric, sorted by name.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Counter values.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values.
    pub gauges: BTreeMap<String, f64>,
    /// Histogram copies.
    pub histograms: BTreeMap<String, Histogram>,
    /// Time-series copies.
    pub series: BTreeMap<String, Series>,
}

impl Registry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use. The returned handle
    /// can be cached to skip the name lookup on hot paths.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_insert(&self.counters, name)
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_insert(&self.gauges, name)
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Hist> {
        get_or_insert(&self.histograms, name)
    }

    /// The time series named `name`, created on first use (default bucket
    /// capacity; see [`crate::series::DEFAULT_CAPACITY`]).
    pub fn series(&self, name: &str) -> Arc<SeriesCell> {
        get_or_insert(&self.series, name)
    }

    /// Copies every metric out of the registry.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            counters: lock(&self.counters).iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            gauges: lock(&self.gauges).iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            histograms: lock(&self.histograms)
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
            series: lock(&self.series).iter().map(|(k, v)| (k.clone(), v.snapshot())).collect(),
        }
    }

    /// Drops every metric (test isolation; outstanding handles keep
    /// working but are no longer reachable from the registry).
    pub fn reset(&self) {
        lock(&self.counters).clear();
        lock(&self.gauges).clear();
        lock(&self.histograms).clear();
        lock(&self.series).clear();
    }
}

fn get_or_insert<T: Default>(map: &Mutex<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    let mut guard = lock(map);
    if let Some(existing) = guard.get(name) {
        return Arc::clone(existing);
    }
    let created = Arc::new(T::default());
    guard.insert(name.to_string(), Arc::clone(&created));
    created
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// The process-wide registry all instrumentation records into.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_handles_alias() {
        let r = Registry::new();
        let a = r.counter("c");
        let b = r.counter("c");
        a.inc();
        b.add(4);
        assert_eq!(r.counter("c").get(), 5);
        assert_eq!(r.snapshot().counters["c"], 5);
    }

    #[test]
    fn gauges_are_last_write_wins() {
        let r = Registry::new();
        r.gauge("g").set(1.0);
        r.gauge("g").set(-2.5);
        assert_eq!(r.gauge("g").get(), -2.5);
    }

    #[test]
    fn histograms_record_through_shared_handle() {
        let r = Registry::new();
        let h = r.histogram("h");
        h.record(1.0);
        r.histogram("h").record(3.0);
        let snap = r.snapshot().histograms["h"].clone();
        assert_eq!(snap.count(), 2);
        assert_eq!(snap.max(), 3.0);
    }

    #[test]
    fn series_record_through_shared_handle() {
        let r = Registry::new();
        let s = r.series("s");
        s.record(2.0);
        r.series("s").record(6.0);
        let snap = r.snapshot().series["s"].clone();
        assert_eq!(snap.points(), 2);
        assert_eq!(snap.max(), 6.0);
    }

    #[test]
    fn snapshot_is_sorted_and_reset_clears() {
        let r = Registry::new();
        r.counter("z").inc();
        r.counter("a").inc();
        let snap = r.snapshot();
        let names: Vec<&String> = snap.counters.keys().collect();
        assert_eq!(names, ["a", "z"]);
        r.reset();
        assert!(r.snapshot().counters.is_empty());
    }

    #[test]
    fn global_registry_is_a_singleton() {
        let a = registry() as *const Registry;
        let b = registry() as *const Registry;
        assert_eq!(a, b);
    }
}
