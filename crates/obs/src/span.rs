//! RAII wall-clock span timers on the monotonic clock.

use std::time::Instant;

/// A running span. On drop, the elapsed milliseconds are recorded into the
/// registry histogram named after the span.
#[must_use = "bind to a variable; dropping immediately times nothing"]
pub struct Span {
    name: String,
    start: Instant,
}

/// Starts a span named `name`. Prefer the [`span!`](crate::span!) macro in
/// instrumented code for grep-ability.
pub fn span(name: impl Into<String>) -> Span {
    Span { name: name.into(), start: Instant::now() }
}

impl Span {
    /// Milliseconds elapsed so far.
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }

    /// The histogram name this span records into.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        crate::registry().histogram(&self.name).record(self.elapsed_ms());
    }
}

/// Starts an RAII span timer: `let _t = obs::span!("kmeans.fit_ms");`.
/// The elapsed time lands in the histogram of the same name when the
/// binding drops.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_elapsed_ms_into_named_histogram() {
        {
            let s = span("test.span_ms");
            std::thread::sleep(std::time::Duration::from_millis(2));
            assert!(s.elapsed_ms() >= 1.0);
            assert_eq!(s.name(), "test.span_ms");
        }
        let h = crate::registry().histogram("test.span_ms").snapshot();
        assert!(h.count() >= 1);
        assert!(h.max() >= 1.0, "max = {}", h.max());
    }

    #[test]
    fn span_macro_expands_to_a_span() {
        let _t = crate::span!("test.macro_span_ms");
    }
}
