//! RAII wall-clock span timers on the monotonic clock, feeding both the
//! flat registry histogram named after the span and the hierarchical
//! span tree in [`crate::profile`].
//!
//! Static span names (`span!("kmeans.fit")`) are borrowed, not allocated;
//! dynamic names (`span(format!("epoch.{i}"))`) still work through the
//! same `Cow` API.

use std::borrow::Cow;
use std::time::Instant;

use crate::profile::{self, NodeId};

/// A running span. On drop, the elapsed milliseconds are recorded into the
/// registry histogram named after the span, and total/self time lands in
/// the span tree under the innermost enclosing span.
#[must_use = "bind to a variable; dropping immediately times nothing"]
pub struct Span {
    name: Cow<'static, str>,
    node: NodeId,
    start: Instant,
}

/// Starts a span named `name`. `&'static str` names are borrowed without
/// allocating. Prefer the [`span!`](crate::span!) macro in instrumented
/// code for grep-ability.
pub fn span(name: impl Into<Cow<'static, str>>) -> Span {
    let name = name.into();
    let node = profile::enter(&name);
    if crate::enabled() {
        crate::event("span.enter")
            .str("span", &name)
            .u64("thread", crate::thread_id())
            .emit();
    }
    Span { name, node, start: Instant::now() }
}

impl Span {
    /// Milliseconds elapsed so far.
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }

    /// The histogram / tree-node name this span records into.
    pub fn name(&self) -> &str {
        &self.name
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let elapsed_ns = self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        profile::exit(self.node, elapsed_ns);
        crate::registry().histogram(&self.name).record(elapsed_ns as f64 / 1e6);
        if crate::enabled() {
            crate::event("span.exit")
                .str("span", &self.name)
                .u64("thread", crate::thread_id())
                .f64("ms", elapsed_ns as f64 / 1e6)
                .emit();
        }
    }
}

/// Starts an RAII span timer: `let _t = obs::span!("kmeans.fit");`.
/// The elapsed time lands in the histogram of the same name — and in the
/// span tree, nested under the enclosing span — when the binding drops.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_elapsed_ms_into_named_histogram() {
        crate::test_support::with_sink_disabled(|| {
            {
                let s = span("test.span_ms");
                std::thread::sleep(std::time::Duration::from_millis(2));
                assert!(s.elapsed_ms() >= 1.0);
                assert_eq!(s.name(), "test.span_ms");
            }
            let h = crate::registry().histogram("test.span_ms").snapshot();
            assert!(h.count() >= 1);
            assert!(h.max() >= 1.0, "max = {}", h.max());
        });
    }

    #[test]
    fn static_names_are_borrowed_dynamic_names_still_work() {
        crate::test_support::with_sink_disabled(|| {
            let s = span("test.static_name");
            assert!(matches!(s.name, Cow::Borrowed(_)));
            drop(s);
            let d = span(format!("test.dynamic_{}", 7));
            assert_eq!(d.name(), "test.dynamic_7");
        });
    }

    #[test]
    fn span_emits_enter_and_exit_events_when_traced() {
        let ((), lines) = crate::test_support::with_memory_sink(|| {
            let _t = crate::span!("test.traced_span");
        });
        let enters: Vec<_> =
            lines.iter().filter(|l| l.contains("\"event\":\"span.enter\"")).collect();
        let exits: Vec<_> =
            lines.iter().filter(|l| l.contains("\"event\":\"span.exit\"")).collect();
        assert_eq!(enters.len(), 1, "lines: {lines:?}");
        assert_eq!(exits.len(), 1, "lines: {lines:?}");
        assert!(enters[0].contains("\"span\":\"test.traced_span\""));
        assert!(exits[0].contains("\"thread\":"));
    }
}
