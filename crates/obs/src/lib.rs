//! # obs — std-only structured observability for the TableDC stack
//!
//! Three cooperating pieces, all built on `std` (the build environment has
//! no registry access):
//!
//! * **Metrics registry** ([`registry`]): process-wide named [`Counter`]s,
//!   [`Gauge`]s, and log-bucketed [`Histogram`]s with p50/p95/p99 readout.
//!   The registry always records — it is a handful of atomic ops or a short
//!   mutex-protected bucket increment, cheap enough for per-iteration use.
//! * **Span timers** ([`span`]/[`span!`]): RAII wall-clock timers on the
//!   monotonic clock; on drop the elapsed milliseconds land in the
//!   histogram named after the span.
//! * **Event sink** ([`event`]): structured JSON-lines emission controlled
//!   by the `TABLEDC_TRACE` environment variable. Unset ⇒ disabled, and
//!   every [`event`] call collapses to one relaxed atomic load (no
//!   allocation, no formatting). `TABLEDC_TRACE=stderr` writes to stderr;
//!   any other value is treated as a file path (created/truncated).
//!
//! [`summary`] renders the registry as a human-readable end-of-run table.
//!
//! ## Determinism
//!
//! Nothing in this crate participates in numeric computation: timers and
//! counters observe, they never feed back into kernels or reduction trees.
//! Tracing on/off therefore cannot perturb the bit-identical parallel
//! guarantees of the `runtime` crate (asserted by tests there).

pub mod hist;
pub mod json;
mod registry;
mod sink;
mod span;

pub use hist::Histogram;
pub use registry::{registry, Counter, Gauge, Hist, Registry, Snapshot};
pub use sink::{enabled, event, test_support, trace_target_description, Event, TRACE_ENV};
pub use span::{span, Span};

use std::sync::OnceLock;
use std::time::Instant;

static START: OnceLock<Instant> = OnceLock::new();

/// Milliseconds since the process's first observability call — the
/// monotonic timestamp stamped on every emitted event (`ts_ms`).
pub fn now_ms() -> f64 {
    START.get_or_init(Instant::now).elapsed().as_secs_f64() * 1e3
}

/// Renders the current registry contents as a fixed-width, human-readable
/// summary table: counters, gauges, then histograms with count / p50 / p95
/// / p99 / max columns. Histograms named `*_ms` hold milliseconds.
pub fn summary() -> String {
    let snap = registry().snapshot();
    let mut out = String::from("\n== observability summary ==\n");
    if snap.counters.is_empty() && snap.gauges.is_empty() && snap.histograms.is_empty() {
        out.push_str("(no metrics recorded)\n");
        return out;
    }
    if !snap.counters.is_empty() {
        out.push_str("counters:\n");
        for (name, v) in &snap.counters {
            out.push_str(&format!("  {name:<34} {v:>14}\n"));
        }
    }
    if !snap.gauges.is_empty() {
        out.push_str("gauges:\n");
        for (name, v) in &snap.gauges {
            out.push_str(&format!("  {name:<34} {v:>14.3}\n"));
        }
    }
    if !snap.histograms.is_empty() {
        out.push_str(&format!(
            "histograms:\n  {:<26} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
            "name", "count", "p50", "p95", "p99", "max"
        ));
        for (name, h) in &snap.histograms {
            out.push_str(&format!(
                "  {:<26} {:>8} {:>10.3} {:>10.3} {:>10.3} {:>10.3}\n",
                name,
                h.count(),
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.99),
                h.max(),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_ms_is_monotone_nonnegative() {
        let a = now_ms();
        let b = now_ms();
        assert!(a >= 0.0);
        assert!(b >= a);
    }

    #[test]
    fn summary_lists_recorded_metrics() {
        registry().counter("test.summary_counter").add(3);
        registry().gauge("test.summary_gauge").set(1.5);
        registry().histogram("test.summary_ms").record(2.0);
        let s = summary();
        assert!(s.contains("test.summary_counter"));
        assert!(s.contains("test.summary_gauge"));
        assert!(s.contains("test.summary_ms"));
        assert!(s.contains("p95"));
    }
}
