//! # obs — std-only structured observability for the TableDC stack
//!
//! Cooperating pieces, all built on `std` (the build environment has no
//! registry access):
//!
//! * **Metrics registry** ([`registry`]): process-wide named [`Counter`]s,
//!   [`Gauge`]s, and log-bucketed [`Histogram`]s with p50/p95/p99 readout.
//!   The registry always records — it is a handful of atomic ops or a short
//!   mutex-protected bucket increment, cheap enough for per-iteration use.
//! * **Span timers** ([`span`]/[`span!`]): RAII wall-clock timers on the
//!   monotonic clock; on drop the elapsed milliseconds land in the
//!   histogram named after the span *and* in the hierarchical span tree.
//! * **Span tree** ([`profile`]): per-thread span stacks give every span a
//!   parent; the tree accumulates calls, total-ms, and self-ms per node,
//!   propagates across `runtime` pool boundaries via
//!   [`profile::current_context`]/[`profile::enter_context`], and exports
//!   folded-stack format ([`folded`]) for flamegraph tooling.
//! * **Allocation tracking** ([`alloc`], opt-in via `TABLEDC_PROFILE=alloc`):
//!   a tracking `#[global_allocator]` wrapper attributing bytes and
//!   allocation counts to the innermost active span.
//! * **Health monitoring** ([`health`]): NaN/Inf scanning over losses,
//!   gradients, and assignment matrices with a `TABLEDC_HEALTH`
//!   off/warn/strict policy; violations become `health.*` events and
//!   process-wide counters, and strict mode tells the training loop to
//!   abort and dump diagnostics.
//! * **Event sink** ([`event`]): structured JSON-lines emission controlled
//!   by the `TABLEDC_TRACE` environment variable. Unset ⇒ disabled, and
//!   every [`event`] call collapses to one relaxed atomic load (no
//!   allocation, no formatting). `TABLEDC_TRACE=stderr` writes to stderr;
//!   any other value is treated as a file path (created/truncated).
//!
//! [`summary`] renders the registry as a human-readable end-of-run table;
//! [`profile::report`] does the same for the span tree.
//!
//! ## Determinism
//!
//! Nothing in this crate participates in numeric computation: timers,
//! counters, the span tree, and the allocation hook observe, they never
//! feed back into kernels or reduction trees. Tracing and profiling on/off
//! therefore cannot perturb the bit-identical parallel guarantees of the
//! `runtime` crate (asserted by tests there).

pub mod alloc;
pub mod health;
pub mod hist;
pub mod json;
pub mod profile;
mod registry;
pub mod series;
mod sink;
mod span;

pub use health::{HealthMonitor, HealthReport};
pub use hist::Histogram;
pub use profile::folded;
pub use registry::{registry, Counter, Gauge, Hist, Registry, Snapshot};
pub use series::{Series, SeriesCell};
pub use sink::{
    enabled, event, run_id, set_run_id, test_support, trace_target_description, Event, TRACE_ENV,
};
pub use span::{span, Span};

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Every binary linking `obs` gets the opt-in tracking allocator; when
/// `TABLEDC_PROFILE` does not request `alloc`, each allocation pays one
/// relaxed atomic load over plain `System`.
#[global_allocator]
static GLOBAL_ALLOC: alloc::TrackingAlloc = alloc::TrackingAlloc;

static START: OnceLock<Instant> = OnceLock::new();

/// Milliseconds since the process's first observability call — the
/// monotonic timestamp stamped on every emitted event (`ts_ms`).
pub fn now_ms() -> f64 {
    START.get_or_init(Instant::now).elapsed().as_secs_f64() * 1e3
}

static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_ID: Cell<u64> = const { Cell::new(u64::MAX) };
}

/// A small process-local id for the calling thread, assigned sequentially
/// on first use. Stable for the thread's lifetime; stamped on
/// `span.enter`/`span.exit` events so `trace_check` can verify per-thread
/// balance.
pub fn thread_id() -> u64 {
    THREAD_ID.with(|c| {
        let v = c.get();
        if v != u64::MAX {
            v
        } else {
            let id = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
            c.set(id);
            id
        }
    })
}

/// Renders the current registry contents as a fixed-width, human-readable
/// summary table: counters, gauges, then histograms with count / p50 / p95
/// / p99 / max columns. Histograms hold milliseconds when fed by spans.
/// Output is deterministic for a given snapshot: every section is sorted
/// by metric name.
pub fn summary() -> String {
    render_summary(&registry().snapshot())
}

/// Renders a specific [`Snapshot`] the way [`summary`] does. Split out so
/// the format (and its determinism) can be pinned against a constructed
/// snapshot in tests.
pub fn render_summary(snap: &Snapshot) -> String {
    let mut out = String::from("\n== observability summary ==\n");
    if snap.counters.is_empty()
        && snap.gauges.is_empty()
        && snap.histograms.is_empty()
        && snap.series.is_empty()
    {
        out.push_str("(no metrics recorded)\n");
        return out;
    }
    if !snap.counters.is_empty() {
        out.push_str("counters:\n");
        for (name, v) in &snap.counters {
            out.push_str(&format!("  {name:<34} {v:>14}\n"));
        }
    }
    if !snap.gauges.is_empty() {
        out.push_str("gauges:\n");
        for (name, v) in &snap.gauges {
            out.push_str(&format!("  {name:<34} {v:>14.3}\n"));
        }
    }
    if !snap.histograms.is_empty() {
        out.push_str(&format!(
            "histograms:\n  {:<26} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
            "name", "count", "p50", "p95", "p99", "max"
        ));
        for (name, h) in &snap.histograms {
            out.push_str(&format!(
                "  {:<26} {:>8} {:>10.3} {:>10.3} {:>10.3} {:>10.3}\n",
                name,
                h.count(),
                h.quantile(0.50),
                h.quantile(0.95),
                h.quantile(0.99),
                h.max(),
            ));
        }
    }
    if !snap.series.is_empty() {
        out.push_str(&format!(
            "series:\n  {:<26} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
            "name", "points", "min", "mean", "max", "last"
        ));
        for (name, s) in &snap.series {
            out.push_str(&format!(
                "  {:<26} {:>8} {:>10.3} {:>10.3} {:>10.3} {:>10.3}\n",
                name,
                s.points(),
                s.min(),
                s.mean(),
                s.max(),
                s.last(),
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn now_ms_is_monotone_nonnegative() {
        let a = now_ms();
        let b = now_ms();
        assert!(a >= 0.0);
        assert!(b >= a);
    }

    #[test]
    fn thread_ids_are_small_stable_and_distinct() {
        let mine = thread_id();
        assert_eq!(mine, thread_id(), "stable within a thread");
        let other = std::thread::spawn(thread_id).join().expect("thread");
        assert_ne!(mine, other);
    }

    #[test]
    fn summary_lists_recorded_metrics() {
        registry().counter("test.summary_counter").add(3);
        registry().gauge("test.summary_gauge").set(1.5);
        registry().histogram("test.summary_ms").record(2.0);
        let s = summary();
        assert!(s.contains("test.summary_counter"));
        assert!(s.contains("test.summary_gauge"));
        assert!(s.contains("test.summary_ms"));
        assert!(s.contains("p95"));
    }

    /// Pins the summary format byte-for-byte on a constructed snapshot:
    /// sections sorted by name, stable column layout. Traced-run diffs
    /// stay clean only while this holds.
    #[test]
    fn summary_output_is_deterministic_and_sorted() {
        let r = Registry::new();
        // Insert deliberately out of name order.
        r.counter("zeta.count").add(7);
        r.counter("alpha.count").add(2);
        r.gauge("mid.gauge").set(0.5);
        r.histogram("b.hist_ms").record(4.0);
        r.histogram("a.hist_ms").record(1.0);
        let snap = r.snapshot();
        let rendered = render_summary(&snap);
        let expected = concat!(
            "\n== observability summary ==\n",
            "counters:\n",
            "  alpha.count                                     2\n",
            "  zeta.count                                      7\n",
            "gauges:\n",
            "  mid.gauge                                   0.500\n",
            "histograms:\n",
            "  name                          count        p50        p95        p99        max\n",
            "  a.hist_ms                         1      1.000      1.000      1.000      1.000\n",
            "  b.hist_ms                         1      4.000      4.000      4.000      4.000\n",
        );
        assert_eq!(rendered, expected);
        // And identical on re-render.
        assert_eq!(rendered, render_summary(&snap));
    }

    /// Same pin for the series section, which only renders when a series
    /// has been registered.
    #[test]
    fn summary_series_section_is_pinned() {
        let r = Registry::new();
        r.series("diag.churn").record(0.5);
        r.series("diag.churn").record(0.25);
        let rendered = render_summary(&r.snapshot());
        let expected = concat!(
            "\n== observability summary ==\n",
            "series:\n",
            "  name                         points        min       mean        max       last\n",
            "  diag.churn                        2      0.250      0.375      0.500      0.250\n",
        );
        assert_eq!(rendered, expected);
    }
}
