#!/bin/bash
# Recorded experiment run: cheap experiments first so partial results
# survive a wall-clock cap. Seed 42, scaled datasets, epoch-factor 0.5.
set -x
cd /root/repo
BIN=target/release/repro
OUT=results/repro_all.txt
: > "$OUT"
for cmd in table1 fig4 table5 fig5 fig2 ablate-delta ablate-gamma ablate-alpha ablate-covariance ablate-birch-t fig3 table3 table2 table4; do
  echo "### $cmd ($(date +%H:%M:%S))" >> "$OUT"
  $BIN "$cmd" --epoch-factor 0.35 >> "$OUT" 2>>results/repro_all.err
done
echo "### done $(date +%H:%M:%S)" >> "$OUT"
