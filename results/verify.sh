#!/bin/bash
# Tier-1 verification gate plus a serial-vs-parallel runtime smoke, a
# traced-run observability smoke, a training-health/ledger gate, and a
# perf-regression gate.
#
#   1. cargo build --release && cargo test -q   (the repo's tier-1 gate)
#   2. par_smoke example: times sq_euclidean_cdist on a 2000x128 matrix on
#      a 1-thread pool vs the full pool, asserts the outputs are
#      bit-identical, and fails if the parallel run is >1.5x slower than
#      serial.
#   3. quickstart under TABLEDC_TRACE=<file> + TABLEDC_PROFILE=alloc +
#      TABLEDC_FOLDED=<file> + TABLEDC_HEALTH=strict: the emitted trace
#      must be valid JSON lines with monotone timestamps, balanced
#      per-thread spans, finite nn.grad_norm telemetry, and the per-epoch
#      training events (checked by the trace_check binary, which also
#      enforces the health.abort -> health.dump contract); the run must be
#      violation-free under the strict policy; the folded-stack export
#      must be non-empty and rooted at tabledc.fit.
#   4. run-ledger gate: the quickstart run must write a well-formed
#      manifest (healthy verdict, zero violations); `runs diff` of that
#      manifest against itself must pass (exit 0) and the committed
#      fixture pair (baseline vs doctored metric drop + aborted verdict)
#      must fail (exit 1).
#   5. report gate: the committed fixture manifest must render to HTML
#      byte-identically across two separate processes and match the
#      committed golden page; the page must carry the expected section
#      ids and sparklines and never the literal NaN; the diff render of
#      the doctored fixture must flag the regression; the quickstart
#      manifest + trace must render with convergence verdict, diag
#      sparklines, and a span-tree profile; `runs list --json` must
#      emit the quickstart run.
#   6. repro table2 compared against the committed
#      results/BENCH_baseline.json with perfdiff: per-experiment and
#      per-method wall times and per-phase profile self-times must stay
#      within TABLEDC_PERF_TOL (default 1.5x, plus absolute floors so
#      near-zero phases never flake the gate). Runs with TABLEDC_HEALTH=off
#      to confirm the telemetry layer adds no gated cost even when health
#      checking is disabled.
#
# Usage: results/verify.sh   (from anywhere; cd's to the repo root)
set -e
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== runtime smoke: serial vs parallel cdist =="
# Exercise real multi-thread scheduling even on single-core CI boxes; the
# example still applies its slowdown gate.
TABLEDC_THREADS=${TABLEDC_THREADS:-4} cargo run --release -q -p bench --example par_smoke

echo "== observability smoke: traced + profiled quickstart under strict health =="
trace_file=$(mktemp /tmp/tabledc_trace.XXXXXX.jsonl)
folded_file=$(mktemp /tmp/tabledc_folded.XXXXXX.txt)
perf_file=$(mktemp /tmp/tabledc_perf.XXXXXX.json)
runs_dir=$(mktemp -d /tmp/tabledc_runs.XXXXXX)
trap 'rm -f "$trace_file" "$folded_file" "$perf_file"; rm -rf "$runs_dir"' EXIT
quickstart_out=$(TABLEDC_TRACE="$trace_file" TABLEDC_PROFILE=alloc TABLEDC_FOLDED="$folded_file" \
    TABLEDC_HEALTH=strict TABLEDC_RUNS_DIR="$runs_dir" \
    cargo run --release -q -p bench --example quickstart)
cargo run --release -q -p bench --bin trace_check -- "$trace_file" \
    ae.pretrain_epoch tabledc.epoch tabledc.diag tabledc.convergence series \
    nn.grad_norm span.enter span.exit
test -s "$folded_file" || { echo "folded export is empty"; exit 1; }
grep -q '^tabledc\.fit;' "$folded_file" \
    || { echo "folded export has no tabledc.fit subtree"; cat "$folded_file"; exit 1; }
echo "$quickstart_out" | grep -q 'health: healthy (0 violations)' \
    || { echo "quickstart was not violation-free under strict health"; echo "$quickstart_out"; exit 1; }

echo "== run-ledger gate: manifest + runs diff =="
manifest=$(ls "$runs_dir"/quickstart-*.json 2>/dev/null | head -1)
test -n "$manifest" || { echo "quickstart wrote no run manifest in $runs_dir"; exit 1; }
grep -q '"verdict": "healthy"' "$manifest" \
    || { echo "manifest verdict is not healthy"; cat "$manifest"; exit 1; }
grep -q '"violations": 0' "$manifest" \
    || { echo "manifest records violations"; cat "$manifest"; exit 1; }
grep -q '"convergence"' "$manifest" \
    || { echo "manifest carries no convergence verdict"; cat "$manifest"; exit 1; }
# `runs show` re-parses the manifest; any schema breakage exits 2 here.
cargo run --release -q -p bench --bin runs -- show "$manifest" > /dev/null
cargo run --release -q -p bench --bin runs -- diff "$manifest" "$manifest"
set +e
cargo run --release -q -p bench --bin runs -- \
    diff results/runs/fixture-baseline.json results/runs/fixture-regressed.json
fixture_rc=$?
set -e
test "$fixture_rc" -eq 1 \
    || { echo "expected runs diff exit 1 on the doctored fixture, got $fixture_rc"; exit 1; }

echo "== report gate: deterministic HTML run reports =="
html_a=$(mktemp /tmp/tabledc_report_a.XXXXXX.html)
html_b=$(mktemp /tmp/tabledc_report_b.XXXXXX.html)
trap 'rm -f "$trace_file" "$folded_file" "$perf_file" "$html_a" "$html_b"; rm -rf "$runs_dir"' EXIT
cargo run --release -q -p bench --bin report -- results/runs/fixture-baseline.json --out "$html_a"
cargo run --release -q -p bench --bin report -- results/runs/fixture-baseline.json --out "$html_b"
cmp -s "$html_a" "$html_b" \
    || { echo "report is not deterministic across two renders"; exit 1; }
cmp -s "$html_a" results/runs/fixture-baseline.html \
    || { echo "report diverges from the committed golden page; regenerate it with"; \
         echo "  cargo run -p bench --bin report -- results/runs/fixture-baseline.json --out results/runs/fixture-baseline.html"; exit 1; }
for id in run-header health convergence metrics series spark-re_loss spark-delta_label_frac; do
    grep -q "id=\"$id\"" "$html_a" \
        || { echo "report is missing element id $id"; exit 1; }
done
! grep -q 'NaN' "$html_a" || { echo "report contains a NaN literal"; exit 1; }
cargo run --release -q -p bench --bin report -- results/runs/fixture-regressed.json \
    --diff results/runs/fixture-baseline.json --out "$html_b"
grep -q 'id="diff"' "$html_b" || { echo "diff render has no diff section"; exit 1; }
grep -q 'tabledc/ari' "$html_b" \
    || { echo "diff render does not flag the doctored metric"; exit 1; }
# The traced quickstart run renders with its trace folded in.
cargo run --release -q -p bench --bin report -- "$manifest" --trace "$trace_file" --out "$html_a"
grep -q 'id="profile"' "$html_a" || { echo "traced render has no profile section"; exit 1; }
grep -q 'id="convergence"' "$html_a" || { echo "traced render has no convergence section"; exit 1; }
TABLEDC_RUNS_DIR="$runs_dir" cargo run --release -q -p bench --bin runs -- list --json \
    | grep -q '"run_id": "quickstart-' \
    || { echo "runs list --json does not list the quickstart run"; exit 1; }

echo "== perf gate: repro table2 vs committed baseline (health checks off) =="
# --epoch-factor 0.35 matches how results/BENCH_baseline.json was
# generated (and the committed repro_all practice) — the gate compares
# like with like and stays fast enough to run on every verify. The run's
# own manifest goes to the scratch runs dir, not the committed fixtures.
TABLEDC_HEALTH=off TABLEDC_RUNS_DIR="$runs_dir" \
    cargo run --release -q -p bench --bin repro -- table2 --epoch-factor 0.35 \
    --out "$perf_file" > /dev/null
cargo run --release -q -p bench --bin perfdiff -- \
    results/BENCH_baseline.json "$perf_file" --tolerance "${TABLEDC_PERF_TOL:-1.5}"

echo "verify.sh: all gates passed"
