#!/bin/bash
# Tier-1 verification gate plus a serial-vs-parallel runtime smoke and a
# traced-run observability smoke.
#
#   1. cargo build --release && cargo test -q   (the repo's tier-1 gate)
#   2. par_smoke example: times sq_euclidean_cdist on a 2000x128 matrix on
#      a 1-thread pool vs the full pool, asserts the outputs are
#      bit-identical, and fails if the parallel run is >1.5x slower than
#      serial.
#   3. quickstart under TABLEDC_TRACE=<file>: the emitted trace must be
#      valid JSON lines (checked by the trace_check binary) and contain
#      the per-epoch training events.
#
# Usage: results/verify.sh   (from anywhere; cd's to the repo root)
set -e
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== runtime smoke: serial vs parallel cdist =="
# Exercise real multi-thread scheduling even on single-core CI boxes; the
# example still applies its slowdown gate.
TABLEDC_THREADS=${TABLEDC_THREADS:-4} cargo run --release -q -p bench --example par_smoke

echo "== observability smoke: traced quickstart =="
trace_file=$(mktemp /tmp/tabledc_trace.XXXXXX.jsonl)
trap 'rm -f "$trace_file"' EXIT
TABLEDC_TRACE="$trace_file" cargo run --release -q -p bench --example quickstart > /dev/null
cargo run --release -q -p bench --bin trace_check -- "$trace_file" \
    ae.pretrain_epoch tabledc.epoch

echo "verify.sh: all gates passed"
