#!/bin/bash
# Tier-1 verification gate plus a serial-vs-parallel runtime smoke, a
# traced-run observability smoke, and a perf-regression gate.
#
#   1. cargo build --release && cargo test -q   (the repo's tier-1 gate)
#   2. par_smoke example: times sq_euclidean_cdist on a 2000x128 matrix on
#      a 1-thread pool vs the full pool, asserts the outputs are
#      bit-identical, and fails if the parallel run is >1.5x slower than
#      serial.
#   3. quickstart under TABLEDC_TRACE=<file> + TABLEDC_PROFILE=alloc +
#      TABLEDC_FOLDED=<file>: the emitted trace must be valid JSON lines
#      with monotone timestamps and balanced per-thread spans (checked by
#      the trace_check binary) and contain the per-epoch training events;
#      the folded-stack export must be non-empty and rooted at
#      tabledc.fit.
#   4. repro table2 compared against the committed
#      results/BENCH_baseline.json with perfdiff: per-experiment and
#      per-method wall times and per-phase profile self-times must stay
#      within TABLEDC_PERF_TOL (default 1.5x, plus absolute floors so
#      near-zero phases never flake the gate).
#
# Usage: results/verify.sh   (from anywhere; cd's to the repo root)
set -e
cd "$(dirname "$0")/.."

echo "== tier-1: cargo build --release =="
cargo build --release

echo "== tier-1: cargo test -q =="
cargo test -q

echo "== runtime smoke: serial vs parallel cdist =="
# Exercise real multi-thread scheduling even on single-core CI boxes; the
# example still applies its slowdown gate.
TABLEDC_THREADS=${TABLEDC_THREADS:-4} cargo run --release -q -p bench --example par_smoke

echo "== observability smoke: traced + profiled quickstart =="
trace_file=$(mktemp /tmp/tabledc_trace.XXXXXX.jsonl)
folded_file=$(mktemp /tmp/tabledc_folded.XXXXXX.txt)
perf_file=$(mktemp /tmp/tabledc_perf.XXXXXX.json)
trap 'rm -f "$trace_file" "$folded_file" "$perf_file"' EXIT
TABLEDC_TRACE="$trace_file" TABLEDC_PROFILE=alloc TABLEDC_FOLDED="$folded_file" \
    cargo run --release -q -p bench --example quickstart > /dev/null
cargo run --release -q -p bench --bin trace_check -- "$trace_file" \
    ae.pretrain_epoch tabledc.epoch span.enter span.exit
test -s "$folded_file" || { echo "folded export is empty"; exit 1; }
grep -q '^tabledc\.fit;' "$folded_file" \
    || { echo "folded export has no tabledc.fit subtree"; cat "$folded_file"; exit 1; }

echo "== perf gate: repro table2 vs committed baseline =="
# --epoch-factor 0.35 matches how results/BENCH_baseline.json was
# generated (and the committed repro_all practice) — the gate compares
# like with like and stays fast enough to run on every verify.
cargo run --release -q -p bench --bin repro -- table2 --epoch-factor 0.35 \
    --out "$perf_file" > /dev/null
cargo run --release -q -p bench --bin perfdiff -- \
    results/BENCH_baseline.json "$perf_file" --tolerance "${TABLEDC_PERF_TOL:-1.5}"

echo "verify.sh: all gates passed"
