#!/bin/bash
# Priority continuation: headline tables first, then figures/ablations.
cd /root/repo
BIN=target/release/repro
OUT=results/repro_all.txt
# Wait for any running repro (fig4) to finish.
while pgrep -x repro > /dev/null; do sleep 5; done
for cmd in table3 table2 table4 fig3 fig5 table5 fig2 ablate-delta ablate-gamma ablate-alpha ablate-covariance ablate-birch-t; do
  echo "### $cmd ($(date +%H:%M:%S))" >> "$OUT"
  $BIN "$cmd" --epoch-factor 0.35 >> "$OUT" 2>>results/repro_all.err
done
echo "### done $(date +%H:%M:%S)" >> "$OUT"
