//! Quickstart: cluster a dense, overlapping synthetic embedding matrix
//! with TableDC and compare against K-means.
//!
//! ```sh
//! cargo run --release -p bench --example quickstart
//! ```
//!
//! With `TABLEDC_TRACE=stderr` (or a file path) the run also emits
//! per-epoch JSON-lines events and ends with the observability summary
//! table (epoch timing quantiles, pool steal/busy stats) plus the
//! hierarchical span tree. `TABLEDC_PROFILE=alloc` adds attributed
//! allocation columns; `TABLEDC_FOLDED=<path>` writes the tree in
//! folded-stack format for flamegraph tooling.

use bench::ledger::{ConvergenceSummary, HealthSummary, LedgerHistory, RunManifest};
use clustering::metrics::{accuracy, adjusted_rand_index, normalized_mutual_info};
use clustering::KMeans;
use datagen::{generate_mixture, MixtureConfig};
use tabledc::{TableDc, TableDcConfig};
use tensor::random::rng;

fn main() {
    // Open the manifest shell first so every trace event of the run is
    // stamped with the manifest's run id.
    let mut manifest = RunManifest::new("quickstart");
    obs::set_run_id(&manifest.run_id);

    // A workload with the geometry the paper targets: dense rows on the
    // unit sphere, correlated features, overlapping clusters.
    let data = generate_mixture(
        &MixtureConfig {
            n: 400,
            k: 8,
            dim: 32,
            separation: 2.2,   // heavy overlap
            correlation: 0.5,  // correlated dimensions
            normalize: true,   // dense sphere geometry
            ..Default::default()
        },
        &mut rng(7),
    );
    println!("workload: n={}, k={}, dim={}", data.n(), data.k(), data.x.cols());

    // K-means baseline.
    let km = KMeans::paper_protocol(8).fit(&data.x, &mut rng(1));
    println!(
        "K-means  ARI {:.3}  ACC {:.3}",
        adjusted_rand_index(&km.labels, &data.labels),
        accuracy(&km.labels, &data.labels)
    );

    // TableDC: autoencoder + Birch init + Mahalanobis/Cauchy self-
    // supervision (paper defaults). The fit seed is recorded in the health
    // config so a strict-policy diagnostic dump can name it.
    let seed = 2;
    let mut config = TableDcConfig { epochs: 80, pretrain_epochs: 30, ..TableDcConfig::new(8) };
    config.health.run_seed = Some(seed);
    let (model, fit) = TableDc::fit(config, &data.x, &mut rng(seed));
    println!(
        "TableDC  ARI {:.3}  ACC {:.3}  (clusters used: {})",
        adjusted_rand_index(&fit.labels, &data.labels),
        accuracy(&fit.labels, &data.labels),
        fit.clusters_used
    );
    println!("health: {} ({} violations)", fit.health.verdict.as_str(), fit.health.total_violations);
    println!(
        "convergence: {}{} — {}",
        fit.convergence.status.as_str(),
        fit.convergence.epoch.map_or(String::new(), |e| format!(" at epoch {e}")),
        fit.convergence.rule
    );

    // Persist the run into the ledger (`runs list` / `runs diff` /
    // `report`).
    manifest.seed = seed;
    manifest.scale = "quickstart".to_string();
    manifest.health = HealthSummary::from_report(&fit.health);
    manifest.convergence = Some(ConvergenceSummary::from_verdict(&fit.convergence));
    manifest.metrics = vec![
        ("tabledc/ari".to_string(), adjusted_rand_index(&fit.labels, &data.labels)),
        ("tabledc/acc".to_string(), accuracy(&fit.labels, &data.labels)),
        ("tabledc/nmi".to_string(), normalized_mutual_info(&fit.labels, &data.labels)),
        ("kmeans/ari".to_string(), adjusted_rand_index(&km.labels, &data.labels)),
        ("kmeans/acc".to_string(), accuracy(&km.labels, &data.labels)),
        ("kmeans/nmi".to_string(), normalized_mutual_info(&km.labels, &data.labels)),
    ];
    manifest.history = LedgerHistory::from_history(&fit.history);
    match manifest.write() {
        Ok(path) => println!("run manifest: {path}"),
        Err(e) => eprintln!("failed to write run manifest: {e}"),
    }

    // The model supports out-of-sample assignment.
    let fresh = generate_mixture(
        &MixtureConfig { n: 10, k: 8, dim: 32, normalize: true, ..Default::default() },
        &mut rng(3),
    );
    let assigned = model.predict(&fresh.x);
    println!("predicted clusters for 10 new rows: {assigned:?}");

    if obs::enabled() {
        runtime::global().record_stats();
        // Drain the epoch-indexed series into the trace before the
        // summary, so a trace consumer sees the decimated curves too.
        obs::series::emit_all();
        eprintln!("{}", obs::summary());
        eprintln!("{}", obs::profile::report());
    }
    if let Some(folded_path) = obs::profile::write_folded_if_requested() {
        eprintln!("# wrote folded stacks to {folded_path}");
    }
}
