//! Real-data path: write CSV files to disk, load them back with the
//! `tabular` crate (no synthetic ground-truth anywhere in the embedding),
//! and deduplicate the rows with TableDC.
//!
//! ```sh
//! cargo run --release -p bench --example cluster_csv
//! ```

use clustering::metrics::{accuracy, adjusted_rand_index};
use datagen::corpus::{entity_corpus, EntityCorpusConfig};
use tabledc::{TableDc, TableDcConfig};
use tabular::{embed_rows, write_csv, EncodeOptions, Table};
use tensor::random::rng;

fn main() {
    // Build a messy "songs" CSV from the entity-resolution corpus
    // generator: each entity appears as 2–5 noisy duplicate rows.
    let corpus = entity_corpus(
        &EntityCorpusConfig { n_entities: 60, dups: (2, 4), noise: 0.4, n_attrs: 3 },
        &mut rng(5),
    );
    let mut records = vec![vec!["record".to_string()]];
    records.extend(corpus.items.iter().map(|i| vec![i.text.clone()]));
    let csv_text = write_csv(&records, ',');

    let dir = std::env::temp_dir().join("tabledc_cluster_csv_example");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path = dir.join("songs.csv");
    std::fs::write(&path, &csv_text).expect("write csv");
    println!("wrote {} rows to {}", records.len() - 1, path.display());

    // Load it back through the real ingestion path.
    let table = Table::from_csv_file(&path).expect("load csv");
    println!("loaded table '{}': {} rows × {} cols", table.name, table.n_rows(), table.n_cols());

    // Embed rows with the ground-truth-free lexical encoder and cluster.
    let x = embed_rows(&table, EncodeOptions::default());
    let k = corpus.k;
    let config = TableDcConfig { epochs: 50, pretrain_epochs: 60, ..TableDcConfig::new(k) };
    let (_, fit) = TableDc::fit(config, &x, &mut rng(6));

    let truth = corpus.labels();
    println!(
        "TableDC on real CSV ingestion: ARI {:.3}  ACC {:.3}",
        adjusted_rand_index(&fit.labels, &truth),
        accuracy(&fit.labels, &truth)
    );

    // Show one recovered duplicate group.
    let target = fit.labels[0];
    println!("\nrecords clustered with row 0:");
    for (i, &l) in fit.labels.iter().enumerate().take(200) {
        if l == target {
            println!("  - {}", table.row_text(i));
        }
    }
}
