//! Domain discovery end-to-end: generate a Di2KG-Camera-style corpus of
//! heterogeneous columns, cluster them into semantic domains with TableDC,
//! and compare against the bespoke D4 method.
//!
//! ```sh
//! cargo run --release -p bench --example domain_discovery
//! ```

use baselines::D4;
use clustering::metrics::{accuracy, adjusted_rand_index};
use datagen::{embed_corpus, EmbeddingModel, Profile, Scale};
use tabledc::{TableDc, TableDcConfig};
use tensor::random::rng;

fn main() {
    let profile = Profile::Camera;
    let corpus = profile.corpus(Scale::Scaled, EmbeddingModel::T5, 42);
    let truth = corpus.labels();
    println!("corpus: {} columns over {} domains", corpus.items.len(), corpus.k);
    println!("example column values: {:?}\n", corpus.items[0].text);

    // Bespoke: D4 clusters columns by value overlap alone.
    let d4 = D4::default().fit(&corpus.texts());
    println!(
        "D4       ARI {:.3}  ACC {:.3}",
        adjusted_rand_index(&d4.labels, &truth),
        accuracy(&d4.labels, &truth)
    );

    // TableDC on T5-style column embeddings with the paper's
    // domain-discovery budget (100 epochs, 30 pretraining).
    let x = embed_corpus(&corpus, EmbeddingModel::T5, 43);
    let config = TableDcConfig { epochs: 100, pretrain_epochs: 30, ..TableDcConfig::new(corpus.k) };
    let (model, fit) = TableDc::fit(config, &x, &mut rng(2));
    println!(
        "TableDC  ARI {:.3}  ACC {:.3}",
        adjusted_rand_index(&fit.labels, &truth),
        accuracy(&fit.labels, &truth)
    );

    // Inspect the soft assignment of one ambiguous column: TableDC's
    // Cauchy kernel keeps secondary memberships visible.
    let (q, _) = model.soft_assignments(&x);
    let mut probs: Vec<(usize, f64)> =
        (0..q.cols()).map(|j| (j, q[(0, j)])).collect();
    probs.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
    println!(
        "\ncolumn 0 top-3 soft memberships: {:?}",
        &probs[..3.min(probs.len())]
    );
}
