//! Schema inference end-to-end: generate a web-tables-style corpus,
//! embed table headers with the simulated SBERT encoder, cluster tables by
//! schema type with TableDC, and inspect the discovered groups.
//!
//! ```sh
//! cargo run --release -p bench --example schema_inference
//! ```

use clustering::metrics::{accuracy, adjusted_rand_index};
use clustering::Birch;
use datagen::{embed_corpus, EmbeddingModel, Profile, Scale};
use tabledc::{TableDc, TableDcConfig};
use tensor::random::rng;

fn main() {
    // The T2D web-tables profile at its real Table 1 size (429 tables,
    // 26 schema types).
    let profile = Profile::WebTables;
    let corpus = profile.corpus(Scale::Scaled, EmbeddingModel::Sbert, 42);
    let truth = corpus.labels();
    println!("corpus: {} tables, {} schema types", corpus.items.len(), corpus.k);
    println!("example table header text: {:?}\n", corpus.items[0].text);

    let x = embed_corpus(&corpus, EmbeddingModel::Sbert, 43);

    // Standard-clustering baseline: Birch straight on the embeddings.
    let birch = Birch::new(corpus.k).fit(&x, &mut rng(1));
    println!(
        "Birch    ARI {:.3}  ACC {:.3}",
        adjusted_rand_index(&birch.labels, &truth),
        accuracy(&birch.labels, &truth)
    );

    // TableDC with the paper's schema-inference budget (200 epochs,
    // 30 pretraining).
    let config = TableDcConfig { epochs: 200, pretrain_epochs: 30, ..TableDcConfig::new(corpus.k) };
    let (_, fit) = TableDc::fit(config, &x, &mut rng(2));
    println!(
        "TableDC  ARI {:.3}  ACC {:.3}\n",
        adjusted_rand_index(&fit.labels, &truth),
        accuracy(&fit.labels, &truth)
    );

    // Show a couple of discovered clusters: tables TableDC grouped as
    // sharing a schema.
    for cluster in 0..2 {
        let members: Vec<&str> = corpus
            .items
            .iter()
            .zip(&fit.labels)
            .filter(|(_, &l)| l == cluster)
            .map(|(item, _)| item.text.as_str())
            .take(4)
            .collect();
        println!("cluster {cluster} sample tables:");
        for m in members {
            println!("  - {m}");
        }
    }
}
