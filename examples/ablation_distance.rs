//! Distance × kernel ablation demo (the Table 5 axes): run TableDC on one
//! dense overlapping workload under every distance and kernel combination
//! and print the resulting quality grid.
//!
//! ```sh
//! cargo run --release -p bench --example ablation_distance
//! ```

use clustering::metrics::adjusted_rand_index;
use datagen::{generate_mixture, MixtureConfig};
use tabledc::{Covariance, Distance, Kernel, TableDc, TableDcConfig};
use tensor::random::rng;

fn main() {
    let data = generate_mixture(
        &MixtureConfig {
            n: 300,
            k: 6,
            dim: 24,
            separation: 2.0,
            correlation: 0.5,
            normalize: true,
            ..Default::default()
        },
        &mut rng(11),
    );

    let distances = [
        ("Euclidean", Distance::Euclidean),
        ("Cosine", Distance::Cosine),
        ("Mahalanobis(0.01I)", Distance::Mahalanobis(Covariance::ScaledIdentity(0.01))),
        ("Mahalanobis(emp)", Distance::Mahalanobis(Covariance::Empirical { shrinkage: 0.5 })),
    ];
    let kernels = [
        ("Cauchy", Kernel::Cauchy { gamma: 1.0 }),
        ("Student-t", Kernel::StudentT { nu: 1.0 }),
        ("Normal", Kernel::Normal { sigma: 1.0 }),
    ];

    println!("{:<20} {:>10} {:>10} {:>10}", "distance \\ kernel", "Cauchy", "Student-t", "Normal");
    for (dname, dist) in distances {
        let mut cells = Vec::new();
        for (_, kernel) in kernels {
            let config = TableDcConfig {
                distance: dist,
                kernel,
                epochs: 60,
                pretrain_epochs: 20,
                ..TableDcConfig::new(6)
            };
            let (_, fit) = TableDc::fit(config, &data.x, &mut rng(3));
            cells.push(adjusted_rand_index(&fit.labels, &data.labels));
        }
        println!(
            "{:<20} {:>10.3} {:>10.3} {:>10.3}",
            dname, cells[0], cells[1], cells[2]
        );
    }
    println!("\n(rows: distance in the self-supervised module; cells: ARI)");
}
