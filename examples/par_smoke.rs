//! Parallel-runtime smoke check: times `sq_euclidean_cdist` on a
//! 2000×128 matrix with a serial pool and with the full machine, verifies
//! the outputs are bit-identical, and exits non-zero if the parallel run is
//! more than 1.5× slower than serial (a regression guard, not a benchmark).
//!
//! ```sh
//! cargo run --release -p bench --example par_smoke
//! ```

use std::time::{Duration, Instant};

use runtime::ThreadPool;
use tensor::random::{randn, rng};
use tensor::{par, Matrix};

/// Best-of-`reps` wall time for one cdist on the given pool.
fn time_cdist(pool: &ThreadPool, x: &Matrix, y: &Matrix, reps: usize) -> (Duration, Matrix) {
    let mut best = Duration::MAX;
    let mut out = Matrix::zeros(0, 0);
    for _ in 0..reps {
        let started = Instant::now();
        let d = par::sq_euclidean_cdist(pool, x, y);
        best = best.min(started.elapsed());
        out = d;
    }
    (best, out)
}

fn main() {
    let mut r = rng(42);
    let x = randn(2000, 128, &mut r);
    let y = randn(256, 128, &mut r);

    let serial = ThreadPool::new(1);
    let parallel = runtime::global();
    println!(
        "pools: serial = 1 thread, parallel = {} threads ({}={:?})",
        parallel.threads(),
        runtime::THREADS_ENV,
        std::env::var(runtime::THREADS_ENV).ok()
    );

    // Warm-up outside the timed region.
    let _ = time_cdist(&serial, &x, &y, 1);
    let _ = time_cdist(parallel, &x, &y, 1);

    let (t_serial, d_serial) = time_cdist(&serial, &x, &y, 5);
    let (t_parallel, d_parallel) = time_cdist(parallel, &x, &y, 5);
    println!("sq_euclidean_cdist 2000x128 · 256x128:");
    println!("  serial   {t_serial:?}");
    println!("  parallel {t_parallel:?}");

    assert!(d_serial == d_parallel, "serial and parallel cdist outputs differ");
    println!("  outputs bit-identical: ok");

    let stats = parallel.stats();
    println!(
        "  pool stats: {} tasks, {} steals, busy {:?}",
        stats.tasks_executed, stats.steals, stats.busy
    );

    // With one worker the "parallel" pool *is* the serial pool; only apply
    // the slowdown gate when there is real parallelism to exercise.
    if parallel.threads() > 1 {
        let limit = t_serial.as_secs_f64() * 1.5;
        if t_parallel.as_secs_f64() > limit {
            eprintln!(
                "FAIL: parallel cdist {t_parallel:?} is more than 1.5x serial {t_serial:?}"
            );
            std::process::exit(1);
        }
        println!(
            "  speedup {:.2}x (gate: parallel must be <= 1.5x serial)",
            t_serial.as_secs_f64() / t_parallel.as_secs_f64()
        );
    }
    println!("par_smoke: ok");
}
