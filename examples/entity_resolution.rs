//! Entity resolution end-to-end: generate a MusicBrainz-style corpus of
//! duplicated records, cluster them with TableDC and with a JedAI-style
//! workflow, and compare cluster fragmentation (unary clusters, §4.5 iv).
//!
//! ```sh
//! cargo run --release -p bench --example entity_resolution
//! ```

use baselines::{Jedai, JedaiMetric};
use clustering::metrics::{accuracy, adjusted_rand_index, unary_cluster_count};
use datagen::{embed_corpus, EmbeddingModel, Profile, Scale};
use tabledc::{TableDc, TableDcConfig};
use tensor::random::rng;

fn main() {
    let profile = Profile::MusicBrainz;
    let corpus = profile.corpus(Scale::Scaled, EmbeddingModel::Sbert, 42);
    let truth = corpus.labels();
    println!("corpus: {} records of {} entities", corpus.items.len(), corpus.k);

    // Two noisy duplicates of the same entity.
    let (first, second) = {
        let target = corpus.items[0].label;
        let mut it = corpus.items.iter().filter(|i| i.label == target);
        (it.next().expect("first"), it.next().expect("dup"))
    };
    println!("duplicate pair example:\n  {}\n  {}\n", first.text, second.text);

    // JedAI-style schema-agnostic workflow on the raw text.
    let jedai = Jedai::new(JedaiMetric::Jaccard, 0.5).fit(&corpus.texts());
    println!(
        "JedAI-Jaccard  ARI {:.3}  ACC {:.3}  unary clusters {}",
        adjusted_rand_index(&jedai.labels, &truth),
        accuracy(&jedai.labels, &truth),
        unary_cluster_count(&jedai.labels)
    );

    // TableDC on SBERT-style record embeddings with the paper's
    // entity-resolution budget (50 epochs, 100 pretraining; the CF-tree
    // needs finer granularity with many clusters).
    let x = embed_corpus(&corpus, EmbeddingModel::Sbert, 43);
    let config = TableDcConfig { epochs: 50, pretrain_epochs: 100, ..TableDcConfig::new(corpus.k) };
    let (_, fit) = TableDc::fit(config, &x, &mut rng(2));
    println!(
        "TableDC        ARI {:.3}  ACC {:.3}  unary clusters {}",
        adjusted_rand_index(&fit.labels, &truth),
        accuracy(&fit.labels, &truth),
        unary_cluster_count(&fit.labels)
    );
}
