//! Offline stand-in for the subset of `criterion 0.5` this workspace uses.
//!
//! Implements a deliberately small wall-clock harness behind the criterion
//! API shape (`benchmark_group`, `bench_function`, `bench_with_input`,
//! `criterion_group!`/`criterion_main!`): each benchmark runs one warm-up
//! iteration, then timed iterations until either `sample_size` iterations
//! or the group's `measurement_time` elapses, and prints mean/min per
//! iteration. No statistics, plots, or comparisons — the point is that the
//! `cargo bench` targets build and run end-to-end offline.
//!
//! When invoked with `--test` (as `cargo test` does for benchmark targets)
//! every benchmark runs exactly one iteration so the tier-1 test gate stays
//! fast.

use std::fmt;
use std::time::{Duration, Instant};

/// Benchmark identifier combining a function name and a parameter, mirroring
/// `criterion::BenchmarkId`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `BenchmarkId::new("fn", param)` → displayed as `fn/param`.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self { label: format!("{}/{}", function_name.into(), parameter) }
    }
}

/// Anything acceptable as a benchmark name.
pub trait IntoBenchmarkLabel {
    fn into_label(self) -> String;
}

impl IntoBenchmarkLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkLabel for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoBenchmarkLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

/// Top-level benchmark driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo test` runs `harness = false` bench binaries with `--test`;
        // `cargo bench` passes `--bench`. Only full benching should measure.
        let test_mode = std::env::args().any(|a| a == "--test");
        Self { test_mode }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== bench group: {name} ==");
        BenchmarkGroup {
            test_mode: self.test_mode,
            sample_size: 10,
            measurement_time: Duration::from_secs(5),
            _criterion: self,
        }
    }
}

/// A group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'c> {
    test_mode: bool,
    sample_size: usize,
    measurement_time: Duration,
    _criterion: &'c mut Criterion,
}

impl<'c> BenchmarkGroup<'c> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; warm-up is fixed at one iteration.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Caps the total measuring time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkLabel, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into_label(), |b| f(b));
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkLabel,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into_label(), |b| f(b, input));
        self
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(&mut self) {}

    fn run(&mut self, label: String, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            samples: Vec::new(),
        };
        f(&mut bencher);
        let samples = &bencher.samples;
        if samples.is_empty() {
            println!("  {label}: no samples (routine never called iter)");
            return;
        }
        let total: Duration = samples.iter().sum();
        let mean = total / samples.len() as u32;
        let min = samples.iter().min().copied().unwrap_or_default();
        println!("  {label}: mean {mean:?}, min {min:?} over {} iters", samples.len());
    }
}

/// Timing handle passed to benchmark routines, mirroring
/// `criterion::Bencher`.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    measurement_time: Duration,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, storing one sample per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            self.samples.push(Duration::ZERO);
            return;
        }
        black_box(routine()); // warm-up, untimed
        let budget = Instant::now();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
            if budget.elapsed() > self.measurement_time {
                break;
            }
        }
    }
}

/// Opaque value barrier, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary entry point, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_round_trip() {
        let mut c = Criterion { test_mode: true };
        let mut calls = 0usize;
        {
            let mut group = c.benchmark_group("g");
            group.sample_size(3).measurement_time(Duration::from_millis(10));
            group.bench_function("f", |b| b.iter(|| calls += 1));
            group.bench_with_input(BenchmarkId::new("g", 7), &7, |b, &x| {
                b.iter(|| calls += x)
            });
            group.finish();
        }
        // test_mode runs exactly one iteration per bench (plus no warm-up).
        assert_eq!(calls, 1 + 7);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("TableDC", 40).into_label(), "TableDC/40");
    }
}
