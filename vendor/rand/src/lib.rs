//! Offline stand-in for the subset of `rand 0.8` this workspace uses.
//!
//! The build environment has no registry access, so the real `rand` crate
//! cannot be fetched. This vendored crate re-implements, in pure std Rust,
//! exactly the API surface the workspace touches:
//!
//! - [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`]
//! - [`Rng::gen`] for the primitive types sampled here
//! - [`Rng::gen_range`] over half-open and inclusive integer/float ranges
//! - [`Rng::gen_bool`]
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (ChaCha12), but every consumer in this
//! repository treats the RNG as an opaque seeded stream and asserts only
//! statistical or reproducibility properties, so the exact stream does not
//! matter. Determinism per seed is guaranteed.

use std::ops::{Range, RangeInclusive};

/// Seeding interface (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates an RNG whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface (subset of `rand::Rng`).
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of a supported primitive type.
    fn gen<T: SampleValue>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from a range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: Rng> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be drawn directly from an RNG via [`Rng::gen`].
pub trait SampleValue {
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl SampleValue for u64 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleValue for u32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl SampleValue for bool {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

impl SampleValue for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision, the standard
    /// `(x >> 11) * 2⁻⁵³` construction.
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleValue for f32 {
    fn sample<R: Rng>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Multiply-shift bounded sampling (Lemire); the tiny modulo
                // bias of a plain `% span` would be harmless here, but this
                // is just as cheap and exact enough for a shim.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    return rng.next_u64() as $t;
                }
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                let pick = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                lo.wrapping_add(pick as $t)
            }
        }
    )*};
}

impl_int_range!(usize, u8, u16, u32, u64, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        let u: f64 = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: Rng>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty inclusive f64 range");
        let u: f64 = f64::sample(rng);
        lo + u * (hi - lo)
    }
}

pub mod rngs {
    //! Concrete generators (subset of `rand::rngs`).

    use super::{Rng, SeedableRng};

    /// Deterministic seeded generator: xoshiro256++ with SplitMix64 seeding.
    ///
    /// Not the same stream as upstream `StdRng`, but deterministic per seed,
    /// full 64-bit output, and passes the statistical checks in this
    /// workspace's test suite (moment tests, permutation tests, etc.).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the canonical way to seed xoshiro.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = r.gen_range(3..7usize);
            assert!((3..7).contains(&x));
            let y = r.gen_range(0..=4u8);
            assert!(y <= 4);
            let z = r.gen_range(-2.0..=3.5f64);
            assert!((-2.0..=3.5).contains(&z));
        }
    }

    #[test]
    fn gen_range_covers_all_values() {
        let mut r = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all buckets hit: {seen:?}");
    }

    #[test]
    fn mean_of_uniform_is_half() {
        let mut r = StdRng::seed_from_u64(4);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut r = StdRng::seed_from_u64(5);
        let _ = r.gen_range(5..5usize);
    }
}
