//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Supports the property-test style used across the crates:
//!
//! ```ignore
//! proptest! {
//!     #[test]
//!     fn my_property(x in 0..10usize, v in proptest::collection::vec(-1.0..1.0f64, 8)) {
//!         prop_assert!(x < 10);
//!     }
//! }
//! ```
//!
//! Each property runs [`CASES`] deterministic cases (seeded per case index),
//! so failures are reproducible without shrinking. Strategies supported:
//! integer/float ranges, [`collection::vec`], and [`Strategy::prop_map`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::Range;

/// Number of generated cases per property.
pub const CASES: u64 = 64;

/// Deterministic RNG handed to strategies, one per case.
pub type TestRng = StdRng;

/// Creates the RNG for case `case` of the property named `name`.
/// Hashing the name decorrelates properties that share a case index.
pub fn case_rng(name: &str, case: u64) -> TestRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A generator of test values (subset of `proptest::strategy::Strategy`).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u8, u16, u32, u64, i32, i64, f64);

pub mod collection {
    //! Collection strategies (subset of `proptest::collection`).

    use super::{Strategy, TestRng};

    /// Strategy for a `Vec` of `len` values drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Strategy produced by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The common imports, mirroring `proptest::prelude`.
    pub use crate::{prop_assert, prop_assert_eq, proptest, Strategy};
}

/// Asserts a property-level condition; in this shim, equivalent to
/// `assert!` (no shrinking, failure reports the failing seed via panic).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Property-level equality assertion, equivalent to `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running [`CASES`] deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                for case in 0..$crate::CASES {
                    let mut rng = $crate::case_rng(stringify!($name), case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 0..5usize, y in -1.0..1.0f64) {
            prop_assert!(x < 5);
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vec_has_requested_length(v in crate::collection::vec(0..10u8, 7)) {
            prop_assert_eq!(v.len(), 7);
            prop_assert!(v.iter().all(|&b| b < 10));
        }

        #[test]
        fn prop_map_applies(d in (0..4usize).prop_map(|x| x * 2)) {
            prop_assert!(d % 2 == 0 && d < 8);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let a: Vec<u64> = (0..4).map(|c| rand::Rng::next_u64(&mut crate::case_rng("p", c))).collect();
        let b: Vec<u64> = (0..4).map(|c| rand::Rng::next_u64(&mut crate::case_rng("p", c))).collect();
        assert_eq!(a, b);
        assert_ne!(a[0], a[1]);
    }
}
