//! Cross-crate tests of the cluster-structure observatory: the committed
//! golden HTML page, report determinism, and the trace → diagnostics →
//! manifest → report pipeline end to end.

use bench::htmlreport::{render, summarize_trace};
use bench::ledger::{ConvergenceSummary, HealthSummary, LedgerHistory, RunManifest};
use datagen::{generate_mixture, MixtureConfig};
use tabledc::{TableDc, TableDcConfig};
use tensor::random::rng;

fn fixture_path(name: &str) -> String {
    format!("{}/../../results/runs/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn load_fixture(name: &str) -> RunManifest {
    RunManifest::load(&fixture_path(name)).expect("fixture manifest parses")
}

/// The committed golden page is exactly what `render` produces from the
/// committed fixture manifest. Regenerate it with
/// `cargo run -p bench --bin report -- results/runs/fixture-baseline.json \
///  --out results/runs/fixture-baseline.html` when the report format
/// changes deliberately.
#[test]
fn golden_html_matches_committed_fixture_byte_for_byte() {
    let manifest = load_fixture("fixture-baseline.json");
    let rendered = render(&manifest, None, None);
    let committed = std::fs::read_to_string(fixture_path("fixture-baseline.html"))
        .expect("committed golden page exists");
    assert!(
        rendered == committed,
        "rendered page diverges from the committed golden \
         (lengths: rendered {} vs committed {})",
        rendered.len(),
        committed.len()
    );
}

#[test]
fn fixture_diff_report_is_deterministic_and_flags_the_regression() {
    let base = load_fixture("fixture-baseline.json");
    let cand = load_fixture("fixture-regressed.json");
    let a = render(&cand, Some(&base), None);
    let b = render(&cand, Some(&base), None);
    assert_eq!(a, b, "diff render is not deterministic");
    assert!(a.contains("id=\"diff\""));
    assert!(a.contains("tabledc/ari"), "doctored metric drop missing from diff");
    assert!(a.contains("health.rank"), "health regression missing from diff");
    // The regressed run's own verdicts render with their badges.
    assert!(a.contains("aborted"));
    assert!(a.contains("collapsed"));
    assert!(!a.contains("NaN"));
}

#[test]
fn fixture_manifests_carry_the_diagnostics_series() {
    for name in ["fixture-baseline.json", "fixture-regressed.json"] {
        let m = load_fixture(name);
        let epochs = m.history.re_loss.len();
        assert!(epochs > 0, "{name}: empty history");
        for (series, values) in m.history.series() {
            assert_eq!(values.len(), epochs, "{name}: series {series} length mismatch");
        }
        let c = m.convergence.as_ref().expect("fixture records convergence");
        assert!(!c.status.is_empty() && !c.rule.is_empty());
    }
}

/// A real (tiny) traced fit drives the whole observatory: the trace
/// carries run-id-stamped `tabledc.diag` events that `summarize_trace`
/// folds, the fit's verdict lands in a manifest, and the report renders
/// all of it deterministically.
#[test]
fn traced_fit_renders_into_a_report_end_to_end() {
    let data = generate_mixture(
        &MixtureConfig { n: 60, k: 3, dim: 8, separation: 4.0, ..Default::default() },
        &mut rng(11),
    );
    let config = TableDcConfig {
        epochs: 8,
        pretrain_epochs: 2,
        ..TableDcConfig::new(3)
    };
    let (fit, trace_text) = obs::test_support::with_memory_sink(|| {
        let (_, fit) = TableDc::fit(config, &data.x, &mut rng(5));
        fit
    });
    let trace_text = trace_text.join("\n");

    let summary = summarize_trace(&trace_text).expect("trace folds");
    assert!(
        summary.events.get("tabledc.diag").copied().unwrap_or(0) >= 8,
        "expected one tabledc.diag per epoch, got {:?}",
        summary.events.get("tabledc.diag")
    );
    assert_eq!(summary.events.get("tabledc.convergence"), Some(&1));

    let mut manifest = RunManifest::new("observatory-test");
    manifest.health = HealthSummary::from_report(&fit.health);
    manifest.convergence = Some(ConvergenceSummary::from_verdict(&fit.convergence));
    manifest.metrics = vec![("tabledc/clusters_used".to_string(), fit.clusters_used as f64)];
    manifest.history = LedgerHistory::from_history(&fit.history);

    // The diagnostics history is epoch-aligned with the loss history.
    assert_eq!(manifest.history.delta_label_frac.len(), manifest.history.re_loss.len());
    assert_eq!(manifest.history.max_share.len(), manifest.history.re_loss.len());

    let a = render(&manifest, None, Some(&summary));
    let b = render(&manifest, None, Some(&summary));
    assert_eq!(a, b, "report is not deterministic");
    for id in ["run-header", "health", "convergence", "metrics", "series", "profile"] {
        assert!(a.contains(&format!("id=\"{id}\"")), "missing section {id}");
    }
    assert!(a.contains("id=\"spark-delta_label_frac\""));
    assert!(a.contains("tabledc.fit"), "span tree missing from profile section");
    assert!(!a.contains("NaN"));
}

/// The manifest JSON round-trips the convergence verdict, so `report`
/// reading a freshly written manifest sees exactly what the fit decided.
#[test]
fn manifest_round_trip_preserves_convergence_and_diag_series() {
    let mut m = load_fixture("fixture-baseline.json");
    m.run_id = "observatory-roundtrip".to_string();
    let back = RunManifest::from_json(&m.to_json()).expect("round trip parses");
    assert_eq!(m, back);
}
