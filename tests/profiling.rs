//! Integration tests for the hierarchical profiler: a real (tiny)
//! `TableDc::fit` run must produce a span tree where `tabledc.fit` is an
//! ancestor of the k-means and matmul kernels, exportable in folded-stack
//! format, and — with allocation tracking on — carry attributed bytes.
//!
//! These run in their own test binary (own process) so the global span
//! tree reflects only this file's fits plus whatever the harness itself
//! allocates; every assertion is existence-based, never exact-count, so
//! intra-binary test parallelism cannot flake them. Each test body runs
//! under `with_sink_disabled`, which both serializes tests touching the
//! global tree and keeps span events out of any trace sink.

use tabledc::{TableDc, TableDcConfig};
use tensor::random::{randn, rng};

fn tiny_fit(seed: u64) {
    let dim = 12;
    let config = TableDcConfig {
        latent_dim: 8,
        encoder_dims: Some(vec![dim, 16, 8]),
        pretrain_epochs: 2,
        epochs: 2,
        ..TableDcConfig::new(3)
    };
    let x = randn(40, dim, &mut rng(seed));
    let (_, fit) = TableDc::fit(config, &x, &mut rng(seed + 1));
    assert_eq!(fit.labels.len(), 40);
}

#[test]
fn fit_span_is_ancestor_of_kmeans_and_matmul_in_folded_output() {
    obs::test_support::with_sink_disabled(|| {
        obs::profile::reset();
        tiny_fit(11);

        let folded = obs::folded();
        assert!(!folded.is_empty(), "folded output empty after a traced fit");
        let fit_lines: Vec<&str> =
            folded.lines().filter(|l| l.starts_with("tabledc.fit")).collect();
        assert!(
            !fit_lines.is_empty(),
            "no folded line rooted at tabledc.fit:\n{folded}"
        );
        // Every folded line is `path;to;node self_us` — numeric tail.
        for line in folded.lines() {
            let (_, us) = line.rsplit_once(' ').expect("folded line has a value");
            us.parse::<u64>().unwrap_or_else(|_| panic!("non-numeric self time in {line:?}"));
        }
        assert!(
            fit_lines.iter().any(|l| l.contains(";kmeans.")),
            "tabledc.fit has no kmeans descendant:\n{folded}"
        );
        assert!(
            fit_lines.iter().any(|l| l.contains(";tensor.matmul")),
            "tabledc.fit has no tensor.matmul descendant \
             (span context not crossing the pool?):\n{folded}"
        );
        // The same ancestry must hold in the structured snapshot.
        let snap = obs::profile::snapshot();
        let fit = snap
            .iter()
            .find(|n| n.name == "tabledc.fit")
            .expect("tabledc.fit node in snapshot");
        assert_eq!(fit.depth, 0, "tabledc.fit should be a root span");
        assert!(fit.calls >= 1);
        assert!(fit.total_ms > 0.0);
    });
}

#[test]
fn alloc_tracking_attributes_bytes_to_fit_and_pretrain() {
    obs::test_support::with_sink_disabled(|| {
        obs::profile::reset();
        obs::profile::set_alloc_tracking(true);
        tiny_fit(17);
        obs::profile::set_alloc_tracking(false);

        let snap = obs::profile::snapshot();
        let subtree_bytes = |root: &str| -> u64 {
            snap.iter()
                .filter(|n| n.path == root || n.path.starts_with(&format!("{root};")))
                .map(|n| n.alloc_bytes)
                .sum()
        };
        let fit_bytes = subtree_bytes("tabledc.fit");
        assert!(fit_bytes > 0, "no bytes attributed under tabledc.fit");
        let pretrain = snap
            .iter()
            .find(|n| n.name == "ae.pretrain")
            .expect("ae.pretrain node in snapshot");
        assert!(
            pretrain.alloc_bytes > 0,
            "ae.pretrain attributed no bytes (allocator hook inactive?)"
        );
        assert!(pretrain.allocs > 0);
        // The aggregate view perfdiff consumes must agree.
        let agg = obs::profile::aggregate();
        assert!(agg["ae.pretrain"].alloc_bytes > 0);
        assert!(agg["tabledc.fit"].calls >= 1);
    });
}
