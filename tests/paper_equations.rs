//! Equation-level verification: each numbered equation of the paper's §3
//! is checked directly against its implementation, independent of any
//! training dynamics.

use autograd::Tape;
use tabledc::{target_distribution, Covariance, Distance, Kernel};
use tensor::distance::{sq_euclidean_cdist, sq_mahalanobis_cdist};
use tensor::linalg::{cholesky, solve_lower, solve_upper};
use tensor::random::{randn, rng};
use tensor::Matrix;

/// Eq. 3: Σ = δ·I with δ = 0.01.
#[test]
fn eq3_scaled_identity_covariance() {
    let sigma = Matrix::scaled_identity(5, 0.01);
    for i in 0..5 {
        for j in 0..5 {
            assert_eq!(sigma[(i, j)], if i == j { 0.01 } else { 0.0 });
        }
    }
}

/// Eq. 4: the Cholesky factor satisfies C = L·Lᵀ with lower-triangular L.
#[test]
fn eq4_cholesky_factorization() {
    let mut r = rng(1);
    let b = randn(4, 4, &mut r);
    let mut spd = b.transpose().matmul(&b);
    for i in 0..4 {
        spd[(i, i)] += 1.0;
    }
    let l = cholesky(&spd).expect("SPD input");
    assert!(l.matmul(&l.transpose()).max_abs_diff(&spd) < 1e-9);
    for i in 0..4 {
        for j in (i + 1)..4 {
            assert_eq!(l[(i, j)], 0.0, "L must be lower triangular");
        }
    }
}

/// Eq. 5: Σ⁻¹ = L⁻ᵀ·L⁻¹ computed via the two triangular solves.
#[test]
fn eq5_inverse_via_triangular_solves() {
    let sigma = Matrix::scaled_identity(3, 0.01);
    let l = cholesky(&sigma).expect("SPD");
    let eye = Matrix::identity(3);
    let linv = solve_lower(&l, &eye).expect("solve");
    let inv = solve_upper(&l.transpose(), &linv).expect("solve");
    // (0.01·I)⁻¹ = 100·I.
    assert!(inv.max_abs_diff(&Matrix::scaled_identity(3, 100.0)) < 1e-9);
}

/// Eq. 6: D_M²(z, c) = (z−c)ᵀ Σ⁻¹ (z−c); for Σ = δI this is ‖z−c‖²/δ.
#[test]
fn eq6_mahalanobis_distance() {
    let mut r = rng(2);
    let z = randn(6, 4, &mut r);
    let c = randn(3, 4, &mut r);
    let general = sq_mahalanobis_cdist(&z, &c, &Matrix::scaled_identity(4, 0.01)).expect("SPD");
    let scaled = &sq_euclidean_cdist(&z, &c) * 100.0;
    assert!(general.max_abs_diff(&scaled) < 1e-6);
}

/// Eq. 7: q_ij = 1 / (1 + D²/γ²).
#[test]
fn eq7_cauchy_kernel_values() {
    let t = Tape::new();
    let d2 = t.constant(Matrix::from_rows(&[&[0.0, 1.0, 4.0]]));
    let gamma = 2.0;
    let q = t.value(Kernel::Cauchy { gamma }.apply(&t, d2));
    assert!((q[(0, 0)] - 1.0).abs() < 1e-12);
    assert!((q[(0, 1)] - 1.0 / (1.0 + 1.0 / 4.0)).abs() < 1e-12);
    assert!((q[(0, 2)] - 1.0 / (1.0 + 4.0 / 4.0)).abs() < 1e-12);
}

/// Eq. 8 + 9: normalized q is a simplex row; m = softmax(q) is a sharper
/// simplex row; argmax is preserved by the softmax.
#[test]
fn eq8_eq9_assignment_normalization_and_softmax() {
    let t = Tape::new();
    let mut r = rng(3);
    let z = t.constant(randn(8, 4, &mut r));
    let c = t.constant(randn(3, 4, &mut r));
    let d2 = Distance::Mahalanobis(Covariance::ScaledIdentity(0.01))
        .sq_cdist(&t, z, c)
        .expect("distance");
    let q_raw = Kernel::Cauchy { gamma: 1.0 }.apply(&t, d2);
    let sums = t.add_scalar(t.row_sums(q_raw), 1e-10);
    let q = t.div_col_broadcast(q_raw, sums);
    let m = t.softmax_rows(q);
    let (qv, mv) = (t.value(q), t.value(m));
    for i in 0..8 {
        let qs: f64 = qv.row(i).iter().sum();
        let ms: f64 = mv.row(i).iter().sum();
        // The ε guard of Eq. 8 leaves row sums a few 1e-7 under 1 when the
        // kernel values are tiny (sharp δ = 0.01 Mahalanobis distances).
        assert!((qs - 1.0).abs() < 1e-5, "Eq. 8 row {i} sums to {qs}");
        assert!((ms - 1.0).abs() < 1e-9, "Eq. 9 row {i} sums to {ms}");
    }
    assert_eq!(qv.argmax_rows(), mv.argmax_rows(), "softmax must preserve the argmax");
}

/// Eq. 11: p_ij ∝ q_ij²/f_j sharpens confident assignments and stays a
/// valid distribution.
#[test]
fn eq11_target_distribution_sharpens() {
    let q = Matrix::from_rows(&[&[0.7, 0.2, 0.1], &[0.34, 0.33, 0.33]]);
    let p = target_distribution(&q);
    for i in 0..2 {
        let s: f64 = p.row(i).iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
    }
    // Confident row becomes sharper.
    assert!(p[(0, 0)] > q[(0, 0)]);
    // The f_j division deliberately *reorders* near-uniform rows away from
    // globally frequent clusters ("preventing cluster dominance", §2.1):
    // cluster 0 has the largest soft frequency, so the ambiguous second row
    // is pushed off it.
    let f0 = q[(0, 0)] + q[(1, 0)];
    let f2 = q[(0, 2)] + q[(1, 2)];
    assert!(f0 > f2);
    assert!(p[(1, 0)] < p[(1, 2)], "row 2 should be steered away from the dominant cluster");
}

/// Eq. 10 + 12 + 13: the total loss is α·KL(p‖m) + re_loss with α = 0.9,
/// and evaluates to the hand-computed value on a fixed example.
#[test]
fn eq13_total_loss_combination() {
    use nn::loss::{kl_div, mse};
    let t = Tape::new();
    let p = Matrix::from_rows(&[&[0.8, 0.2]]);
    let m = t.constant(Matrix::from_rows(&[&[0.5, 0.5]]));
    let x = t.constant(Matrix::from_rows(&[&[1.0, 0.0]]));
    let xhat = t.constant(Matrix::from_rows(&[&[0.5, 0.5]]));
    let ce = kl_div(&t, &p, m);
    let re = mse(&t, x, xhat);
    let total = t.add(t.scale(ce, 0.9), re);
    let expected_ce = 0.8 * (0.8f64 / 0.5).ln() + 0.2 * (0.2f64 / 0.5).ln();
    let expected_re = (0.25 + 0.25) / 2.0;
    let got = t.value(total)[(0, 0)];
    assert!((got - (0.9 * expected_ce + expected_re)).abs() < 1e-6, "loss = {got}");
}

/// The paper's Student-t vs Cauchy claim: at ν = 1 they coincide, and for
/// large ν the Student-t kernel approaches the Gaussian (thin tails).
#[test]
fn student_t_limits() {
    let t = Tape::new();
    let d2 = t.constant(Matrix::from_rows(&[&[9.0]]));
    let cauchy = t.value(Kernel::Cauchy { gamma: 1.0 }.apply(&t, d2))[(0, 0)];
    let t1 = t.value(Kernel::StudentT { nu: 1.0 }.apply(&t, d2))[(0, 0)];
    assert!((cauchy - t1).abs() < 1e-12);
    let t50 = t.value(Kernel::StudentT { nu: 50.0 }.apply(&t, d2))[(0, 0)];
    let normal = t.value(Kernel::Normal { sigma: 1.0 }.apply(&t, d2))[(0, 0)];
    // ν=50 is already several times below the heavy-tailed Cauchy and
    // above the Gaussian it converges to.
    assert!(t50 < cauchy / 5.0);
    assert!(normal < t50);
}
