//! End-to-end test of the *real-data* path: CSV text → `tabular` parsing →
//! ground-truth-free row embeddings → TableDC → evaluation. No synthetic
//! embedding simulator is involved, so this exercises exactly what a
//! downstream user of the library would run.

use clustering::metrics::{accuracy, adjusted_rand_index};
use tabledc::{TableDc, TableDcConfig};
use tabular::{embed_rows, parse_csv, write_csv, CsvOptions, EncodeOptions, Table};
use tensor::random::rng;

/// Builds a small duplicate-laden CSV with known entity structure.
fn duplicate_csv() -> (String, Vec<usize>) {
    let canon = [
        "hey jude,beatles,1968",
        "let it be,beatles,1970",
        "paranoid,black sabbath,1970",
        "war pigs,black sabbath,1970",
        "so what,miles davis,1959",
        "blue in green,miles davis,1959",
        "smells like teen spirit,nirvana,1991",
        "come as you are,nirvana,1991",
        "karma police,radiohead,1997",
        "paranoid android,radiohead,1997",
    ];
    // Three noisy copies per record: case change, token swap, typo-ish cut.
    let mut rows = vec!["title,artist,year".to_string()];
    let mut truth = Vec::new();
    for (e, base) in canon.iter().enumerate() {
        let fields: Vec<&str> = base.split(',').collect();
        let variants = [
            format!("{},{},{}", fields[0], fields[1], fields[2]),
            format!("{},{},{}", fields[0].to_uppercase(), fields[1], fields[2]),
            format!(
                "{},{},{}",
                fields[0],
                fields[1].to_uppercase(),
                fields[2]
            ),
        ];
        for v in variants {
            rows.push(v);
            truth.push(e);
        }
    }
    (rows.join("\n") + "\n", truth)
}

#[test]
fn csv_to_tabledc_round_trip() {
    let (csv_text, truth) = duplicate_csv();
    let records = parse_csv(&csv_text, CsvOptions::default()).expect("valid CSV");
    let table = Table::from_records("songs", &records, true);
    assert_eq!(table.n_rows(), truth.len());
    assert_eq!(table.n_cols(), 3);

    let x = embed_rows(&table, EncodeOptions::default());
    let config = TableDcConfig {
        latent_dim: 8,
        encoder_dims: Some(vec![x.cols(), 32, 8]),
        pretrain_epochs: 40,
        epochs: 20,
        ..TableDcConfig::new(10)
    };
    let (_, fit) = TableDc::fit(config, &x, &mut rng(3));
    let ari = adjusted_rand_index(&fit.labels, &truth);
    let acc = accuracy(&fit.labels, &truth);
    assert!(ari > 0.6, "CSV dedup ARI = {ari}");
    assert!(acc > 0.6, "CSV dedup ACC = {acc}");
}

#[test]
fn csv_writer_parser_round_trip_preserves_tabledc_input() {
    let (csv_text, _) = duplicate_csv();
    let records = parse_csv(&csv_text, CsvOptions::default()).expect("valid CSV");
    let rewritten = write_csv(&records, ',');
    let reparsed = parse_csv(&rewritten, CsvOptions::default()).expect("round trip");
    assert_eq!(records, reparsed);
    // Embeddings of identical tables are identical.
    let t1 = Table::from_records("a", &records, true);
    let t2 = Table::from_records("a", &reparsed, true);
    let e1 = embed_rows(&t1, EncodeOptions::default());
    let e2 = embed_rows(&t2, EncodeOptions::default());
    assert_eq!(e1, e2);
}

#[test]
fn type_inference_supports_schema_text() {
    let csv = "id,price,active,comment\n1,9.99,true,good\n2,12.50,false,bad\n";
    let records = parse_csv(csv, CsvOptions::default()).expect("valid CSV");
    let table = Table::from_records("products", &records, true);
    use tabular::ColumnType;
    assert_eq!(table.columns[0].infer_type(), ColumnType::Integer);
    assert_eq!(table.columns[1].infer_type(), ColumnType::Float);
    assert_eq!(table.columns[2].infer_type(), ColumnType::Boolean);
    assert_eq!(table.columns[3].infer_type(), ColumnType::Text);
    assert_eq!(table.schema_text(), "id price active comment");
}
