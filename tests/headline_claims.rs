//! Behavioural regression tests of the paper's headline claims, at smoke
//! scale with deliberately loose margins. These are the "shape" checks of
//! DESIGN.md §4: who wins, not by how much.

use bench::experiments::{figures, RunOptions};
use clustering::metrics::adjusted_rand_index;
use clustering::KMeans;
use datagen::{generate_mixture, MixtureConfig};
use tabledc::{Distance, Kernel, TableDc, TableDcConfig};
use tensor::random::rng;

fn dense_overlap_workload(seed: u64) -> datagen::Generated {
    generate_mixture(
        &MixtureConfig {
            n: 150,
            k: 5,
            dim: 16,
            separation: 2.0,
            correlation: 0.5,
            normalize: true,
            ..Default::default()
        },
        &mut rng(seed),
    )
}

fn smoke(k: usize, dim: usize) -> TableDcConfig {
    TableDcConfig {
        latent_dim: 8,
        encoder_dims: Some(vec![dim, 32, 8]),
        pretrain_epochs: 15,
        epochs: 30,
        ..TableDcConfig::new(k)
    }
}

/// Headline: deep clustering with TableDC beats plain K-means on dense,
/// overlapping, correlated embeddings (Tables 2–4 in aggregate).
#[test]
fn tabledc_beats_kmeans_on_dense_overlap() {
    let mut wins = 0;
    for seed in [1u64, 2, 3] {
        let g = dense_overlap_workload(seed);
        let km = KMeans::paper_protocol(5).fit(&g.x, &mut rng(seed + 10));
        let (_, fit) = TableDc::fit(smoke(5, 16), &g.x, &mut rng(seed + 20));
        let km_ari = adjusted_rand_index(&km.labels, &g.labels);
        let dc_ari = adjusted_rand_index(&fit.labels, &g.labels);
        if dc_ari >= km_ari - 0.02 {
            wins += 1;
        }
    }
    assert!(wins >= 2, "TableDC matched/beat K-means on only {wins}/3 seeds");
}

/// Table 5 shape: the Mahalanobis+Cauchy default should not lose clearly
/// to the Normal-kernel variant on overlapping data (the Normal kernel's
/// thin tail is the paper's failure case).
#[test]
fn cauchy_kernel_not_worse_than_normal_on_overlap() {
    let g = dense_overlap_workload(7);
    let run = |kernel: Kernel| {
        let config = TableDcConfig { kernel, ..smoke(5, 16) };
        let (_, fit) = TableDc::fit(config, &g.x, &mut rng(8));
        adjusted_rand_index(&fit.labels, &g.labels)
    };
    let cauchy = run(Kernel::PAPER);
    let normal = run(Kernel::Normal { sigma: 1.0 });
    assert!(cauchy > normal - 0.1, "Cauchy {cauchy} vs Normal {normal}");
}

/// Table 5 shape: the scaled-identity Mahalanobis default should not lose
/// clearly to the plain Euclidean variant.
#[test]
fn mahalanobis_not_worse_than_euclidean_on_overlap() {
    let g = dense_overlap_workload(9);
    let run = |distance: Distance| {
        let config = TableDcConfig { distance, ..smoke(5, 16) };
        let (_, fit) = TableDc::fit(config, &g.x, &mut rng(10));
        adjusted_rand_index(&fit.labels, &g.labels)
    };
    let mahalanobis = run(Distance::PAPER);
    let euclidean = run(Distance::Euclidean);
    assert!(
        mahalanobis > euclidean - 0.1,
        "Mahalanobis {mahalanobis} vs Euclidean {euclidean}"
    );
}

/// Figure 3 shape: TableDC's runtime must not blow up faster than SDCN's
/// as the number of clusters grows (quasi-linear vs GCN-quadratic claim).
#[test]
#[cfg_attr(debug_assertions, ignore = "timing-based; run with --release")]
fn tabledc_scales_no_worse_than_sdcn() {
    let opts = RunOptions { epoch_factor: 0.2, ..RunOptions::quick() };
    let result = figures::fig3(opts, &[15, 60]);
    let tabledc = result.growth_factor("TableDC");
    let sdcn = result.growth_factor("SDCN");
    assert!(
        tabledc <= sdcn * 2.0,
        "TableDC growth {tabledc} vs SDCN growth {sdcn}"
    );
}
