//! Cross-crate integration tests: the full corpus → embedding → clustering
//! → evaluation pipeline for each of the paper's three tasks, at smoke
//! scale.

use clustering::metrics::{accuracy, adjusted_rand_index};
use datagen::corpus::{
    domain_corpus, entity_corpus, schema_corpus, DomainCorpusConfig, EntityCorpusConfig,
    SchemaCorpusConfig,
};
use datagen::{embed_corpus, EmbeddingModel};
use tabledc::{TableDc, TableDcConfig};
use tensor::random::rng;

fn smoke_config(k: usize, dim: usize) -> TableDcConfig {
    TableDcConfig {
        latent_dim: 16,
        encoder_dims: Some(vec![dim, 64, 16]),
        pretrain_epochs: 30,
        epochs: 20,
        ..TableDcConfig::new(k)
    }
}

#[test]
fn schema_inference_pipeline() {
    let corpus = schema_corpus(
        &SchemaCorpusConfig { n_tables: 60, n_types: 5, ..Default::default() },
        &mut rng(1),
    );
    let x = embed_corpus(&corpus, EmbeddingModel::Sbert, 2);
    let (_, fit) = TableDc::fit(smoke_config(5, x.cols()), &x, &mut rng(3));
    let truth = corpus.labels();
    assert_eq!(fit.labels.len(), 60);
    let ari = adjusted_rand_index(&fit.labels, &truth);
    assert!(ari > 0.15, "schema inference ARI = {ari}");
}

#[test]
fn entity_resolution_pipeline() {
    let corpus = entity_corpus(
        &EntityCorpusConfig { n_entities: 25, dups: (2, 4), noise: 0.4, n_attrs: 4 },
        &mut rng(4),
    );
    let x = embed_corpus(&corpus, EmbeddingModel::Sbert, 5);
    let (_, fit) = TableDc::fit(smoke_config(25, x.cols()), &x, &mut rng(6));
    let truth = corpus.labels();
    let acc = accuracy(&fit.labels, &truth);
    assert!(acc > 0.3, "entity resolution ACC = {acc}");
}

#[test]
fn domain_discovery_pipeline() {
    let corpus = domain_corpus(
        &DomainCorpusConfig { n_columns: 60, n_domains: 6, ..Default::default() },
        &mut rng(7),
    );
    let x = embed_corpus(&corpus, EmbeddingModel::T5, 8);
    let (_, fit) = TableDc::fit(smoke_config(6, x.cols()), &x, &mut rng(9));
    let truth = corpus.labels();
    let ari = adjusted_rand_index(&fit.labels, &truth);
    assert!(ari > 0.15, "domain discovery ARI = {ari}");
}

#[test]
fn pipeline_is_deterministic_end_to_end() {
    let run = || {
        let corpus = schema_corpus(
            &SchemaCorpusConfig { n_tables: 30, n_types: 3, ..Default::default() },
            &mut rng(10),
        );
        let x = embed_corpus(&corpus, EmbeddingModel::Sbert, 11);
        let (_, fit) = TableDc::fit(smoke_config(3, x.cols()), &x, &mut rng(12));
        fit.labels
    };
    assert_eq!(run(), run());
}

#[test]
fn out_of_sample_prediction_is_consistent() {
    // Train on half the corpus, predict the other half: duplicates of
    // training-set concepts should mostly land in coherent clusters.
    let corpus = domain_corpus(
        &DomainCorpusConfig { n_columns: 80, n_domains: 4, ..Default::default() },
        &mut rng(13),
    );
    let x = embed_corpus(&corpus, EmbeddingModel::Sbert, 14);
    let train_idx: Vec<usize> = (0..40).collect();
    let test_idx: Vec<usize> = (40..80).collect();
    let x_train = x.select_rows(&train_idx);
    let x_test = x.select_rows(&test_idx);
    let (model, _) = TableDc::fit(smoke_config(4, x.cols()), &x_train, &mut rng(15));
    let pred = model.predict(&x_test);
    let truth: Vec<usize> = test_idx.iter().map(|&i| corpus.labels()[i]).collect();
    let ari = adjusted_rand_index(&pred, &truth);
    assert!(ari > 0.1, "out-of-sample ARI = {ari}");
}
