//! Integration tests spanning the substrate crates: autograd gradients
//! through graph convolutions, Birch centers feeding TableDC, and metric
//! agreement across the stack.

use autograd::Tape;
use clustering::metrics::{accuracy, adjusted_rand_index, normalized_mutual_info};
use clustering::{Birch, KMeans};
use datagen::{generate_mixture, MixtureConfig};
use graph::{gcn_adjacency, Gcn};
use nn::{Activation, Params};
use std::rc::Rc;
use tabledc::{Init, TableDc, TableDcConfig};
use tensor::random::rng;

#[test]
fn gcn_gradients_flow_through_sparse_adjacency() {
    let g = generate_mixture(
        &MixtureConfig { n: 30, k: 3, dim: 6, ..Default::default() },
        &mut rng(1),
    );
    let adj = Rc::new(gcn_adjacency(&g.x, 3));
    let mut params = Params::new();
    let gcn = Gcn::new(&mut params, &[6, 4], Activation::Linear, &mut rng(2));
    let tape = Tape::new();
    let bound = params.bind(&tape);
    let out = gcn.forward(&bound, &adj, tape.constant(g.x.clone()));
    let loss = tape.mean(tape.square(out));
    let grads = tape.backward(loss);
    for (_, var) in bound.iter() {
        let gm = grads.grad(var);
        assert!(gm.all_finite());
        assert!(gm.frobenius() > 0.0);
    }
}

#[test]
fn birch_centers_improve_tabledc_over_random_on_overlap() {
    // The Figure 4 claim at smoke scale: Birch init should be at least as
    // good as random init on a dense overlapping mixture (allowing a small
    // tolerance for run-to-run noise at this tiny scale).
    let g = generate_mixture(
        &MixtureConfig {
            n: 120,
            k: 6,
            dim: 12,
            separation: 2.0,
            correlation: 0.4,
            normalize: true,
            ..Default::default()
        },
        &mut rng(3),
    );
    let run = |init: Init| {
        let config = TableDcConfig {
            latent_dim: 8,
            encoder_dims: Some(vec![12, 24, 8]),
            pretrain_epochs: 10,
            epochs: 20,
            init,
            ..TableDcConfig::new(6)
        };
        let (_, fit) = TableDc::fit(config, &g.x, &mut rng(4));
        adjusted_rand_index(&fit.labels, &g.labels)
    };
    let birch = run(Init::Birch);
    let random = run(Init::Random);
    assert!(birch > random - 0.15, "Birch {birch} vs Random {random}");
}

#[test]
fn metrics_agree_on_method_outputs() {
    // All three metrics must rank a good clustering above a label shuffle.
    let g = generate_mixture(
        &MixtureConfig { n: 90, k: 3, dim: 8, separation: 4.0, ..Default::default() },
        &mut rng(5),
    );
    let km = KMeans::new(3).fit(&g.x, &mut rng(6));
    let shuffled: Vec<usize> = (0..90).map(|i| i % 3).collect();
    assert!(accuracy(&km.labels, &g.labels) > accuracy(&shuffled, &g.labels));
    assert!(
        adjusted_rand_index(&km.labels, &g.labels) > adjusted_rand_index(&shuffled, &g.labels)
    );
    assert!(
        normalized_mutual_info(&km.labels, &g.labels)
            > normalized_mutual_info(&shuffled, &g.labels)
    );
}

#[test]
fn birch_and_kmeans_agree_on_separated_data() {
    let g = generate_mixture(
        &MixtureConfig { n: 100, k: 4, dim: 6, separation: 6.0, ..Default::default() },
        &mut rng(7),
    );
    let b = Birch::new(4).fit(&g.x, &mut rng(8));
    let k = KMeans::new(4).fit(&g.x, &mut rng(9));
    // On clean data both recover the truth, hence agree with each other.
    let agreement = adjusted_rand_index(&b.labels, &k.labels);
    assert!(agreement > 0.9, "Birch/K-means agreement = {agreement}");
}

#[test]
fn tabledc_handles_entity_resolution_shape() {
    // Many small clusters (the MusicBrainz regime): K close to n/3.
    let g = datagen::scalability_workload(30, 12, &mut rng(10));
    let config = TableDcConfig {
        latent_dim: 8,
        encoder_dims: Some(vec![12, 24, 8]),
        pretrain_epochs: 15,
        epochs: 15,
        ..TableDcConfig::new(30)
    };
    let (_, fit) = TableDc::fit(config, &g.x, &mut rng(11));
    let acc = accuracy(&fit.labels, &g.labels);
    assert!(acc > 0.5, "many-cluster ACC = {acc}");
    // Should not collapse everything into a handful of clusters.
    assert!(fit.clusters_used > 15, "only {} clusters used", fit.clusters_used);
}
